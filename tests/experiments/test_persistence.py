"""Tests for the experiment-archive helpers."""

import numpy as np
import pytest

from repro.experiments import fig04_analysis
from repro.experiments.persistence import load_rows, run_and_save, save_rows


class TestSaveLoadRoundTrip:
    def test_round_trip(self, tmp_path):
        rows = [{"k": 1, "cost": 10}, {"k": 2, "cost": 20}]
        path = save_rows(tmp_path / "a.json", "fig13", rows, {"n": 100})
        figure, params, loaded = load_rows(path)
        assert figure == "fig13"
        assert params == {"n": 100}
        assert loaded == rows

    def test_numpy_scalars_coerced(self, tmp_path):
        rows = [{"cost": np.int64(7), "ratio": np.float64(0.5)}]
        path = save_rows(tmp_path / "b.json", "x", rows)
        _, _, loaded = load_rows(path)
        assert loaded == [{"cost": 7, "ratio": 0.5}]

    def test_nested_structures(self, tmp_path):
        rows = [{"series": [1, 2, 3], "meta": {"pair": (0, 1)}}]
        path = save_rows(tmp_path / "c.json", "x", rows)
        _, _, loaded = load_rows(path)
        assert loaded[0]["series"] == [1, 2, 3]
        assert loaded[0]["meta"]["pair"] == [0, 1]

    def test_creates_parent_directories(self, tmp_path):
        path = save_rows(tmp_path / "deep" / "dir" / "d.json", "x", [])
        assert path.exists()

    def test_rejects_non_archive(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            load_rows(bad)


class TestRunAndSave:
    def test_runs_figure_and_archives(self, tmp_path):
        path = tmp_path / "fig04.json"
        rows = run_and_save(fig04_analysis, path, ms=(4,), max_s=5)
        figure, params, loaded = load_rows(path)
        assert figure == "fig04_analysis"
        assert params == {"ms": [4], "max_s": 5}
        assert len(loaded) == len(rows) > 0
