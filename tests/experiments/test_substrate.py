"""The unified experiment substrate: every figure runner can reproduce
in-process, over the wire, and durably -- with identical numbers.

These tests pin the contract :func:`configure_experiments` makes: the
execution substrate never changes what a figure reports, only how (and
how often) it is paid for.
"""

import pytest

from repro.experiments.common import (
    configure_experiments,
    engine_summary,
    ground_truth_values,
    make_interface,
    reset_experiments,
    run_discovery,
)
from repro.datagen import diamonds_table
from repro.hiddendb import TopKInterface
from repro.store import CrawlStore


@pytest.fixture(autouse=True)
def substrate_reset():
    """Never leak a configured substrate into other tests."""
    yield
    reset_experiments()


@pytest.fixture
def table():
    return diamonds_table(120, seed=6)


@pytest.fixture
def reference(table):
    result = run_discovery(make_interface(table, k=5), "rq")
    reset_experiments()
    return result


class TestLocalDefault:
    def test_make_interface_is_in_process_by_default(self, table):
        interface = make_interface(table, k=5)
        assert isinstance(interface, TopKInterface)

    def test_label_is_content_derived(self, table):
        a = make_interface(table, k=5)
        b = make_interface(table, k=5)
        different_k = make_interface(table, k=7)
        assert a.name == b.name
        assert a.name != different_k.name
        assert a.name.startswith("exp-")


class TestRemoteMode:
    def test_remote_figures_reproduce_identical_numbers(
        self, table, reference
    ):
        configure_experiments(remote=True)
        remote = run_discovery(make_interface(table, k=5), "rq")
        assert remote.skyline_values == reference.skyline_values
        assert remote.total_cost == reference.total_cost
        assert remote.skyline_values == ground_truth_values(table)

    def test_servers_are_reused_per_endpoint_label(self, table):
        configure_experiments(remote=True)
        a = make_interface(table, k=5)
        b = make_interface(table, k=5)
        # Same content-derived label -> same ephemeral server.
        assert a.url == b.url

    def test_budgeted_server_restores_budget_per_construction(self, table):
        # Parity with TopKInterface semantics: each construction starts
        # with a fresh budget even when the ephemeral server is reused.
        configure_experiments(remote=True)
        first = run_discovery(make_interface(table, k=5, budget=2000), "rq")
        second = run_discovery(make_interface(table, k=5, budget=2000), "rq")
        assert second.total_cost == first.total_cost
        assert second.skyline_values == first.skyline_values


class TestStoreMode:
    def test_second_run_replays_from_the_ledger_free(self, tmp_path, table):
        configure_experiments(store=str(tmp_path / "exp.db"))
        first = run_discovery(make_interface(table, k=5), "rq")
        second = run_discovery(make_interface(table, k=5), "rq")
        assert second.skyline_values == first.skyline_values
        assert second.total_cost == 0
        assert second.stats.ledger_hits >= first.total_cost

    def test_store_survives_reconfiguration(self, tmp_path, table):
        path = str(tmp_path / "exp.db")
        configure_experiments(store=path)
        first = run_discovery(make_interface(table, k=5), "rq")
        assert first.total_cost > 0
        reset_experiments()
        # A later sweep over the same data mounts the same ledger.
        configure_experiments(store=path)
        again = run_discovery(make_interface(table, k=5), "rq")
        assert again.total_cost == 0
        reset_experiments()
        with CrawlStore(path) as store:
            assert store.ledger_size() >= first.total_cost

    def test_distinct_sweep_points_get_distinct_endpoints(
        self, tmp_path, table
    ):
        other = diamonds_table(121, seed=6)
        configure_experiments(store=str(tmp_path / "exp.db"))
        run_discovery(make_interface(table, k=5), "rq")
        crossed = run_discovery(make_interface(other, k=5), "rq")
        # Different data -> different endpoint label -> no ledger bleed.
        assert crossed.total_cost > 0


class TestConcurrentSubstrate:
    def test_pipelined_figures_keep_their_numbers(self, table, reference):
        configure_experiments(workers=4)
        result = run_discovery(make_interface(table, k=5), "rq")
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert result.stats.workers == 4


class TestEngineSummary:
    def test_summary_cell_shape(self, table):
        result = run_discovery(make_interface(table, k=5), "rq")
        reset_experiments()
        cell = engine_summary(result)
        assert cell == f"serial/w1:{result.total_cost}q"

    def test_summary_handles_missing_stats(self):
        class Bare:
            stats = None

        assert engine_summary(Bare()) == "-"
