"""Scaled-down smoke runs of every figure experiment.

Each test runs the figure's ``run()`` with laptop-instant parameters and
asserts the structural properties the paper's figure demonstrates -- who
wins, what grows, what stays flat.  The full-scale series live in
``benchmarks/`` and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig04_analysis,
    fig06_sq_vs_rq,
    fig13_impact_k,
    fig14_impact_n,
    fig15_impact_m,
    fig16_pq_n,
    fig17_pq_domain,
    fig18_mixed_n,
    fig19_mixed_attrs,
    fig20_anytime_range,
    fig21_anytime_pq,
    fig22_bluenile,
    fig23_gflights,
    fig24_yautos,
)


class TestFig04:
    def test_average_orders_of_magnitude_below_worst(self):
        rows = fig04_analysis.run(ms=(4,), max_s=9)
        for row in rows:
            if row["S"] > 3:
                assert row["worst_case"] > 10 * row["average_cost"]

    def test_covers_both_dimensionalities(self):
        rows = fig04_analysis.run()
        assert {row["m"] for row in rows} == {4, 8}


class TestFig06:
    def test_rq_beats_sq_for_large_skylines(self):
        rows = fig06_sq_vs_rq.run(ms=(4,), n=500,
                                  rhos=(0.5, -0.5, -0.9), k=1)
        worst = rows[-1]
        assert worst["S"] > rows[0]["S"]
        assert worst["sq_cost"] >= worst["rq_cost"]

    def test_sq_budget_cutoff_is_reported(self):
        rows = fig06_sq_vs_rq.run(ms=(4,), n=500, rhos=(-0.9,), k=1,
                                  sq_budget=10)
        assert isinstance(rows[0]["sq_cost"], str)
        assert rows[0]["sq_cost"].startswith(">10")


class TestFig13:
    def test_rq_beats_baseline_at_every_k(self):
        rows = fig13_impact_k.run(n=2000, m=3, ks=(1, 10))
        for row in rows:
            assert row["baseline_cost"] > row["rq_cost"]

    def test_cost_decreases_with_k(self):
        rows = fig13_impact_k.run(n=2000, m=3, ks=(1, 25),
                                  include_baseline=False)
        assert rows[0]["rq_cost"] >= rows[-1]["rq_cost"]


class TestFig14:
    def test_cost_tracks_skyline_not_n(self):
        rows = fig14_impact_n.run(ns=(1000, 4000), m=3, k=10)
        assert rows[-1]["rq_cost"] < 40 * rows[0]["rq_cost"]
        for row in rows:
            assert row["rq_cost"] <= row["sq_cost"]


class TestFig15:
    def test_cost_grows_with_m(self):
        rows = fig15_impact_m.run(ms=(2, 4), n=3000, k=10)
        assert rows[-1]["rq_cost"] >= rows[0]["rq_cost"]
        assert rows[-1]["S"] >= rows[0]["S"]


class TestFig16:
    def test_cost_grows_with_dimensions(self):
        rows = fig16_pq_n.run(ns=(3000,), ms=(3, 4), k=10)
        assert rows[0]["cost_4d"] >= rows[0]["cost_3d"]


class TestFig17:
    def test_cost_grows_slower_than_space(self):
        rows = fig17_pq_domain.run(domains=(5, 9), n=20_000, m=3,
                                   sample=10_000, k=10)
        cost_ratio = (rows[-1]["cost"] + 1) / (rows[0]["cost"] + 1)
        space_ratio = rows[-1]["space"] / rows[0]["space"]
        assert cost_ratio < space_ratio


class TestFig18:
    def test_cost_roughly_flat_in_n(self):
        rows = fig18_mixed_n.run(ns=(2000, 8000), k=10)
        assert rows[-1]["cost"] < 40 * rows[0]["cost"]


class TestFig19:
    def test_point_attributes_cost_more_than_range(self):
        rows = fig19_mixed_attrs.run(totals=(4,), n=3000, k=10)
        assert rows[0]["cost_varying_point"] > rows[0]["cost_varying_range"]


class TestFig20:
    def test_sq_trails_rq_by_the_end(self):
        rows = fig20_anytime_range.run(n=10_000, m=4, k=10)
        assert rows, "expected at least one discovery"
        costs_monotone = [row["rq_cost"] for row in rows]
        assert costs_monotone == sorted(costs_monotone)
        assert rows[-1]["rq_cost"] <= rows[-1]["sq_cost"]


class TestFig21:
    def test_trace_is_monotone(self):
        rows = fig21_anytime_pq.run(n=10_000, m=3, k=10)
        costs = [row["cost"] for row in rows]
        assert costs == sorted(costs)


class TestFig22:
    def test_mq_discovers_everything_baseline_cut_off(self):
        rows = fig22_bluenile.run(n=4000, k=50, baseline_cutoff=300)
        total = rows[-1]
        assert isinstance(total["mq_cost"], int)
        assert "found" in str(total["baseline_cost"])


class TestFig23:
    def test_all_instances_within_quota(self):
        rows = fig23_gflights.run(instances=5, k=1)
        summary = rows[-1]
        assert "0 instances over" in str(summary["avg_cost"])

    def test_average_costs_monotone(self):
        rows = fig23_gflights.run(instances=5, k=1)
        costs = [row["avg_cost"] for row in rows[:-1]]
        assert costs == sorted(costs)


class TestFig24:
    def test_mq_cost_per_tuple_is_small(self):
        rows = fig24_yautos.run(n=4000, k=50, baseline_cutoff=2000)
        total = rows[-1]
        per_tuple = total["mq_cost"] / total["tuples"]
        assert per_tuple < 10


class TestRunner:
    def test_main_rejects_unknown_figure(self):
        from repro.experiments.__main__ import main

        assert main(["nonsense"]) == 2

    def test_every_figure_module_has_entry_points(self):
        from repro.experiments import ALL_FIGURES

        assert len(ALL_FIGURES) == 14
        for module in ALL_FIGURES.values():
            assert hasattr(module, "run")
            assert hasattr(module, "main")
