"""Tests for the experiment reporting helpers."""

from repro.experiments.reporting import format_table, geometric_mean


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len({len(line) for line in lines if line}) == 1

    def test_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_float_rendering(self):
        rows = [{"x": 3.0, "y": 3.14159}]
        text = format_table(rows)
        assert " 3" in text
        assert "3.14" in text


class TestGeometricMean:
    def test_basic(self):
        assert abs(geometric_mean([1, 100]) - 10.0) < 1e-9

    def test_empty(self):
        assert geometric_mean([]) == 0.0
