"""Tests for the command-line interface."""

import pytest

from repro.cli import DATASETS, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_defaults(self):
        args = build_parser().parse_args(
            ["discover", "--dataset", "autos"]
        )
        assert args.n == 10_000
        assert args.k == 10
        assert args.budget is None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--dataset", "nope"])


class TestDiscoverCommand:
    def test_small_run(self, capsys):
        code = main(
            ["discover", "--dataset", "uniform", "--n", "500", "--k", "5",
             "--show-tuples", "3", "--curve"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm" in out
        assert "anytime curve" in out

    def test_budgeted_run_reports_incomplete(self, capsys):
        code = main(
            ["discover", "--dataset", "diamonds", "--n", "3000",
             "--k", "5", "--budget", "3", "--price-ranking"]
        )
        assert code == 0
        assert "complete   : False" in capsys.readouterr().out

    @pytest.mark.parametrize("dataset", sorted(DATASETS))
    def test_every_dataset_runs(self, dataset, capsys):
        code = main(
            ["discover", "--dataset", dataset, "--n", "400", "--k", "10"]
        )
        assert code == 0
        assert "skyline" in capsys.readouterr().out

    def test_verbose_prints_engine_counters(self, capsys):
        code = main(
            ["discover", "--dataset", "uniform", "--n", "400", "--k", "5",
             "--workers", "4", "--batch-size", "8", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine" in out
        assert "pipelined" in out
        assert "issued=" in out

    def test_workers_do_not_change_reported_cost(self, capsys):
        args = ["discover", "--dataset", "diamonds", "--n", "500", "--k",
                "10", "--algorithm", "baseline"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "4"]) == 0
        piped_out = capsys.readouterr().out
        pick = lambda out, field: [
            line for line in out.splitlines() if line.startswith(field)
        ]
        assert pick(serial_out, "queries") == pick(piped_out, "queries")
        assert pick(serial_out, "skyline") == pick(piped_out, "skyline")

    def test_dedup_flag_reports_savings(self, capsys):
        code = main(
            ["discover", "--dataset", "diamonds", "--n", "200", "--k", "10",
             "--algorithm", "sq", "--dedup", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deduped=" in out
        assert "deduped=0 " not in out

    @pytest.mark.parametrize("strategy", ["serial", "pipelined", "async"])
    def test_strategy_flag_reports_same_cost(self, strategy, capsys):
        base = ["discover", "--dataset", "diamonds", "--n", "500", "--k",
                "10", "--algorithm", "baseline"]
        assert main(base) == 0
        reference = capsys.readouterr().out
        args = base + ["--strategy", strategy, "--verbose"]
        if strategy != "serial":
            args += ["--workers", "4"]
        assert main(args) == 0
        out = capsys.readouterr().out
        pick = lambda text, field: [
            line for line in text.splitlines() if line.startswith(field)
        ]
        assert pick(reference, "queries") == pick(out, "queries")
        assert pick(reference, "skyline") == pick(out, "skyline")
        assert strategy in out  # --verbose names the strategy
        assert "wall=" in out  # ... and the wall-time/throughput counters

    def test_serial_strategy_with_workers_is_rejected(self, capsys):
        code = main(
            ["discover", "--dataset", "uniform", "--n", "200",
             "--strategy", "serial", "--workers", "4"]
        )
        assert code == 2
        assert "single-worker" in capsys.readouterr().err

    def test_unknown_strategy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "--dataset", "uniform", "--strategy", "warp"]
            )


class TestSkybandCommand:
    def test_small_run(self, capsys):
        code = main(
            ["skyband", "--dataset", "autos", "--n", "500", "--k", "20",
             "--band", "2"]
        )
        assert code == 0
        assert "band" in capsys.readouterr().out

    def test_verbose_prints_engine_counters(self, capsys):
        # Satellite: --verbose stats rendering extends to skyband (the
        # runners dedup their overlapping subspace trees by default).
        code = main(
            ["skyband", "--dataset", "diamonds", "--n", "300", "--k", "10",
             "--band", "2", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine" in out
        assert "issued=" in out


class TestCrawlCommand:
    def test_cold_then_warm_crawl(self, tmp_path, capsys):
        args = ["crawl", "--dataset", "diamonds", "--n", "400", "--k", "10",
                "--store", str(tmp_path / "crawl.db"), "--verbose"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "store" in cold and "session" in cold and "ledger" in cold
        # Warm re-run over the unchanged endpoint: zero billed queries.
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "queries    : 0" in warm
        assert "ledger=" in warm

    def test_store_refuses_different_dataset(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.db")
        base = ["--n", "300", "--k", "10", "--store", db]
        assert main(["crawl", "--dataset", "diamonds"] + base) == 0
        capsys.readouterr()
        # Same store, different dataset/k: clear refusal, exit 2.
        assert main(["crawl", "--dataset", "uniform"] + base) == 2
        err = capsys.readouterr().err
        assert "does not match" in err
        assert main(["crawl", "--dataset", "diamonds", "--n", "300",
                     "--k", "7", "--store", db]) == 2

    def test_resume_flag_runs(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.db")
        args = ["crawl", "--dataset", "uniform", "--n", "300", "--k", "5",
                "--store", db]
        assert main(args) == 0
        capsys.readouterr()
        # Nothing crashed, so --resume simply starts fresh and rides the
        # warm ledger.
        assert main(args + ["--resume"]) == 0
        assert "queries    : 0" in capsys.readouterr().out


class TestStoreCommands:
    @pytest.fixture
    def populated(self, tmp_path, capsys):
        db = str(tmp_path / "crawl.db")
        assert main(["crawl", "--dataset", "uniform", "--n", "300",
                     "--k", "5", "--store", db]) == 0
        capsys.readouterr()
        return db

    def test_ls(self, populated, capsys):
        assert main(["store", "ls", "--store", populated]) == 0
        out = capsys.readouterr().out
        assert "uniform-n300-s0" in out
        assert "finished" in out

    def test_show(self, populated, capsys):
        from repro.store import CrawlStore

        with CrawlStore(populated) as store:
            session_id = store.sessions()[0].session_id
        assert main(["store", "show", session_id, "--store", populated]) == 0
        out = capsys.readouterr().out
        assert session_id in out
        assert "total_cost" in out

    def test_show_unknown_session(self, populated, capsys):
        assert main(["store", "show", "nope", "--store", populated]) == 2
        assert "no session" in capsys.readouterr().err

    def test_gc_empty_then_prunes(self, populated, capsys):
        assert main(["store", "gc", "--store", populated]) == 0
        assert "nothing stale" in capsys.readouterr().out


class TestStatsCommand:
    def test_small_run(self, capsys):
        code = main(
            ["stats", "--dataset", "flights-mixed", "--n", "1000", "--k", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total queries" in out
        assert "redundancy" in out


class TestFiguresCommand:
    def test_list(self, capsys):
        code = main(["figures", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "fig22" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "not-a-figure"]) == 2

    def test_run_analysis_figure(self, capsys):
        assert main(["figures", "fig04"]) == 0
        assert "Figure 4" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_runs_for_duration(self, capsys):
        code = main(
            ["serve", "--dataset", "uniform", "--n", "300", "--k", "5",
             "--port", "0", "--duration", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "http://127.0.0.1:" in out
        assert "served" in out

    def test_serve_requires_dataset_or_table_db(self, capsys):
        # --dataset became optional when --table-db arrived, so the
        # requirement is enforced at runtime, not by argparse.
        assert main(["serve"]) == 2
        assert "--dataset or --table-db" in capsys.readouterr().err

    def test_serve_sqlite_engine_requires_table_db(self, capsys):
        assert main(["serve", "--dataset", "uniform", "--n", "100",
                     "--engine", "sqlite"]) == 2
        assert "--table-db" in capsys.readouterr().err

    def test_port_collision_reports_clear_error(self, capsys):
        # Satellite: EADDRINUSE surfaces as one actionable line, not a
        # raw OSError traceback.
        from repro.datagen import independent
        from repro.service import HiddenDBServer

        with HiddenDBServer(independent(100, 3, domain=10, seed=0), k=2) as srv:
            code = main(
                ["serve", "--dataset", "uniform", "--n", "100",
                 "--port", str(srv.port), "--duration", "1"]
            )
        assert code == 2
        err = capsys.readouterr().err
        assert "already in use" in err
        assert f"port {srv.port}" in err


class TestRemoteCommands:
    @pytest.fixture
    def server(self):
        from repro.datagen import independent
        from repro.service import HiddenDBServer

        with HiddenDBServer(independent(400, 3, domain=20, seed=0), k=5) as srv:
            yield srv

    def test_discover_url(self, server, capsys):
        code = main(["discover", "--url", server.url, "--cache", "256"])
        assert code == 0
        out = capsys.readouterr().out
        assert "remote, k=5" in out

    def test_discover_url_async_strategy(self, server, capsys):
        # --strategy async on a --url run routes through the asyncio
        # client (non-blocking sockets) and must report the same summary
        # shape, plus the engine counters naming the strategy.
        code = main(
            ["discover", "--url", server.url, "--strategy", "async",
             "--workers", "8", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "remote, k=5" in out
        assert "async" in out
        assert "billable" in out
        assert "billable" in out
        assert server.stats().queries_total > 0

    def test_skyband_url(self, server, capsys):
        code = main(["skyband", "--url", server.url, "--band", "2"])
        assert code == 0
        assert "band" in capsys.readouterr().out

    def test_stats_url(self, server, capsys):
        code = main(["stats", "--url", server.url])
        assert code == 0
        assert "total queries" in capsys.readouterr().out

    def test_dataset_or_url_required(self, capsys):
        assert main(["discover"]) == 2
        assert "error" in capsys.readouterr().err
