"""End-to-end delta-crawl repairs against mutated in-process endpoints.

The acceptance gates of the freshness plane, at test scale: after a
delete-churn batch the repair must reproduce the from-scratch skyline
exactly for **every** registered algorithm under **every** execution
strategy, while billing no more than the from-scratch crawl (the
benchmark suite gates the <= 50% ratio at realistic scale).  Plus the
mode's edge behaviour: an unchanged endpoint repairs for free, a fresh
store degrades to a full crawl, strict mode surfaces a deterministic
hidden insert the default cascade provably cannot observe, and the config
surface rejects the nonsensical combinations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Discoverer, DiscoveryConfig, all_algorithms
from repro.datagen import churn_ops
from repro.freshness import run_delta
from repro.hiddendb import Attribute, InterfaceKind, Schema, Table, TopKInterface
from repro.store import CrawlStore

from ..conftest import PARITY_KIND_MIXES, random_table, strategy_configs

SEED = 20260808
K = 3
N = 300
DOMAIN = 12
#: Delete-only churn ("listings disappear"): every change is observable
#: through the probed frontier, so repair exactness is unconditional.
DELETE_CHURN = (1.0, 0.0, 0.0)


def build_table(kinds) -> Table:
    # Distinct vectors keep BASELINE splittable (> k ties are unsplittable).
    return random_table(
        np.random.default_rng(SEED), kinds, N, DOMAIN, distinct=True
    )


def schema_of(kinds) -> Schema:
    return Schema([
        Attribute(f"a{i}", DOMAIN, kind) for i, kind in enumerate(kinds)
    ])


def delta_params():
    """``(algorithm, kinds, strategy, config)``: the full repair grid."""
    for spec in all_algorithms():
        kinds = next(
            (
                PARITY_KIND_MIXES[name]
                for name in sorted(PARITY_KIND_MIXES)
                if spec.supports(schema_of(PARITY_KIND_MIXES[name]))
            ),
            None,
        )
        assert kinds is not None, f"no candidate shape for {spec.name}"
        for strategy, config in strategy_configs().items():
            yield pytest.param(
                spec.name, kinds, config, id=f"{spec.name}-{strategy}"
            )


def crawl_then_churn(kinds, *, frac=0.10, mix=DELETE_CHURN, algorithm=None,
                     base_config=None):
    """Initial durable crawl, then churn: the repair scenario's setup.

    Returns ``(table, interface, store, initial result)`` with the churn
    already applied to the live table (the store's ledger is now stale).
    """
    table = build_table(kinds)
    interface = TopKInterface(table, k=K, name="delta-under-test")
    store = CrawlStore.memory()
    config = (base_config or DiscoveryConfig()).replace(store=store)
    initial = Discoverer(config).run(interface, algorithm)
    assert initial.complete
    table.apply_mutations(churn_ops(table, frac, seed=SEED + 1, mix=mix))
    return table, interface, store, initial


def scratch_crawl(table, algorithm=None):
    return Discoverer().run(
        TopKInterface(table, k=K, name="delta-under-test"), algorithm
    )


class TestRepairParity:
    @pytest.mark.parametrize("algorithm,kinds,config", delta_params())
    def test_delta_matches_scratch_at_lower_cost(
        self, algorithm, kinds, config
    ):
        table, interface, store, _ = crawl_then_churn(
            kinds, algorithm=algorithm, base_config=config
        )
        scratch = scratch_crawl(table, algorithm)
        repaired = Discoverer(
            config.replace(store=store, mode="delta")
        ).run(interface, algorithm)
        assert repaired.complete
        assert repaired.skyline_values == scratch.skyline_values
        report = repaired.freshness
        assert report is not None
        assert report.billed == repaired.total_cost
        assert report.billed <= scratch.total_cost
        assert report.stale_entries > 0
        assert report.probes > 0

    def test_unchanged_endpoint_repairs_for_free(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table = build_table(kinds)
        interface = TopKInterface(table, k=K, name="delta-under-test")
        store = CrawlStore.memory()
        initial = Discoverer(DiscoveryConfig(store=store)).run(interface)
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        assert repaired.skyline_values == initial.skyline_values
        report = repaired.freshness
        assert report.billed == 0
        assert report.stale_entries == 0
        assert report.probes == 0
        assert report.rounds == 1
        assert not report.skyline_changed

    def test_second_repair_of_same_epoch_is_free(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, _ = crawl_then_churn(kinds)
        first = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        assert first.freshness.billed > 0
        again = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        assert again.skyline_values == first.skyline_values
        assert again.freshness.billed == 0

    def test_repair_restamps_revalidated_entries(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, _ = crawl_then_churn(kinds)
        fingerprint = store.endpoints()[0].fingerprint
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        report = repaired.freshness
        assert report.revalidated == report.served_stale > 0
        # Re-stamping cleared the revalidated entries: far fewer stale
        # entries remain than the repair started with.
        assert store.ledger_stale_count(fingerprint) < report.stale_entries

    def test_report_tracks_skyline_membership_changes(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, initial = crawl_then_churn(kinds, frac=0.20)
        scratch = scratch_crawl(table)
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        report = repaired.freshness
        assert report.prior_skyline_size == len(initial.skyline_values)
        assert frozenset(report.skyline_added) == (
            scratch.skyline_values - initial.skyline_values
        )
        assert frozenset(report.skyline_removed) == (
            initial.skyline_values - scratch.skyline_values
        )

    def test_fresh_store_degrades_to_full_crawl(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table = build_table(kinds)
        interface = TopKInterface(table, k=K, name="delta-under-test")
        scratch = scratch_crawl(table)
        repaired = Discoverer(
            DiscoveryConfig(store=CrawlStore.memory(), mode="delta")
        ).run(interface)
        assert repaired.skyline_values == scratch.skyline_values
        report = repaired.freshness
        assert report.billed == scratch.total_cost
        assert report.stale_entries == 0
        assert report.probes == 0

    def test_partial_prior_crawl_repairs_from_ledger_rows(self):
        """No complete prior result: the prior skyline falls back to the
        rows recorded in the stale ledger."""
        kinds = PARITY_KIND_MIXES["rq3"]
        table = build_table(kinds)
        interface = TopKInterface(table, k=K, name="delta-under-test")
        store = CrawlStore.memory()
        partial = Discoverer(
            DiscoveryConfig(store=store, budget=4)
        ).run(interface)
        assert not partial.complete
        table.apply_mutations(
            churn_ops(table, 0.10, seed=SEED + 1, mix=DELETE_CHURN)
        )
        scratch = scratch_crawl(table)
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        assert repaired.complete
        assert repaired.skyline_values == scratch.skyline_values

    def test_budget_starved_repair_reports_partial(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, _ = crawl_then_churn(kinds)
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta", budget=3)
        ).run(interface)
        assert not repaired.complete
        assert repaired.freshness.revalidated == 0


class TestStrictMode:
    """A deterministic hidden insert: rows (0,9),(9,0),(3,6),(6,3) at k=1,
    then (8,2) appears.  It never cracks the head window (it ranks below
    every top-1 answer the repair re-bills) and no other churn seeds the
    cascade, so the default repair provably cannot observe it; strict
    revalidation re-bills the uncovered emptiness certificates and finds
    it."""

    ROWS = [(0, 9), (9, 0), (3, 6), (6, 3)]
    HIDDEN = (8, 2)

    def scenario(self):
        schema = Schema(
            [Attribute(f"a{i}", 10, InterfaceKind.RQ) for i in range(2)]
        )
        table = Table(schema, np.array(self.ROWS))
        interface = TopKInterface(table, k=1, name="strict-under-test")
        store = CrawlStore.memory()
        Discoverer(DiscoveryConfig(store=store)).run(interface)
        table.apply_mutations([
            {"op": "insert", "values": list(self.HIDDEN)}
        ])
        return table, interface, store

    def test_default_repair_misses_the_hidden_insert(self):
        table, interface, store = self.scenario()
        repaired = Discoverer(
            DiscoveryConfig(store=store, mode="delta")
        ).run(interface)
        assert self.HIDDEN not in repaired.skyline_values
        assert repaired.freshness.billed < len(self.ROWS) + 1

    def test_strict_repair_finds_the_hidden_insert(self):
        table, interface, store = self.scenario()
        scratch = Discoverer().run(
            TopKInterface(table, k=1, name="strict-under-test")
        )
        assert self.HIDDEN in scratch.skyline_values
        config = DiscoveryConfig(store=store, mode="delta").with_options(
            delta_strict=True
        )
        repaired = Discoverer(config).run(interface)
        assert repaired.skyline_values == scratch.skyline_values

    def test_strict_still_exact_under_delete_churn(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, _ = crawl_then_churn(kinds)
        scratch = scratch_crawl(table)
        config = DiscoveryConfig(store=store, mode="delta").with_options(
            delta_strict=True
        )
        repaired = Discoverer(config).run(interface)
        assert repaired.skyline_values == scratch.skyline_values


class TestConfigSurface:
    def test_delta_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            DiscoveryConfig(mode="delta")

    def test_delta_rejects_resume(self):
        with pytest.raises(ValueError, match="resume"):
            DiscoveryConfig(
                store=CrawlStore.memory(), mode="delta", resume=True
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            DiscoveryConfig(mode="incremental")

    def test_skyband_rejects_delta_mode(self):
        table = build_table(PARITY_KIND_MIXES["rq3"])
        interface = TopKInterface(table, k=K)
        config = DiscoveryConfig(store=CrawlStore.memory(), mode="delta")
        with pytest.raises(ValueError, match="delta"):
            Discoverer(config).skyband(interface, 2)

    def test_run_delta_convenience_wrapper(self):
        kinds = PARITY_KIND_MIXES["rq3"]
        table, interface, store, _ = crawl_then_churn(kinds)
        scratch = scratch_crawl(table)
        result = run_delta(
            interface, config=DiscoveryConfig(store=store, mode="delta")
        )
        assert result.skyline_values == scratch.skyline_values
        assert result.freshness is not None
        assert result.config.mode == "delta"
