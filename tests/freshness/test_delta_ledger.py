"""Unit tests of the :class:`repro.freshness.DeltaLedger` suspicion model.

The ledger view is the heart of the delta-crawl cascade: these tests pin
when a stale answer may be served free (nothing dirty touches it, no
appeared vector could crack its top-k window) and when it must read as a
miss -- including the rank-aware crack test, the strict-mode cover test
and the fixpoint bookkeeping (``begin_round`` / ``finish_round`` /
``force_containing``).
"""

from __future__ import annotations

import json

import pytest

from repro.freshness import DeltaLedger, DeltaReport
from repro.hiddendb.interface import QueryResult
from repro.hiddendb.query import Interval, Query
from repro.hiddendb.table import Row
from repro.store import LedgerEntry


class FakeFresh:
    """Minimal current-epoch ledger (the store view's get/put protocol)."""

    def __init__(self):
        self.entries: dict[str, QueryResult] = {}

    def get(self, query):
        return self.entries.get(query.canonical_key())

    def put(self, query, result):
        self.entries[query.canonical_key()] = result


def q(ranges=None, filters=None) -> Query:
    return Query(
        {i: Interval(lo, hi) for i, (lo, hi) in (ranges or {}).items()},
        filters or {},
    )


def answer(query, rows, overflow=False) -> QueryResult:
    return QueryResult(
        query,
        tuple(Row(rid, tuple(values)) for rid, values in rows),
        overflow,
        sequence=0,
    )


def entry(query, rows, overflow=False, epoch=0) -> LedgerEntry:
    return LedgerEntry(
        qkey=query.canonical_key(),
        query=query,
        result=answer(query, rows, overflow),
        epoch=epoch,
        billed_at=0.0,
    )


def ledger(*entries, strict=False, width=2, fresh=None) -> DeltaLedger:
    return DeltaLedger(
        fresh if fresh is not None else FakeFresh(),
        {e.qkey: e for e in entries},
        epoch=1,
        ranking_width=width,
        strict=strict,
    )


class TestServing:
    def test_fresh_hit_wins_and_confirms_vectors(self):
        fresh = FakeFresh()
        query = q({0: (0, 9), 1: (0, 9)})
        fresh.put(query, answer(query, [(1, (2, 3))]))
        view = ledger(entry(query, [(1, (9, 9))]), fresh=fresh)
        result = view.get(query)
        assert result.rows[0].values == (2, 3)
        assert (2, 3) in view.confirmed_vectors()
        # Serving fresh never counts as a stale serve.
        assert view.served_stale == 0

    def test_clean_stale_entry_served_free(self):
        query = q({0: (0, 4), 1: (0, 4)})
        view = ledger(entry(query, [(1, (2, 2))]))
        assert view.get(query) is not None
        assert view.served_stale == 1
        assert view.trusted_keys() == (query.canonical_key(),)

    def test_unknown_query_misses(self):
        view = ledger(entry(q({0: (0, 4)}), [(1, (2, 2))], epoch=0))
        assert view.get(q({0: (5, 9)})) is None

    def test_put_writes_through_to_fresh(self):
        fresh = FakeFresh()
        query = q({0: (0, 9), 1: (0, 9)})
        view = ledger(fresh=fresh)
        view.put(query, answer(query, [(1, (3, 3))]))
        assert fresh.get(query) is not None
        assert view.get(query).rows[0].values == (3, 3)


class TestSuspicion:
    def test_dirty_rid_overlap_forces_rebill(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        stale = entry(q({0: (0, 4), 1: (0, 9)}), [(7, (1, 5))])
        view = ledger(entry(probe, [(7, (1, 5))]), stale)
        # Probe re-billed: row 7 changed values -> rid 7 is dirty.
        view.put(probe, answer(probe, [(7, (1, 6))]))
        assert view.get(stale.query) is None

    def test_vanished_vector_overlap_forces_rebill(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        stale = entry(q({0: (0, 4), 1: (0, 9)}), [(7, (1, 5))])
        view = ledger(entry(probe, [(7, (1, 5))]), stale)
        # Row 7 vanished entirely (deleted): answers carrying its old
        # vector can no longer be trusted.
        view.put(probe, answer(probe, [(8, (9, 9))]))
        assert view.get(stale.query) is None

    def test_overflow_window_safe_when_newcomer_dominated_by_last_row(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        window = entry(
            q({0: (0, 4), 1: (0, 4)}),
            [(11, (2, 3)), (12, (3, 3))],
            overflow=True,
        )
        view = ledger(entry(probe, [(1, (5, 5))]), window)
        # Rid 9 / vector (4, 4) appeared inside the window's region, but
        # the window's worst row (3, 3) dominates it -- domination-
        # consistent ranking puts it below the whole top-k, so the window
        # still holds.
        view.put(probe, answer(probe, [(9, (4, 4))]))
        assert view.get(window.query) is not None

    def test_overflow_window_cracked_by_undominated_newcomer(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        window = entry(
            q({0: (0, 4), 1: (0, 4)}),
            [(11, (2, 3)), (12, (3, 3))],
            overflow=True,
        )
        view = ledger(entry(probe, [(1, (5, 5))]), window)
        # (0, 0) appeared in-region and is NOT dominated by the last
        # returned row: it may out-rank the window, so re-bill.
        view.put(probe, answer(probe, [(9, (0, 0))]))
        assert view.get(window.query) is None

    def test_newcomer_outside_region_is_harmless(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        window = entry(
            q({0: (0, 4), 1: (0, 4)}),
            [(11, (2, 3)), (12, (3, 3))],
            overflow=True,
        )
        view = ledger(entry(probe, [(1, (5, 5))]), window)
        view.put(probe, answer(probe, [(9, (8, 8))]))
        assert view.get(window.query) is not None

    def test_certificate_voided_by_in_region_appearance(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        empty = entry(q({0: (5, 9), 1: (5, 9)}), [])
        view = ledger(entry(probe, [(1, (2, 2))]), empty)
        view.put(probe, answer(probe, [(1, (2, 2)), (9, (6, 6))]))
        assert view.get(empty.query) is None


class TestStrictMode:
    def test_uncovered_certificate_rebilled(self):
        empty = entry(q({0: (5, 9), 1: (5, 9)}), [])
        view = ledger(empty, strict=True)
        assert view.get(empty.query) is None

    def test_certificate_covered_by_confirmed_dominator(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        empty = entry(q({0: (5, 9), 1: (5, 9)}), [])
        view = ledger(entry(probe, [(1, (2, 2))]), empty, strict=True)
        # (2, 2) is confirmed alive and dominates the region's lo-corner
        # (5, 5): anything hiding inside is transitively dominated.
        view.put(probe, answer(probe, [(1, (2, 2))]))
        assert view.get(empty.query) is not None

    def test_point_region_certificate_always_safe(self):
        point = entry(q({0: (7, 7), 1: (7, 7)}), [])
        view = ledger(point, strict=True)
        assert view.get(point.query) is not None

    def test_filtered_certificate_never_covered(self):
        probe = q({0: (0, 9), 1: (0, 9)})
        filtered = entry(
            Query({0: Interval(5, 9), 1: Interval(5, 9)}, {"city": 3}), []
        )
        view = ledger(entry(probe, [(1, (0, 0))]), filtered, strict=True)
        view.put(probe, answer(probe, [(1, (0, 0))]))
        # (0, 0) dominates everything, but a filtered region is a
        # different lattice slice -- the cover test must not apply.
        assert view.get(filtered.query) is None

    def test_non_strict_serves_uncovered_certificate(self):
        empty = entry(q({0: (5, 9), 1: (5, 9)}), [])
        view = ledger(empty, strict=False)
        assert view.get(empty.query) is not None


class TestFixpoint:
    def test_finish_round_incriminates_late_dirtied_trust(self):
        early = entry(q({0: (0, 4), 1: (0, 9)}), [(7, (1, 5))])
        probe = q({0: (0, 9), 1: (0, 9)})
        view = ledger(entry(probe, [(7, (1, 5))]), early)
        # Served while clean...
        assert view.get(early.query) is not None
        # ...then the probe's re-bill dirties rid 7.
        view.put(probe, answer(probe, [(7, (2, 5))]))
        assert view.finish_round() == 1
        view.begin_round()
        # Forced: the next pass must re-bill it.
        assert view.get(early.query) is None
        assert view.forced_count == 1

    def test_finish_round_zero_at_fixpoint(self):
        clean = entry(q({0: (0, 4), 1: (0, 4)}), [(1, (2, 2))])
        view = ledger(clean)
        assert view.get(clean.query) is not None
        assert view.finish_round() == 0

    def test_force_containing_targets_supporting_entries(self):
        a = entry(q({0: (0, 4), 1: (0, 9)}), [(1, (2, 2))])
        b = entry(q({0: (5, 9), 1: (0, 9)}), [(2, (7, 7))])
        view = ledger(a, b)
        assert view.get(a.query) is not None
        assert view.get(b.query) is not None
        assert view.force_containing([(2, 2)]) == 1
        view.begin_round()
        assert view.get(a.query) is None
        assert view.get(b.query) is not None

    def test_put_clears_trust_and_begin_round_resets_counters(self):
        stale = entry(q({0: (0, 4), 1: (0, 4)}), [(1, (2, 2))])
        view = ledger(stale)
        assert view.get(stale.query) is not None
        view.put(stale.query, answer(stale.query, [(1, (2, 2))]))
        assert view.trusted_keys() == ()
        view.begin_round()
        assert view.served_stale == 0


class TestDeltaReport:
    def report(self, **overrides) -> DeltaReport:
        base = dict(
            epoch=2, stale_entries=10, probes=3, served_stale=6, forced=1,
            revalidated=6, rounds=2, billed=4, prior_skyline_size=5,
        )
        base.update(overrides)
        return DeltaReport(**base)

    def test_skyline_changed_flag(self):
        assert not self.report().skyline_changed
        assert self.report(skyline_added=((1, 2),)).skyline_changed
        assert self.report(skyline_removed=((3, 4),)).skyline_changed

    def test_as_dict_is_json_ready(self):
        report = self.report(
            skyline_added=((1, 2),), skyline_removed=((3, 4), (5, 6))
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["epoch"] == 2
        assert payload["billed"] == 4
        assert payload["skyline_added"] == [[1, 2]]
        assert payload["skyline_removed"] == [[3, 4], [5, 6]]
