"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    LinearRanker,
    Schema,
    Table,
    TopKInterface,
)


def make_table(
    values,
    kinds=None,
    domain: int | None = None,
    filters=None,
    filter_domains=None,
) -> Table:
    """Build a table from a plain list of value tuples.

    ``kinds`` is a single :class:`InterfaceKind` or one per attribute;
    ``domain`` defaults to one past the largest value seen.
    """
    matrix = np.asarray(values, dtype=np.int64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    m = matrix.shape[1]
    if domain is None:
        domain = int(matrix.max(initial=0)) + 1
    if kinds is None:
        kinds = InterfaceKind.RQ
    if isinstance(kinds, InterfaceKind):
        kinds = [kinds] * m
    attributes = [
        Attribute(f"a{i}", domain, kinds[i]) for i in range(m)
    ]
    for name in (filters or {}):
        size = (filter_domains or {}).get(
            name, int(max(filters[name])) + 1 if len(filters[name]) else 1
        )
        attributes.append(Attribute(name, size, InterfaceKind.FILTER))
    return Table(Schema(attributes), matrix, filters)


def truth_values(table: Table) -> frozenset[tuple[int, ...]]:
    """Ground-truth skyline of ``table`` as value vectors."""
    return frozenset(
        tuple(int(v) for v in row)
        for row in table.matrix[table.skyline_indices()]
    )


def truth_band_values(table: Table, band: int) -> frozenset[tuple[int, ...]]:
    """Ground-truth K-skyband of ``table`` as value vectors."""
    return frozenset(
        tuple(int(v) for v in row)
        for row in table.matrix[table.skyband_indices(band)]
    )


def random_table(
    rng: np.random.Generator,
    kinds,
    n: int,
    domain: int,
    distinct: bool = False,
) -> Table:
    """A uniform random table over the given interface kinds."""
    m = len(kinds)
    if distinct:
        total = domain ** m
        n = min(n, total)
        cells = rng.choice(total, size=n, replace=False)
        matrix = np.stack([(cells // domain ** j) % domain for j in range(m)], axis=1)
    else:
        matrix = rng.integers(0, domain, size=(n, m))
    schema = Schema([Attribute(f"a{i}", domain, kinds[i]) for i in range(m)])
    return Table(schema, matrix)


# ----------------------------------------------------------------------
# parity-suite fixtures: one candidate table per interface-taxonomy shape
# (shared by tests/service/test_parity.py, tests/service/test_batch.py and
# tests/core/test_engine.py so the suites cannot drift apart)
# ----------------------------------------------------------------------

PARITY_SEED = 20160831  # the paper's VLDB year+date, any fixed value works

PARITY_KIND_MIXES = {
    "sq3": (InterfaceKind.SQ,) * 3,
    "rq3": (InterfaceKind.RQ,) * 3,
    "pq2": (InterfaceKind.PQ,) * 2,
    "pq3": (InterfaceKind.PQ,) * 3,
    "mixed": (InterfaceKind.RQ, InterfaceKind.SQ, InterfaceKind.PQ),
}


def build_parity_tables() -> dict[str, Table]:
    """Fresh copies of the parity candidate tables (deterministic)."""
    rng = np.random.default_rng(PARITY_SEED)
    return {
        name: random_table(rng, kinds, n=250, domain=8, distinct=True)
        for name, kinds in PARITY_KIND_MIXES.items()
    }


PARITY_TABLES = build_parity_tables()


def parity_candidate_table(predicate) -> Table | None:
    """First parity table (stable order) whose schema satisfies ``predicate``."""
    for name in sorted(PARITY_TABLES):
        if predicate(PARITY_TABLES[name].schema):
            return PARITY_TABLES[name]
    return None


def parity_run_params():
    """``(algorithm name, table)`` pytest params for every registered
    algorithm, each paired with a parity table it supports."""
    from repro.core import all_algorithms

    for spec in all_algorithms():
        table = parity_candidate_table(spec.supports)
        assert table is not None, f"no candidate table for {spec.name}"
        yield pytest.param(spec.name, table, id=spec.name)


# ----------------------------------------------------------------------
# execution-strategy axis: every parity suite runs each algorithm under
# every registered strategy (serial is the reference; pipelined and async
# must produce the identical skyline and billed cost, in-process and
# over the wire)
# ----------------------------------------------------------------------

#: Window/batch shape used by the strategy-parity suites: small enough to
#: stay fast, wide enough that batching and concurrency genuinely engage.
PARITY_WORKERS = 4
PARITY_BATCH_SIZE = 8


def strategy_configs(workers: int = PARITY_WORKERS,
                     batch_size: int = PARITY_BATCH_SIZE):
    """One ``DiscoveryConfig`` per registered execution strategy."""
    from repro.core import STRATEGY_NAMES, DiscoveryConfig

    configs = {}
    for name in STRATEGY_NAMES:
        if name == "serial":
            configs[name] = DiscoveryConfig(strategy="serial")
        else:
            configs[name] = DiscoveryConfig(
                strategy=name, workers=workers, batch_size=batch_size
            )
    return configs


def parity_strategy_params(workers: int = PARITY_WORKERS,
                           batch_size: int = PARITY_BATCH_SIZE):
    """``(strategy name, DiscoveryConfig)`` pytest params, one per
    registered execution strategy."""
    for name, config in strategy_configs(workers, batch_size).items():
        yield pytest.param(name, config, id=name)


def parity_run_strategy_params():
    """``(algorithm, table, strategy, config)`` params: the full
    algorithm x strategy parity grid."""
    for algo_param in parity_run_params():
        algorithm, table = algo_param.values
        for strat_param in parity_strategy_params():
            strategy, config = strat_param.values
            yield pytest.param(
                algorithm, table, strategy, config,
                id=f"{algorithm}-{strategy}",
            )


# ----------------------------------------------------------------------
# data-plane engine axis: every parity suite can additionally pin the
# serving engine ('scan' is the O(n) reference; 'rank' and 'sqlite' must
# produce bit-identical QueryResults, so algorithm outcomes cannot drift)
# ----------------------------------------------------------------------

#: The fast engines gated on parity with the ``scan`` reference.
DATAPLANE_ENGINES = ("rank", "sqlite")


def build_engine_interface(table, engine, tmp_path, *, ranker=None,
                           k=5, **kwargs) -> TopKInterface:
    """A :class:`TopKInterface` over ``table`` pinned to a serving engine.

    ``sqlite`` builds a throwaway SQLite table under ``tmp_path`` (rank
    index persisted for ``ranker``) and serves from it; ``scan`` /
    ``rank`` force the in-memory paths.  Asserts the requested engine is
    the one actually serving.
    """
    from repro.hiddendb import SQLTable, build_sqltable

    if engine == "sqlite":
        path = tmp_path / f"parity{len(list(tmp_path.glob('*.sqlite')))}.sqlite"
        build_sqltable(path, table, ranker)
        interface = TopKInterface(
            SQLTable(path), ranker=ranker, k=k, engine="sqlite", **kwargs
        )
    else:
        interface = TopKInterface(
            table, ranker=ranker, k=k, engine=engine, **kwargs
        )
    assert interface.engine == engine
    return interface


def parity_run_engine_strategy_params():
    """``(algorithm, table, engine, strategy, config)`` params: the full
    data-plane parity grid -- every registered algorithm x fast engine x
    execution strategy, each gated against the scan+serial reference."""
    for algo_param in parity_run_params():
        algorithm, table = algo_param.values
        for engine in DATAPLANE_ENGINES:
            for strat_param in parity_strategy_params():
                strategy, config = strat_param.values
                yield pytest.param(
                    algorithm, table, engine, strategy, config,
                    id=f"{algorithm}-{engine}-{strategy}",
                )


# ----------------------------------------------------------------------
# Prometheus text-format parser (strict): shared by the obs, service and
# coordinator suites so every /metrics surface is validated the same way
# ----------------------------------------------------------------------

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_SAMPLE = re.compile(
    rf"^(?P<name>{_PROM_NAME})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|NaN|[+-]Inf)$"
)
_PROM_LABEL = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\\\|\\"|\\n)*"$'
)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse (and structurally validate) Prometheus 0.0.4 text exposition.

    Every line must be a well-formed ``# HELP`` / ``# TYPE`` comment or a
    sample; samples must follow their family's TYPE declaration; histogram
    series must carry the ``_bucket``/``_sum``/``_count`` suffixes.
    Returns ``{family name: {"type", "help", "samples"}}`` with samples as
    ``{(sample name, labels tuple): float value}``.
    """
    families: dict[str, dict] = {}
    declared: str | None = None
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert re.fullmatch(_PROM_NAME, name), f"bad HELP name: {line!r}"
            families.setdefault(
                name, {"type": None, "help": help_text, "samples": {}}
            )
            declared = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in ("counter", "gauge", "histogram", "untyped"), line
            assert name in families, f"TYPE before HELP: {line!r}"
            families[name]["type"] = kind
            declared = name
            continue
        assert not line.startswith("#"), f"unparseable comment: {line!r}"
        match = _PROM_SAMPLE.match(line)
        assert match is not None, f"malformed sample line: {line!r}"
        sample_name = match.group("name")
        labels_raw = match.group("labels")
        labels: tuple[tuple[str, str], ...] = ()
        if labels_raw is not None:
            parts = labels_raw.split(",")
            for part in parts:
                assert _PROM_LABEL.match(part), f"malformed label: {part!r}"
            labels = tuple(
                (part.split("=", 1)[0], part.split("=", 1)[1][1:-1])
                for part in parts
            )
        assert declared is not None, f"sample before any family: {line!r}"
        family = families[declared]
        if family["type"] == "histogram":
            assert sample_name in (
                declared + "_bucket", declared + "_sum", declared + "_count"
            ), f"histogram sample {sample_name!r} outside family {declared!r}"
            if sample_name.endswith("_bucket"):
                assert any(k == "le" for k, _ in labels), line
        else:
            assert sample_name == declared, (
                f"sample {sample_name!r} under family {declared!r}"
            )
        value = match.group("value")
        families[declared]["samples"][(sample_name, labels)] = (
            float("nan") if value == "NaN" else float(value)
        )
    for name, family in families.items():
        assert family["type"] is not None, f"family {name} missing TYPE"
        if family["type"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _check_histogram(name: str, samples: dict) -> None:
    """Cumulative buckets must be monotone and end at +Inf == _count."""
    series: dict[tuple, list[tuple[float, float]]] = {}
    for (sample_name, labels), value in samples.items():
        if not sample_name.endswith("_bucket"):
            continue
        le = dict(labels)["le"]
        rest = tuple(kv for kv in labels if kv[0] != "le")
        series.setdefault(rest, []).append(
            (float("inf") if le == "+Inf" else float(le), value)
        )
    for rest, buckets in series.items():
        buckets.sort()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), f"{name}{rest}: non-monotone buckets"
        assert buckets[-1][0] == float("inf"), f"{name}{rest}: no +Inf bucket"
        count_key = (name + "_count", rest)
        assert count_key in samples, f"{name}{rest}: missing _count"
        assert buckets[-1][1] == samples[count_key], (
            f"{name}{rest}: +Inf bucket != _count"
        )
        assert (name + "_sum", rest) in samples, f"{name}{rest}: missing _sum"


@pytest.fixture
def simple_table() -> Table:
    """The paper's running example (Figure 2): four 3-D tuples."""
    return make_table(
        [
            (5, 1, 9),
            (4, 4, 8),
            (1, 3, 7),
            (3, 2, 3),
        ],
        kinds=InterfaceKind.RQ,
        domain=10,
    )


@pytest.fixture
def simple_interface(simple_table) -> TopKInterface:
    return TopKInterface(simple_table, ranker=LinearRanker(), k=1)
