"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    LinearRanker,
    Schema,
    Table,
    TopKInterface,
)


def make_table(
    values,
    kinds=None,
    domain: int | None = None,
    filters=None,
    filter_domains=None,
) -> Table:
    """Build a table from a plain list of value tuples.

    ``kinds`` is a single :class:`InterfaceKind` or one per attribute;
    ``domain`` defaults to one past the largest value seen.
    """
    matrix = np.asarray(values, dtype=np.int64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    m = matrix.shape[1]
    if domain is None:
        domain = int(matrix.max(initial=0)) + 1
    if kinds is None:
        kinds = InterfaceKind.RQ
    if isinstance(kinds, InterfaceKind):
        kinds = [kinds] * m
    attributes = [
        Attribute(f"a{i}", domain, kinds[i]) for i in range(m)
    ]
    for name in (filters or {}):
        size = (filter_domains or {}).get(
            name, int(max(filters[name])) + 1 if len(filters[name]) else 1
        )
        attributes.append(Attribute(name, size, InterfaceKind.FILTER))
    return Table(Schema(attributes), matrix, filters)


def truth_values(table: Table) -> frozenset[tuple[int, ...]]:
    """Ground-truth skyline of ``table`` as value vectors."""
    return frozenset(
        tuple(int(v) for v in row)
        for row in table.matrix[table.skyline_indices()]
    )


def truth_band_values(table: Table, band: int) -> frozenset[tuple[int, ...]]:
    """Ground-truth K-skyband of ``table`` as value vectors."""
    return frozenset(
        tuple(int(v) for v in row)
        for row in table.matrix[table.skyband_indices(band)]
    )


def random_table(
    rng: np.random.Generator,
    kinds,
    n: int,
    domain: int,
    distinct: bool = False,
) -> Table:
    """A uniform random table over the given interface kinds."""
    m = len(kinds)
    if distinct:
        total = domain ** m
        n = min(n, total)
        cells = rng.choice(total, size=n, replace=False)
        matrix = np.stack([(cells // domain ** j) % domain for j in range(m)], axis=1)
    else:
        matrix = rng.integers(0, domain, size=(n, m))
    schema = Schema([Attribute(f"a{i}", domain, kinds[i]) for i in range(m)])
    return Table(schema, matrix)


@pytest.fixture
def simple_table() -> Table:
    """The paper's running example (Figure 2): four 3-D tuples."""
    return make_table(
        [
            (5, 1, 9),
            (4, 4, 8),
            (1, 3, 7),
            (3, 2, 3),
        ],
        kinds=InterfaceKind.RQ,
        domain=10,
    )


@pytest.fixture
def simple_interface(simple_table) -> TopKInterface:
    return TopKInterface(simple_table, ranker=LinearRanker(), k=1)
