"""Tests for attribute and schema definitions."""

import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    InvalidDomainValueError,
    Schema,
    UnknownAttributeError,
)


class TestInterfaceKind:
    def test_filter_is_not_ranking(self):
        assert not InterfaceKind.FILTER.is_ranking

    def test_sq_rq_pq_are_ranking(self):
        for kind in (InterfaceKind.SQ, InterfaceKind.RQ, InterfaceKind.PQ):
            assert kind.is_ranking

    def test_upper_bound_support(self):
        assert InterfaceKind.SQ.supports_upper_bound
        assert InterfaceKind.RQ.supports_upper_bound
        assert not InterfaceKind.PQ.supports_upper_bound

    def test_lower_bound_support_is_rq_only(self):
        assert InterfaceKind.RQ.supports_lower_bound
        assert not InterfaceKind.SQ.supports_lower_bound
        assert not InterfaceKind.PQ.supports_lower_bound


class TestAttribute:
    def test_max_value(self):
        assert Attribute("price", 100).max_value == 99

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            Attribute("price", 0)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            Attribute("cut", 3, labels=("Ideal", "Good"))

    def test_label_lookup(self):
        cut = Attribute("cut", 2, labels=("Ideal", "Good"))
        assert cut.label(0) == "Ideal"
        assert cut.label(1) == "Good"

    def test_label_defaults_to_value(self):
        assert Attribute("price", 5).label(3) == 3

    def test_label_validates_domain(self):
        with pytest.raises(InvalidDomainValueError):
            Attribute("price", 5).label(5)

    def test_validate_value_bounds(self):
        attribute = Attribute("price", 5)
        attribute.validate_value(0)
        attribute.validate_value(4)
        with pytest.raises(InvalidDomainValueError):
            attribute.validate_value(-1)
        with pytest.raises(InvalidDomainValueError):
            attribute.validate_value(5)


class TestSchema:
    def _schema(self):
        return Schema(
            [
                Attribute("price", 100, InterfaceKind.RQ),
                Attribute("stops", 3, InterfaceKind.PQ),
                Attribute("duration", 50, InterfaceKind.SQ),
                Attribute("city", 10, InterfaceKind.FILTER),
            ]
        )

    def test_m_counts_only_ranking(self):
        assert self._schema().m == 3

    def test_ranking_order_preserved(self):
        names = [a.name for a in self._schema().ranking_attributes]
        assert names == ["price", "stops", "duration"]

    def test_filtering_attributes(self):
        names = [a.name for a in self._schema().filtering_attributes]
        assert names == ["city"]

    def test_domain_sizes(self):
        assert self._schema().domain_sizes == (100, 3, 50)

    def test_lookup_by_name(self):
        assert self._schema()["stops"].kind is InterfaceKind.PQ

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            self._schema()["color"]

    def test_contains(self):
        schema = self._schema()
        assert "price" in schema
        assert "color" not in schema

    def test_ranking_index(self):
        assert self._schema().ranking_index("duration") == 2

    def test_ranking_index_of_filter_raises(self):
        with pytest.raises(UnknownAttributeError):
            self._schema().ranking_index("city")

    def test_indices_of_kind(self):
        schema = self._schema()
        assert schema.indices_of_kind(InterfaceKind.PQ) == (1,)
        assert schema.indices_of_kind(InterfaceKind.RQ) == (0,)
        assert schema.indices_of_kind(InterfaceKind.SQ) == (2,)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Attribute("a", 2), Attribute("a", 3)])

    def test_iteration_and_len(self):
        schema = self._schema()
        assert len(schema) == 4
        assert [a.name for a in schema] == ["price", "stops", "duration", "city"]
