"""Tests for the domination-consistent ranking functions."""

import numpy as np
import pytest

from repro.hiddendb import (
    LexicographicRanker,
    LinearRanker,
    RandomSkylineRanker,
    ranker_from_label,
)
from repro.hiddendb.ranking import is_domination_consistent_order

from ..conftest import make_table


def _order(ranker, table):
    bound = ranker.bind(table)
    return bound.top(np.arange(table.n), table.n)


class TestLinearRanker:
    def test_unit_weights_rank_by_sum(self):
        table = make_table([(5, 5), (1, 1), (3, 3)], domain=10)
        assert _order(LinearRanker(), table).tolist() == [1, 2, 0]

    def test_custom_weights(self):
        table = make_table([(0, 9), (9, 0)], domain=10)
        assert _order(LinearRanker([1.0, 0.0]), table).tolist() == [0, 1]
        assert _order(LinearRanker([0.0, 1.0]), table).tolist() == [1, 0]

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            LinearRanker([1.0, -1.0])

    def test_weight_count_mismatch(self):
        table = make_table([(1, 2)])
        with pytest.raises(ValueError):
            LinearRanker([1.0]).bind(table)

    def test_zero_weight_ties_break_by_values(self):
        # Same price, different quality: the dominating tuple must rank first
        # even though the score ties (domination consistency).
        table = make_table([(5, 9), (5, 0)], domain=10)
        ranker = LinearRanker.single_attribute(0, 2)
        assert _order(ranker, table).tolist() == [1, 0]

    def test_top_k_truncation(self):
        table = make_table([(i,) for i in range(100)], domain=100)
        bound = LinearRanker().bind(table)
        top = bound.top(np.arange(100), 3)
        assert top.tolist() == [0, 1, 2]

    def test_top_with_large_candidate_set_and_ties(self):
        values = [(1, 0)] * 200 + [(0, 0)]
        table = make_table(values, domain=2)
        bound = LinearRanker().bind(table)
        top = bound.top(np.arange(table.n), 2)
        assert top[0] == 200  # the dominating tuple wins despite 200 ties
        assert top[1] == 0

    def test_empty_candidate_set(self):
        table = make_table([(1,)])
        bound = LinearRanker().bind(table)
        assert bound.top(np.empty(0, dtype=np.int64), 5).size == 0


class TestLexicographicRanker:
    def test_priority_order(self):
        table = make_table([(2, 0), (1, 9)], domain=10)
        assert _order(LexicographicRanker([0]), table).tolist() == [1, 0]
        assert _order(LexicographicRanker([1]), table).tolist() == [0, 1]

    def test_priority_completed_with_remaining_attributes(self):
        table = make_table([(1, 5), (1, 3)], domain=10)
        assert _order(LexicographicRanker([0]), table).tolist() == [1, 0]

    def test_invalid_priority_rejected(self):
        table = make_table([(1, 2)])
        with pytest.raises(ValueError):
            LexicographicRanker([5]).bind(table)


class TestRandomSkylineRanker:
    def test_top_is_always_a_matching_skyline_tuple(self):
        rng = np.random.default_rng(0)
        table = make_table(rng.integers(0, 10, (50, 3)), domain=10)
        skyline = {row.values for row in table.skyline_rows()}
        bound = RandomSkylineRanker(seed=1).bind(table)
        for _ in range(20):
            top = bound.top(np.arange(table.n), 1)
            assert table.row(int(top[0])).values in skyline

    def test_selection_is_seed_deterministic(self):
        table = make_table([(0, 9), (9, 0), (5, 5)], domain=10)
        a = RandomSkylineRanker(seed=7).bind(table)
        b = RandomSkylineRanker(seed=7).bind(table)
        picks_a = [int(a.top(np.arange(3), 1)[0]) for _ in range(10)]
        picks_b = [int(b.top(np.arange(3), 1)[0]) for _ in range(10)]
        assert picks_a == picks_b

    def test_covers_all_skyline_choices(self):
        table = make_table([(0, 9), (9, 0), (5, 5)], domain=10)
        bound = RandomSkylineRanker(seed=3).bind(table)
        picks = {int(bound.top(np.arange(3), 1)[0]) for _ in range(60)}
        assert picks == {0, 1, 2}

    def test_k_greater_than_one_fills_with_fallback(self):
        table = make_table([(0, 9), (9, 0), (5, 5), (6, 6)], domain=10)
        bound = RandomSkylineRanker(seed=0).bind(table)
        top = bound.top(np.arange(4), 4)
        assert len(top) == 4
        assert sorted(top.tolist()) == [0, 1, 2, 3]


class TestDominationConsistency:
    @pytest.mark.parametrize(
        "ranker",
        [
            LinearRanker(),
            LinearRanker([0.0, 1.0, 0.0]),
            LexicographicRanker([2, 0, 1]),
            RandomSkylineRanker(seed=5),
        ],
    )
    def test_full_order_is_domination_consistent(self, ranker):
        rng = np.random.default_rng(11)
        table = make_table(rng.integers(0, 6, (40, 3)), domain=6)
        order = ranker.bind(table).top(np.arange(table.n), table.n)
        assert is_domination_consistent_order(table.matrix, order)

    def test_helper_detects_violation(self):
        matrix = np.array([[1, 1], [0, 0]])
        assert not is_domination_consistent_order(matrix, np.array([0, 1]))
        assert is_domination_consistent_order(matrix, np.array([1, 0]))


class TestTotalOrder:
    @pytest.mark.parametrize(
        "ranker",
        [
            LinearRanker(),
            LinearRanker([2.0, 0.0, 1.0]),
            LexicographicRanker([1, 2, 0]),
        ],
        ids=["sum", "weighted", "lexicographic"],
    )
    def test_total_order_equals_top_of_everything(self, ranker):
        # The serving fast path's invariant: the precomputed permutation
        # is exactly what top() returns when asked for the whole table.
        rng = np.random.default_rng(3)
        table = make_table(rng.integers(0, 5, (60, 3)), domain=5)
        bound = ranker.bind(table)
        assert bound.has_total_order
        order = bound.total_order()
        np.testing.assert_array_equal(
            order, bound.top(np.arange(table.n), table.n)
        )
        assert bound.total_order() is order  # cached

    def test_random_ranker_has_no_total_order(self):
        table = make_table([(0, 1), (1, 0)])
        bound = RandomSkylineRanker(seed=1).bind(table)
        assert not bound.has_total_order
        assert bound.total_order() is None


class TestRankerFromLabel:
    @pytest.mark.parametrize(
        "ranker",
        [
            LinearRanker(),
            LinearRanker([1.5, 0.0, 2.0]),
            LexicographicRanker(),
            LexicographicRanker([2, 0]),
        ],
        ids=["sum", "weighted", "lex", "lex-priority"],
    )
    def test_round_trips_describe(self, ranker):
        rebuilt = ranker_from_label(ranker.describe())
        assert rebuilt.describe() == ranker.describe()

    def test_rejects_unreconstructible_labels(self):
        for label in ("RandomSkylineRanker(seed=0, fallback=LinearRanker)",
                      "nonsense", "LinearRanker(weights=oops)"):
            with pytest.raises(ValueError, match="cannot reconstruct"):
                ranker_from_label(label)
