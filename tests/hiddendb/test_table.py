"""Tests for the table substrate."""

import numpy as np
import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    InvalidDomainValueError,
    Query,
    Schema,
    Table,
    UnknownAttributeError,
)

from ..conftest import make_table


class TestConstruction:
    def test_rejects_wrong_column_count(self):
        schema = Schema([Attribute("a", 5), Attribute("b", 5)])
        with pytest.raises(ValueError):
            Table(schema, [[1, 2, 3]])

    def test_rejects_out_of_domain_values(self):
        schema = Schema([Attribute("a", 5)])
        with pytest.raises(InvalidDomainValueError):
            Table(schema, [[5]])
        with pytest.raises(InvalidDomainValueError):
            Table(schema, [[-1]])

    def test_rejects_unknown_filter_column(self):
        schema = Schema([Attribute("a", 5)])
        with pytest.raises(UnknownAttributeError):
            Table(schema, [[1]], {"city": [0]})

    def test_rejects_misshapen_filter_column(self):
        schema = Schema(
            [Attribute("a", 5), Attribute("city", 3, InterfaceKind.FILTER)]
        )
        with pytest.raises(ValueError):
            Table(schema, [[1], [2]], {"city": [0]})

    def test_empty_table(self):
        schema = Schema([Attribute("a", 5)])
        table = Table(schema, np.empty((0, 1), dtype=np.int64))
        assert table.n == 0
        assert len(table.skyline_indices()) == 0

    def test_matrix_is_read_only(self):
        table = make_table([(1, 2)])
        with pytest.raises(ValueError):
            table.matrix[0, 0] = 9


class TestAccessors:
    def test_row_materialisation(self):
        table = make_table([(1, 2), (3, 4)])
        row = table.row(1)
        assert row.rid == 1
        assert row.values == (3, 4)
        assert row[0] == 3
        assert len(row) == 2

    def test_rows_batch(self):
        table = make_table([(1, 2), (3, 4), (5, 6)])
        assert [r.values for r in table.rows([2, 0])] == [(5, 6), (1, 2)]

    def test_rows_vectorized_materialisation(self):
        # The batched path (one fancy-indexed slice + one tolist) must be
        # indistinguishable from per-rid row() calls: input order kept,
        # duplicates allowed, plain-int payloads, empty input fine.
        table = make_table([(1, 2), (3, 4), (5, 6)])
        batch = table.rows(np.array([1, 1, 2]))
        assert batch == (table.row(1), table.row(1), table.row(2))
        assert all(
            type(row.rid) is int and type(row.values[0]) is int
            for row in batch
        )
        assert table.rows([]) == ()
        assert table.rows(np.empty(0, dtype=np.int64)) == ()

    def test_filter_columns_accessors(self):
        table = make_table(
            [(1,), (2,), (3,)],
            filters={"city": np.array([7, 0, 7])},
            filter_domains={"city": 8},
        )
        assert table.filter_names == ("city",)
        np.testing.assert_array_equal(
            table.filter_column("city"), np.array([7, 0, 7])
        )
        assert not table.filter_column("city").flags.writeable
        with pytest.raises(UnknownAttributeError):
            table.filter_column("nope")

    def test_iter_rows(self):
        table = make_table([(1, 2), (3, 4)])
        assert [row.rid for row in table.iter_rows()] == [0, 1]

    def test_filter_value(self):
        table = make_table([(1,)], filters={"city": np.array([7])},
                           filter_domains={"city": 8})
        assert table.filter_value("city", 0) == 7
        with pytest.raises(UnknownAttributeError):
            table.filter_value("state", 0)


class TestMatching:
    def test_range_match(self):
        table = make_table([(0, 9), (5, 5), (9, 0)], domain=10)
        query = Query.select_all().and_upper(0, 5)
        assert table.match_indices(query).tolist() == [0, 1]

    def test_point_match(self):
        table = make_table([(0, 9), (5, 5), (9, 0)], domain=10)
        query = Query.from_point({1: 5})
        assert table.match_indices(query).tolist() == [1]

    def test_filter_match(self):
        table = make_table(
            [(0,), (1,)],
            filters={"city": np.array([3, 4])},
            filter_domains={"city": 5},
        )
        query = Query.select_all().and_filter("city", 4)
        assert table.match_indices(query).tolist() == [1]

    def test_count_matches(self):
        table = make_table([(0,), (1,), (2,)], domain=3)
        assert table.count_matches(Query.select_all()) == 3
        assert table.count_matches(Query.select_all().and_upper(0, 1)) == 2

    def test_lower_bound_match(self):
        table = make_table([(0,), (5,), (9,)], domain=10)
        query = Query.select_all().and_lower(0, 5, 10)
        assert table.match_indices(query).tolist() == [1, 2]


class TestDerivedTables:
    def test_subsample_size_and_domain(self):
        table = make_table([(i % 7, i % 5) for i in range(100)], domain=10)
        sample = table.subsample(10, seed=1)
        assert sample.n == 10
        assert sample.schema is table.schema

    def test_subsample_too_large(self):
        with pytest.raises(ValueError):
            make_table([(1, 2)]).subsample(5)

    def test_project_ranking(self):
        table = make_table([(1, 2, 3), (4, 5, 6)], domain=10)
        projected = table.project_ranking([2, 0])
        assert projected.m == 2
        assert projected.row(0).values == (3, 1)

    def test_project_keeps_filters(self):
        table = make_table(
            [(1, 2)],
            filters={"city": np.array([2])},
            filter_domains={"city": 3},
        )
        projected = table.project_ranking([1])
        assert projected.filter_value("city", 0) == 2

    def test_with_kinds(self):
        table = make_table([(1, 2)], kinds=InterfaceKind.RQ)
        changed = table.with_kinds({"a0": InterfaceKind.PQ})
        assert changed.schema["a0"].kind is InterfaceKind.PQ
        assert changed.schema["a1"].kind is InterfaceKind.RQ


class TestGroundTruth:
    def test_skyline_rows(self):
        table = make_table([(0, 9), (5, 5), (9, 0), (6, 6)], domain=10)
        values = {row.values for row in table.skyline_rows()}
        assert values == {(0, 9), (5, 5), (9, 0)}

    def test_skyband(self):
        table = make_table([(0, 0), (1, 1), (2, 2)], domain=3)
        assert table.skyband_indices(1).tolist() == [0]
        assert table.skyband_indices(2).tolist() == [0, 1]
        assert table.skyband_indices(3).tolist() == [0, 1, 2]
