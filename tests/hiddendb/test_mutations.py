"""Mutation semantics of the live-table surface.

:meth:`Table.apply_mutations` is the freshness plane's single write path
-- the HTTP mutate endpoint, the CLI and the churn generator all funnel
through it -- so its contract is pinned here: ops apply in order, a batch
is atomic (validate everything before changing anything), one batch
advances ``data_version`` by exactly one, and rids are stable and never
reused.  The same batch applied to the SQLite-native table must leave
bit-identical state, and every serving engine must answer identically
over the mutated data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import CHURN_MIX, churn_ops, validate_ops
from repro.hiddendb import (
    Interval,
    InvalidDomainValueError,
    Query,
    SQLTable,
    UnknownAttributeError,
    build_sqltable,
)

from ..conftest import (
    DATAPLANE_ENGINES,
    build_engine_interface,
    make_table,
    truth_values,
)

ROWS = [(0, 9), (9, 0), (3, 6), (6, 3), (5, 5), (8, 8)]


def plain_table():
    return make_table(ROWS, domain=10)


def filtered_table():
    return make_table(
        ROWS,
        domain=10,
        filters={"city": np.array([0, 1, 0, 1, 2, 2])},
        filter_domains={"city": 3},
    )


class TestApplyMutations:
    def test_insert_appends_with_fresh_rid(self):
        table = plain_table()
        assert table.apply_mutations(
            [{"op": "insert", "values": [1, 1]}]
        ) == 1
        assert table.n == len(ROWS) + 1
        assert table.data_version == 1
        new_rid = int(table.rids[-1])
        assert new_rid not in range(len(ROWS))
        assert tuple(table.matrix[-1]) == (1, 1)

    def test_delete_removes_and_never_reuses_the_rid(self):
        table = plain_table()
        victim = int(table.rids[-1])
        table.apply_mutations([{"op": "delete", "rid": victim}])
        assert victim not in set(table.rids.tolist())
        table.apply_mutations([{"op": "insert", "values": [2, 2]}])
        # The vacated rid stays retired: the newcomer gets a higher one.
        assert int(table.rids[-1]) > victim

    def test_update_preserves_rid_and_overwrites_values(self):
        table = plain_table()
        target = int(table.rids[2])
        table.apply_mutations(
            [{"op": "update", "rid": target, "values": [7, 7]}]
        )
        assert int(table.rids[2]) == target
        assert tuple(table.matrix[2]) == (7, 7)

    def test_update_can_touch_filters_partially(self):
        table = filtered_table()
        target = int(table.rids[0])
        table.apply_mutations(
            [{"op": "update", "rid": target, "filters": {"city": 2}}]
        )
        # Ranking vector untouched, filter column rewritten in place.
        assert tuple(table.matrix[0]) == ROWS[0]
        assert int(table.filter_column("city")[0]) == 2

    def test_batch_advances_data_version_by_exactly_one(self):
        table = plain_table()
        table.apply_mutations([
            {"op": "insert", "values": [1, 1]},
            {"op": "delete", "rid": 0},
            {"op": "update", "rid": 1, "values": [4, 4]},
        ])
        assert table.data_version == 1

    def test_empty_batch_is_free(self):
        table = plain_table()
        assert table.apply_mutations([]) == 0
        assert table.data_version == 0

    def test_ops_apply_in_order_within_a_batch(self):
        table = plain_table()
        table.apply_mutations([{"op": "insert", "values": [1, 1]}])
        new_rid = int(table.rids[-1])
        # Later ops see earlier ops' effects: update the rid the same
        # batch's insert just minted.
        table.apply_mutations([
            {"op": "delete", "rid": new_rid},
            {"op": "insert", "values": [2, 2]},
            {"op": "update", "rid": new_rid + 1, "values": [3, 3]},
        ])
        assert tuple(table.matrix[-1]) == (3, 3)

    @pytest.mark.parametrize(
        "bad",
        [
            {"op": "insert", "values": [1]},  # arity
            {"op": "insert", "values": [1, 99]},  # domain violation
            {"op": "delete", "rid": 999},  # unknown rid
            {"op": "update", "rid": 0, "values": [1, -1]},  # negative
            {"op": "upsert", "values": [1, 1]},  # unknown op
        ],
        ids=["arity", "domain", "unknown-rid", "negative", "unknown-op"],
    )
    def test_invalid_batch_applies_nothing(self, bad):
        table = plain_table()
        before = table.matrix.copy()
        with pytest.raises(
            (ValueError, UnknownAttributeError, InvalidDomainValueError)
        ):
            # The valid leading delete must roll back with the batch.
            table.apply_mutations([{"op": "delete", "rid": 0}, bad])
        assert table.n == len(ROWS)
        assert table.data_version == 0
        assert np.array_equal(table.matrix, before)

    def test_insert_requires_every_filter_value(self):
        table = filtered_table()
        with pytest.raises(ValueError, match="city"):
            table.apply_mutations([{"op": "insert", "values": [1, 1]}])
        with pytest.raises(UnknownAttributeError):
            table.apply_mutations([
                {"op": "insert", "values": [1, 1],
                 "filters": {"city": 0, "zip": 1}}
            ])
        table.apply_mutations(
            [{"op": "insert", "values": [1, 1], "filters": {"city": 1}}]
        )
        assert int(table.filter_column("city")[-1]) == 1

    def test_snapshot_view_is_immune_to_later_mutations(self):
        table = plain_table()
        view = table.snapshot_view()
        table.apply_mutations([{"op": "delete", "rid": 0}])
        assert view.n == len(ROWS)
        assert view.data_version == 0
        assert table.data_version == 1


class TestChurnOps:
    def test_same_triple_names_the_same_batch(self):
        a, b = plain_table(), plain_table()
        assert churn_ops(a, 0.5, seed=7) == churn_ops(b, 0.5, seed=7)
        assert churn_ops(a, 0.5, seed=7) != churn_ops(a, 0.5, seed=8)

    def test_mix_controls_op_classes(self):
        table = make_table([(i % 10, (i * 3) % 10) for i in range(100)])
        deletes_only = churn_ops(table, 0.2, mix=(1.0, 0.0, 0.0))
        assert {op["op"] for op in deletes_only} == {"delete"}
        assert len(deletes_only) == 20
        default = churn_ops(table, 0.2)
        kinds = [op["op"] for op in default]
        assert set(kinds) == {"delete", "update", "insert"}
        assert kinds.count("delete") == round(20 * CHURN_MIX[0])

    def test_delete_and_update_targets_are_live_and_disjoint(self):
        table = make_table([(i % 10, (i * 3) % 10) for i in range(100)])
        ops = churn_ops(table, 0.5, seed=3)
        live = set(table.rids.tolist())
        targets = [op["rid"] for op in ops if "rid" in op]
        assert set(targets) <= live
        assert len(targets) == len(set(targets))
        # The batch is applicable as generated.
        assert table.apply_mutations(ops) == len(ops)

    def test_churned_filters_ride_along(self):
        table = filtered_table()
        ops = churn_ops(table, 1.0, seed=1)
        for op in ops:
            if op["op"] == "insert":
                assert set(op["filters"]) == {"city"}
        table.apply_mutations(ops)

    def test_input_validation(self):
        table = plain_table()
        with pytest.raises(ValueError, match="frac"):
            churn_ops(table, 0.0)
        with pytest.raises(ValueError, match="frac"):
            churn_ops(table, 1.5)
        with pytest.raises(ValueError, match="mix"):
            churn_ops(table, 0.5, mix=(-1.0, 1.0, 0.0))
        with pytest.raises(ValueError, match="empty"):
            churn_ops(make_table(np.empty((0, 2)), domain=10), 0.5)

    def test_validate_ops_shape_checks(self):
        assert validate_ops([{"op": "delete", "rid": 3}]) == [
            {"op": "delete", "rid": 3}
        ]
        with pytest.raises(ValueError, match="list"):
            validate_ops({"op": "delete", "rid": 3})
        with pytest.raises(ValueError, match="insert requires values"):
            validate_ops([{"op": "insert"}])
        with pytest.raises(ValueError, match="requires rid"):
            validate_ops([{"op": "update", "values": [1, 1]}])
        with pytest.raises(ValueError, match="expected"):
            validate_ops([{"op": "merge"}])


class TestEnginesAfterMutation:
    def churn(self, table):
        return churn_ops(table, 0.5, seed=11)

    def test_sqlite_table_mirrors_memory_semantics(self, tmp_path):
        table = filtered_table()
        path = tmp_path / "live.sqlite"
        build_sqltable(path, filtered_table())
        sql = SQLTable(path)
        ops = self.churn(table)
        assert table.apply_mutations(ops) == sql.apply_mutations(ops)
        mirrored = sql.as_memory()
        assert np.array_equal(mirrored.matrix, table.matrix)
        assert np.array_equal(mirrored.rids, table.rids)
        assert np.array_equal(
            mirrored.filter_column("city"), table.filter_column("city")
        )
        assert sql.data_version == table.data_version == 1
        # The rid high-water mark is persisted: a reopened handle keeps
        # minting fresh rids above everything ever seen.
        high = max(int(table.rids.max()), 0)
        reopened = SQLTable(path)
        reopened.apply_mutations(
            [{"op": "insert", "values": [1, 1], "filters": {"city": 0}}]
        )
        assert int(reopened.as_memory().rids.max()) > high
        assert reopened.data_version == 2

    @pytest.mark.parametrize("engine", DATAPLANE_ENGINES)
    def test_engines_answer_identically_after_churn(self, tmp_path, engine):
        table = make_table(
            [((i * 7) % 10, (i * 3) % 10) for i in range(150)], domain=10
        )
        table.apply_mutations(churn_ops(table, 0.3, seed=2))
        reference = build_engine_interface(table, "scan", tmp_path, k=5)
        candidate = build_engine_interface(table, engine, tmp_path, k=5)
        for ranges in (
            {},
            {0: Interval(0, 4)},
            {0: Interval(2, 7), 1: Interval(0, 5)},
            {0: Interval(9, 9), 1: Interval(9, 9)},
        ):
            query = Query(ranges=ranges)
            expected = reference.query(query)
            got = candidate.query(query)
            assert got.rows == expected.rows, (engine, query)
            assert got.overflow == expected.overflow, (engine, query)

    def test_skyline_truth_tracks_mutations(self):
        table = plain_table()
        assert (0, 9) in truth_values(table)
        table.apply_mutations([
            {"op": "insert", "values": [0, 0]},
        ])
        assert truth_values(table) == {(0, 0)}
