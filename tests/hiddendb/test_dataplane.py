"""Data-plane parity: the fast engines are bit-identical to the scan path.

The contract of :mod:`repro.hiddendb.dataplane` is that ``rank`` and
``sqlite`` answer every query with the *same* :class:`QueryResult` rows
(rids, values, order and overflow flag) the O(n) ``scan`` reference
produces, under every ranker with a query-independent total order.  These
tests gate that contract three ways: direct per-query probes, the full
algorithm x engine x strategy discovery grid, and the billing semantics
of the vectorised batch path.
"""

import numpy as np
import pytest

from repro import Discoverer, TopKInterface
from repro.hiddendb import (
    ENGINE_CHOICES,
    Interval,
    LexicographicRanker,
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    RandomSkylineRanker,
    SQLTable,
    UnknownAttributeError,
    build_sqltable,
    default_ranker,
    make_engine,
)

from ..conftest import (
    DATAPLANE_ENGINES,
    PARITY_TABLES,
    build_engine_interface,
    make_table,
    parity_run_engine_strategy_params,
)

def ranker_for(name, m):
    """Build the named ranker shaped for an ``m``-attribute table."""
    if name == "sum":
        return LinearRanker()
    if name == "weighted":
        return LinearRanker([2.0, 1.0, 0.5][:m] + [1.0] * max(0, m - 3))
    if name == "one-hot":
        weights = [0.0] * m
        weights[m - 1] = 1.0
        return LinearRanker(weights)
    return LexicographicRanker(list(reversed(range(m))))


RANKER_NAMES = ("sum", "weighted", "one-hot", "lexicographic")


def probe_queries(table, rng):
    """A query battery spanning the interesting answer shapes."""
    domain = table.schema.ranking_attributes[0].domain_size
    yield Query()  # unconstrained: pure top-k
    yield Query(ranges={0: Interval(0, 0), 1: Interval(0, 0)})  # likely empty
    yield Query(ranges={0: Interval(0, domain - 1)})  # no-op range
    for _ in range(20):
        ranges = {}
        for index in range(table.m):
            if rng.random() < 0.6:
                lo = int(rng.integers(0, domain))
                hi = int(rng.integers(lo, domain))
                ranges[index] = Interval(lo, hi)
        yield Query(ranges=ranges)


class TestQueryParity:
    @pytest.mark.parametrize("ranker_name", RANKER_NAMES)
    @pytest.mark.parametrize("name", sorted(PARITY_TABLES))
    def test_every_engine_answers_bit_identically(
        self, tmp_path, name, ranker_name
    ):
        table = PARITY_TABLES[name]
        ranker = ranker_for(ranker_name, table.m)
        reference = build_engine_interface(
            table, "scan", tmp_path, ranker=ranker, k=5, validate=False
        )
        candidates = {
            engine: build_engine_interface(
                table, engine, tmp_path, ranker=ranker, k=5, validate=False
            )
            for engine in DATAPLANE_ENGINES
        }
        rng = np.random.default_rng(7)
        for query in probe_queries(table, rng):
            expected = reference.query(query)
            for engine, interface in candidates.items():
                got = interface.query(query)
                assert got.rows == expected.rows, (engine, query)
                assert got.overflow == expected.overflow, (engine, query)
                assert got.sequence == expected.sequence, (engine, query)

    @pytest.mark.parametrize("engine", DATAPLANE_ENGINES)
    def test_filter_queries_match_scan(self, tmp_path, engine):
        table = make_table(
            [(i % 7, (i * 3) % 5, (i * 11) % 13) for i in range(120)],
            filters={"color": [i % 3 for i in range(120)]},
        )
        reference = TopKInterface(table, k=4, engine="scan")
        candidate = build_engine_interface(table, engine, tmp_path, k=4)
        for value in range(3):
            for ranges in ({}, {0: Interval(1, 5)}, {2: Interval(0, 4)}):
                query = Query(ranges=ranges, filters={"color": value})
                assert candidate.query(query).rows == reference.query(query).rows

    @pytest.mark.parametrize("engine", ("scan", "rank"))
    def test_unknown_filter_raises_on_every_engine(self, engine):
        table = make_table([(1, 2, 3), (4, 5, 6)])
        # validate=False lets the bogus filter reach the engine itself.
        interface = TopKInterface(table, k=2, engine=engine, validate=False)
        with pytest.raises(UnknownAttributeError):
            interface.query(Query(filters={"nope": 1}))

    def test_unknown_filter_raises_on_sqlite(self, tmp_path):
        table = make_table([(1, 2, 3), (4, 5, 6)])
        path = tmp_path / "t.sqlite"
        build_sqltable(path, table)
        interface = TopKInterface(SQLTable(path), k=2, validate=False)
        with pytest.raises(UnknownAttributeError):
            interface.query(Query(filters={"nope": 1}))

    def test_k_past_the_chunk_boundaries(self, tmp_path):
        # Answers spanning several growth chunks of the rank scan must
        # splice together in exact rank order.
        table = PARITY_TABLES["rq3"]
        k = table.n  # forces the scan through every chunk
        reference = TopKInterface(table, k=k, engine="scan")
        fast = TopKInterface(table, k=k, engine="rank")
        query = Query(ranges={0: Interval(0, 6)})
        assert fast.query(query).rows == reference.query(query).rows


class TestDiscoveryGrid:
    @pytest.mark.parametrize(
        "algorithm,table,engine,strategy,config",
        parity_run_engine_strategy_params(),
    )
    def test_algorithm_engine_strategy_matches_reference(
        self, tmp_path, algorithm, table, engine, strategy, config
    ):
        reference = Discoverer().run(
            TopKInterface(table, k=5, engine="scan"), algorithm
        )
        interface = build_engine_interface(table, engine, tmp_path, k=5)
        result = Discoverer(config).run(interface, algorithm)
        # The pre-change discovery outcome is the gate: same skyline, same
        # billed cost, same completeness.  Under the serial strategy the
        # crawl is fully deterministic, so the engines must additionally
        # reproduce the exact retrieval sequence row for row.
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert result.complete == reference.complete
        if strategy == "serial":
            assert result.skyline == reference.skyline
            assert result.retrieved == reference.retrieved


class TestEngineDispatch:
    def test_auto_picks_rank_for_total_order_rankers(self):
        table = PARITY_TABLES["rq3"]
        assert TopKInterface(table, k=2).engine == "rank"
        assert TopKInterface(
            table, LexicographicRanker(), k=2
        ).engine == "rank"

    def test_auto_falls_back_to_scan_for_random_ranker(self):
        table = PARITY_TABLES["rq3"]
        interface = TopKInterface(table, RandomSkylineRanker(seed=3), k=2)
        assert interface.engine == "scan"

    def test_forcing_rank_with_random_ranker_raises(self):
        table = PARITY_TABLES["rq3"]
        with pytest.raises(ValueError, match="total order"):
            TopKInterface(table, RandomSkylineRanker(), k=2, engine="rank")

    def test_forcing_sqlite_on_memory_table_raises(self):
        with pytest.raises(ValueError, match="not SQLite-backed"):
            TopKInterface(PARITY_TABLES["rq3"], k=2, engine="sqlite")

    def test_unknown_engine_name_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine(PARITY_TABLES["rq3"], LinearRanker(), "warp")
        assert set(ENGINE_CHOICES) == {"auto", "scan", "rank", "sqlite"}

    def test_auto_on_sqltable_is_sql_native(self, tmp_path):
        table = PARITY_TABLES["rq3"]
        path = tmp_path / "t.sqlite"
        build_sqltable(path, table, LinearRanker([1.0, 2.0, 3.0]))
        sql = SQLTable(path)
        # Default ranker is reconstructed from the persisted label ...
        interface = TopKInterface(sql, k=3)
        assert interface.engine == "sqlite"
        assert interface.ranking_label == "LinearRanker(weights=[1.0, 2.0, 3.0])"
        assert isinstance(default_ranker(sql), LinearRanker)

    def test_sqltable_under_foreign_ranker_degrades_to_memory(self, tmp_path):
        # A ranking other than the persisted one cannot use the rank
        # index; the table is materialised and served by the rank engine,
        # still bit-identical to scan.
        table = PARITY_TABLES["rq3"]
        path = tmp_path / "t.sqlite"
        build_sqltable(path, table, LinearRanker())
        sql = SQLTable(path)
        foreign = LexicographicRanker([1])
        interface = TopKInterface(sql, foreign, k=3)
        assert interface.engine == "rank"
        reference = TopKInterface(table, foreign, k=3, engine="scan")
        query = Query(ranges={0: Interval(1, 6)})
        assert interface.query(query).rows == reference.query(query).rows
        with pytest.raises(ValueError, match="rank index was built for"):
            TopKInterface(sql, foreign, k=3, engine="sqlite")

    def test_random_seeded_ranker_is_reproducible_on_scan(self):
        table = PARITY_TABLES["rq3"]
        first = TopKInterface(table, RandomSkylineRanker(seed=11), k=3)
        second = TopKInterface(table, RandomSkylineRanker(seed=11), k=3)
        query = Query(ranges={0: Interval(0, 5)})
        assert first.query(query).rows == second.query(query).rows


class TestBatchSemantics:
    @pytest.mark.parametrize("engine", ("scan",) + DATAPLANE_ENGINES)
    def test_batch_matches_sequential_issue(self, tmp_path, engine):
        table = PARITY_TABLES["rq3"]
        queries = [Query(ranges={0: Interval(0, hi)}) for hi in range(6)]
        sequential = build_engine_interface(table, engine, tmp_path, k=5)
        batched = build_engine_interface(table, engine, tmp_path, k=5)
        expected = tuple(sequential.query(q) for q in queries)
        assert batched.batch_query(queries) == expected
        assert batched.queries_issued == sequential.queries_issued

    @pytest.mark.parametrize("engine", ("scan",) + DATAPLANE_ENGINES)
    def test_batch_budget_exhaustion_carries_partial_results(
        self, tmp_path, engine
    ):
        table = PARITY_TABLES["rq3"]
        queries = [Query(ranges={0: Interval(0, hi)}) for hi in range(6)]
        interface = build_engine_interface(
            table, engine, tmp_path, k=5, budget=4
        )
        with pytest.raises(QueryBudgetExceeded) as info:
            interface.batch_query(queries)
        partial = info.value.partial_results
        assert len(partial) == 4
        assert [r.sequence for r in partial] == [1, 2, 3, 4]
        assert interface.queries_issued == 4  # the failing item never bills

    def test_batch_invalid_query_aborts_without_billing_it(self):
        table = PARITY_TABLES["sq3"]  # SQ attributes reject range predicates
        good = Query.from_point({0: 1})
        bad = Query(ranges={0: Interval(1, 5)})
        interface = TopKInterface(table, k=2)
        from repro.hiddendb import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError) as info:
            interface.batch_query([good, good, bad, good])
        assert len(info.value.partial_results) == 2
        assert interface.queries_issued == 2

    def test_unvalidated_interface_keeps_per_item_loop(self):
        # validate=False means execution itself may raise, so billing must
        # stay interleaved per item: the bad query IS billed (exactly as
        # issuing it alone would), and later items are never charged.
        table = make_table([(1, 2, 3), (4, 5, 6)])
        good = Query()
        bad = Query(filters={"nope": 1})
        interface = TopKInterface(table, k=1, validate=False)
        with pytest.raises(UnknownAttributeError) as info:
            interface.batch_query([good, bad, good])
        assert len(info.value.partial_results) == 1
        assert interface.queries_issued == 2

    def test_batch_results_are_logged(self, tmp_path):
        table = PARITY_TABLES["rq3"]
        interface = build_engine_interface(
            table, "rank", tmp_path, k=3, record_log=True
        )
        queries = [Query(ranges={0: Interval(0, hi)}) for hi in range(4)]
        results = interface.batch_query(queries)
        assert interface.log == results
