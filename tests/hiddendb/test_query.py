"""Tests for the conjunctive query model."""

import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    Query,
    Schema,
    UnsupportedQueryError,
    predicates_from_strings,
)


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_point(self):
        assert Interval(4, 4).is_point
        assert not Interval(3, 4).is_point

    def test_width(self):
        assert Interval(2, 5).width == 4

    def test_contains(self):
        interval = Interval(2, 5)
        assert interval.contains(2)
        assert interval.contains(5)
        assert not interval.contains(1)
        assert not interval.contains(6)

    def test_intersection(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_disjoint_intersection_is_none(self):
        assert Interval(0, 2).intersect(Interval(3, 4)) is None


class TestQueryRefinement:
    def test_select_all_matches_everything(self):
        assert Query.select_all().matches_values((0, 99, 5))

    def test_and_upper(self):
        query = Query.select_all().and_upper(0, 4)
        assert query.matches_values((4, 100))
        assert not query.matches_values((5, 0))

    def test_and_upper_negative_is_unsatisfiable(self):
        assert Query.select_all().and_upper(0, -1) is None

    def test_and_upper_intersects(self):
        query = Query.select_all().and_upper(0, 7).and_upper(0, 3)
        assert query.interval(0, 100) == Interval(0, 3)

    def test_and_lower(self):
        query = Query.select_all().and_lower(1, 5, 10)
        assert query.matches_values((0, 5))
        assert not query.matches_values((0, 4))

    def test_and_lower_past_domain_is_unsatisfiable(self):
        assert Query.select_all().and_lower(0, 10, 10) is None

    def test_and_point(self):
        query = Query.select_all().and_point(0, 3)
        assert query.matches_values((3, 0))
        assert not query.matches_values((2, 0))

    def test_contradictory_point_is_unsatisfiable(self):
        query = Query.select_all().and_upper(0, 2)
        assert query.and_point(0, 3) is None

    def test_empty_range_after_bounds(self):
        query = Query.select_all().and_lower(0, 5, 10)
        assert query.and_upper(0, 4) is None

    def test_merge(self):
        left = Query.select_all().and_upper(0, 5)
        right = Query.select_all().and_lower(0, 2, 10).and_point(1, 3)
        merged = left.merge(right)
        assert merged.interval(0, 10) == Interval(2, 5)
        assert merged.interval(1, 10) == Interval(3, 3)

    def test_merge_unsatisfiable(self):
        left = Query.select_all().and_upper(0, 2)
        right = Query.select_all().and_lower(0, 5, 10)
        assert left.merge(right) is None

    def test_merge_conflicting_filters(self):
        left = Query.select_all().and_filter("city", 1)
        right = Query.select_all().and_filter("city", 2)
        assert left.merge(right) is None

    def test_merge_is_idempotent(self):
        query = Query.select_all().and_upper(0, 5).and_filter("city", 1)
        assert query.merge(query) == query


class TestQuerySemantics:
    def test_filters_do_not_affect_value_matching(self):
        query = Query.select_all().and_filter("city", 3)
        assert query.matches_values((0, 0))

    def test_equality_and_hash(self):
        a = Query.select_all().and_upper(0, 5).and_point(1, 2)
        b = Query.select_all().and_point(1, 2).and_upper(0, 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_num_predicates(self):
        query = Query.select_all().and_upper(0, 5).and_filter("city", 1)
        assert query.num_predicates == 2

    def test_constrained_attributes_sorted(self):
        query = Query.select_all().and_upper(2, 5).and_upper(0, 3)
        assert query.constrained_attributes == (0, 2)

    def test_covers_unconstrained_plane_attribute(self):
        broad = Query.select_all()
        plane = Query.from_point({2: 1, 3: 0})
        assert broad.covers(plane)

    def test_covers_requires_containment(self):
        broad = Query.select_all().and_upper(2, 0)
        plane = Query.from_point({2: 1})
        assert not broad.covers(plane)

    def test_covers_with_matching_interval(self):
        broad = Query.select_all().and_upper(2, 3)
        plane = Query.from_point({2: 1})
        assert broad.covers(plane)

    def test_covers_requires_filter_agreement(self):
        broad = Query.select_all().and_filter("city", 1)
        plane = Query.from_point({0: 1})
        assert not broad.covers(plane)

    def test_repr_mentions_predicates(self):
        query = Query.select_all().and_upper(0, 5)
        assert "A0" in repr(query)
        assert "SELECT *" in repr(Query.select_all())


class TestValidation:
    def _schema(self):
        return Schema(
            [
                Attribute("sq", 10, InterfaceKind.SQ),
                Attribute("rq", 10, InterfaceKind.RQ),
                Attribute("pq", 10, InterfaceKind.PQ),
                Attribute("city", 5, InterfaceKind.FILTER),
            ]
        )

    def test_sq_accepts_upper_bound(self):
        Query.select_all().and_upper(0, 4).validate(self._schema())

    def test_sq_accepts_point(self):
        Query.select_all().and_point(0, 4).validate(self._schema())

    def test_sq_rejects_lower_bound(self):
        query = Query.select_all().and_lower(0, 3, 10)
        with pytest.raises(UnsupportedQueryError):
            query.validate(self._schema())

    def test_rq_accepts_two_ended(self):
        query = Query.select_all().and_lower(1, 2, 10).and_upper(1, 7)
        query.validate(self._schema())

    def test_pq_rejects_range(self):
        query = Query.select_all().and_upper(2, 4)
        with pytest.raises(UnsupportedQueryError):
            query.validate(self._schema())

    def test_pq_accepts_point(self):
        Query.select_all().and_point(2, 4).validate(self._schema())

    def test_out_of_domain_rejected(self):
        query = Query.select_all().and_point(1, 10)
        with pytest.raises(UnsupportedQueryError):
            query.validate(self._schema())

    def test_unknown_attribute_index_rejected(self):
        query = Query.select_all().and_point(7, 1)
        with pytest.raises(UnsupportedQueryError):
            query.validate(self._schema())

    def test_filter_on_ranking_attribute_rejected(self):
        query = Query.select_all().and_filter("rq", 1)
        with pytest.raises(UnsupportedQueryError):
            query.validate(self._schema())


class TestPredicateParser:
    def _schema(self):
        return Schema(
            [
                Attribute("price", 100, InterfaceKind.RQ),
                Attribute("city", 5, InterfaceKind.FILTER),
            ]
        )

    def test_parses_all_operators(self):
        schema = self._schema()
        query = predicates_from_strings(
            schema, ["price < 10", "price >= 2", "city = 3"]
        )
        assert query.interval(0, 100) == Interval(2, 9)
        assert query.filters == {"city": 3}

    def test_rejects_range_on_filter(self):
        with pytest.raises(ValueError):
            predicates_from_strings(self._schema(), ["city < 3"])

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            predicates_from_strings(self._schema(), ["price <"])

    def test_rejects_empty_result(self):
        with pytest.raises(ValueError):
            predicates_from_strings(self._schema(), ["price < 5", "price > 7"])
