"""Tests for the top-k search interface."""

import pytest

from repro.hiddendb import (
    InterfaceKind,
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    TopKInterface,
    UnsupportedQueryError,
)

from ..conftest import make_table


class TestBasicQuerying:
    def test_returns_at_most_k(self):
        table = make_table([(i,) for i in range(10)], domain=10)
        interface = TopKInterface(table, k=3)
        result = interface.query(Query.select_all())
        assert [row.values for row in result.rows] == [(0,), (1,), (2,)]
        assert result.overflow

    def test_underflow(self):
        table = make_table([(1,), (2,)], domain=10)
        interface = TopKInterface(table, k=5)
        result = interface.query(Query.select_all())
        assert len(result.rows) == 2
        assert not result.overflow

    def test_exactly_k_matches_reports_overflow(self):
        # A real interface cannot tell "exactly k" from "more than k".
        table = make_table([(1,), (2,)], domain=10)
        interface = TopKInterface(table, k=2)
        assert interface.query(Query.select_all()).overflow

    def test_empty_answer(self):
        table = make_table([(5,)], domain=10)
        interface = TopKInterface(table, k=1)
        result = interface.query(Query.select_all().and_upper(0, 3))
        assert result.is_empty
        with pytest.raises(IndexError):
            result.top

    def test_top_property(self):
        table = make_table([(3,), (1,)], domain=10)
        interface = TopKInterface(table, k=2)
        assert interface.query(Query.select_all()).top.values == (1,)

    def test_domination_consistency_of_answers(self):
        table = make_table([(0, 0), (0, 1), (1, 0)], domain=2)
        interface = TopKInterface(table, k=3)
        rows = interface.query(Query.select_all()).rows
        assert rows[0].values == (0, 0)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKInterface(make_table([(1,)]), k=0)


class TestCounting:
    def test_counts_every_query(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1)
        for expected in range(1, 4):
            interface.query(Query.select_all())
            assert interface.queries_issued == expected

    def test_sequence_numbers(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1)
        first = interface.query(Query.select_all())
        second = interface.query(Query.select_all())
        assert (first.sequence, second.sequence) == (1, 2)

    def test_reset(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1)
        interface.query(Query.select_all())
        interface.reset()
        assert interface.queries_issued == 0


class TestBudget:
    def test_budget_exhaustion(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1, budget=2)
        interface.query(Query.select_all())
        interface.query(Query.select_all())
        assert interface.budget_remaining == 0
        with pytest.raises(QueryBudgetExceeded):
            interface.query(Query.select_all())
        # The rejected query is not charged.
        assert interface.queries_issued == 2

    def test_budget_remaining(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1, budget=5)
        interface.query(Query.select_all())
        assert interface.budget_remaining == 4

    def test_unlimited_budget(self):
        interface = TopKInterface(make_table([(1,)]), k=1)
        assert interface.budget_remaining is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            TopKInterface(make_table([(1,)]), k=1, budget=-1)

    def test_reset_with_new_budget(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1, budget=1)
        interface.query(Query.select_all())
        interface.reset(budget=3)
        assert interface.budget_remaining == 3

    def test_reset_without_budget_keeps_limit(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1, budget=2)
        interface.query(Query.select_all())
        interface.reset()
        assert interface.budget == 2
        assert interface.budget_remaining == 2

    def test_reset_budget_none_removes_limit(self):
        table = make_table([(1,)], domain=10)
        interface = TopKInterface(table, k=1, budget=1)
        interface.query(Query.select_all())
        interface.reset(budget=None)
        assert interface.budget is None
        # Formerly impossible: the old API read None as "keep the budget".
        interface.query(Query.select_all())
        interface.query(Query.select_all())
        assert interface.queries_issued == 2

    def test_reset_rejects_invalid_budget(self):
        interface = TopKInterface(make_table([(1,)]), k=1)
        with pytest.raises(ValueError):
            interface.reset(budget=-1)
        with pytest.raises(TypeError):
            interface.reset(budget="many")


class TestValidation:
    def test_rejects_unsupported_predicates(self):
        table = make_table([(1, 1)], kinds=InterfaceKind.PQ, domain=10)
        interface = TopKInterface(table, k=1)
        with pytest.raises(UnsupportedQueryError):
            interface.query(Query.select_all().and_upper(0, 5))

    def test_validation_can_be_disabled(self):
        table = make_table([(1, 1)], kinds=InterfaceKind.PQ, domain=10)
        interface = TopKInterface(table, k=1, validate=False)
        result = interface.query(Query.select_all().and_upper(0, 5))
        assert len(result.rows) == 1


class TestLogging:
    def test_log_disabled_by_default(self):
        interface = TopKInterface(make_table([(1,)]), k=1)
        interface.query(Query.select_all())
        assert interface.log == ()

    def test_log_records_results(self):
        interface = TopKInterface(make_table([(1,)]), k=1, record_log=True)
        interface.query(Query.select_all())
        assert len(interface.log) == 1
        assert interface.log[0].rows[0].values == (1,)

    def test_reset_clears_log(self):
        interface = TopKInterface(make_table([(1,)]), k=1, record_log=True)
        interface.query(Query.select_all())
        interface.reset()
        assert interface.log == ()


class TestRankerIntegration:
    def test_default_ranker_is_sum(self):
        table = make_table([(9, 0), (1, 1)], domain=10)
        interface = TopKInterface(table, k=1)
        assert interface.query(Query.select_all()).top.values == (1, 1)

    def test_price_ascending_ranker(self):
        table = make_table([(9, 0), (1, 1)], domain=10)
        interface = TopKInterface(
            table, ranker=LinearRanker.single_attribute(0, 2), k=1
        )
        assert interface.query(Query.select_all()).top.values == (1, 1)
