"""Tests for the SQLite-backed table (repro.hiddendb.sqltable)."""

import sqlite3
import threading

import numpy as np
import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    LexicographicRanker,
    LinearRanker,
    Query,
    RandomSkylineRanker,
    Schema,
    SQLTable,
    SQLTableError,
    Table,
    build_sqltable,
)
from repro.hiddendb.sqltable import FORMAT_VERSION

from ..conftest import PARITY_TABLES, make_table


@pytest.fixture
def filtered_table() -> Table:
    rng = np.random.default_rng(42)
    matrix = rng.integers(0, 9, size=(300, 3))
    schema = Schema(
        [
            Attribute("a0", 9, InterfaceKind.RQ),
            Attribute("a1", 9, InterfaceKind.SQ),
            Attribute("a2", 9, InterfaceKind.PQ),
            Attribute("color", 4, InterfaceKind.FILTER,
                      labels=("red", "green", "blue", "gray")),
        ]
    )
    return Table(schema, matrix, {"color": rng.integers(0, 4, size=300)})


class TestBuildAndReopen:
    def test_round_trips_schema_and_metadata(self, tmp_path, filtered_table):
        path = tmp_path / "t.sqlite"
        build_sqltable(path, filtered_table, LinearRanker([1.0, 2.0, 0.5]),
                       name="diamonds-n300")
        sql = SQLTable(path)
        assert sql.n == 300
        assert sql.m == 3
        assert len(sql) == 300
        assert sql.name == "diamonds-n300"
        assert sql.ranking_label == "LinearRanker(weights=[1.0, 2.0, 0.5])"
        assert sql.filter_names == ("color",)
        got = sql.schema
        want = filtered_table.schema
        assert [a.name for a in got.attributes] == [
            a.name for a in want.attributes
        ]
        assert [a.kind for a in got.attributes] == [
            a.kind for a in want.attributes
        ]
        assert [a.domain_size for a in got.attributes] == [
            a.domain_size for a in want.attributes
        ]
        assert got.attributes[3].labels == ("red", "green", "blue", "gray")

    def test_rebuild_replaces_existing_file(self, tmp_path):
        path = tmp_path / "t.sqlite"
        build_sqltable(path, make_table([(1, 2), (3, 4), (5, 6)]), name="v1")
        build_sqltable(path, make_table([(7, 8)]), name="v2")
        sql = SQLTable(path)
        assert sql.n == 1
        assert sql.name == "v2"
        assert sql.row(0).values == (7, 8)

    def test_empty_table_round_trips(self, tmp_path):
        schema = Schema([Attribute("a0", 5, InterfaceKind.RQ)])
        empty = Table(schema, np.empty((0, 1), dtype=np.int64))
        path = build_sqltable(tmp_path / "empty.sqlite", empty)
        sql = SQLTable(path)
        assert sql.n == 0
        assert sql.top_rows(Query(), 3) == ()
        assert sql.match_indices(Query()).size == 0

    def test_random_ranker_cannot_be_persisted(self, tmp_path):
        with pytest.raises(ValueError, match="total order"):
            build_sqltable(
                tmp_path / "t.sqlite",
                PARITY_TABLES["rq3"],
                RandomSkylineRanker(),
            )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SQLTableError, match="no SQLite table"):
            SQLTable(tmp_path / "absent.sqlite")

    def test_non_table_database_raises(self, tmp_path):
        path = tmp_path / "other.sqlite"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE unrelated (x INTEGER)")
        with pytest.raises(SQLTableError, match="not a repro SQLite table"):
            SQLTable(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = build_sqltable(tmp_path / "t.sqlite", PARITY_TABLES["rq3"])
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'version'",
                (str(FORMAT_VERSION + 1),),
            )
        with pytest.raises(SQLTableError, match="format version"):
            SQLTable(path)

    def test_filterless_declared_attribute_refuses_build(self, tmp_path):
        schema = Schema(
            [
                Attribute("a0", 5, InterfaceKind.RQ),
                Attribute("ghost", 3, InterfaceKind.FILTER),
            ]
        )
        table = Table(schema, [(1,), (2,)])  # no data for 'ghost'
        with pytest.raises(ValueError, match="ghost"):
            build_sqltable(tmp_path / "t.sqlite", table)


class TestTableSurfaceParity:
    @pytest.fixture
    def pair(self, tmp_path, filtered_table):
        path = build_sqltable(tmp_path / "t.sqlite", filtered_table)
        return filtered_table, SQLTable(path)

    def test_rows_and_row_match_memory(self, pair):
        memory, sql = pair
        rids = [0, 7, 299, 13, 7]
        assert sql.rows(rids) == memory.rows(rids)
        assert sql.row(42) == memory.row(42)
        assert sql.rows([]) == ()
        with pytest.raises(IndexError):
            sql.row(300)

    def test_match_and_count_match_memory(self, pair):
        memory, sql = pair
        queries = [
            Query(),
            Query(ranges={0: Interval(2, 6)}),
            Query(ranges={0: Interval(0, 3), 2: Interval(1, 8)}),
            Query(filters={"color": 2}),
            Query(ranges={1: Interval(4, 4)}, filters={"color": 1}),
        ]
        for query in queries:
            np.testing.assert_array_equal(
                sql.match_indices(query), memory.match_indices(query)
            )
            assert sql.count_matches(query) == memory.count_matches(query)

    def test_filter_value_matches_memory(self, pair):
        memory, sql = pair
        for rid in (0, 50, 299):
            assert sql.filter_value("color", rid) == memory.filter_value(
                "color", rid
            )
        from repro.hiddendb import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            sql.filter_value("nope", 0)

    def test_oracles_match_memory(self, pair):
        memory, sql = pair
        np.testing.assert_array_equal(
            sql.skyline_indices(), memory.skyline_indices()
        )
        np.testing.assert_array_equal(
            sql.skyband_indices(2), memory.skyband_indices(2)
        )
        assert sql.skyline_rows() == memory.skyline_rows()
        np.testing.assert_array_equal(sql.matrix, memory.matrix)

    def test_as_memory_is_cached(self, pair):
        _, sql = pair
        assert sql.as_memory() is sql.as_memory()


class TestTopRows:
    @pytest.mark.parametrize(
        "ranker",
        [LinearRanker(), LinearRanker([3.0, 1.0, 2.0]),
         LexicographicRanker([2, 1, 0])],
        ids=["sum", "weighted", "lexicographic"],
    )
    def test_matches_bound_ranker_top(self, tmp_path, filtered_table, ranker):
        path = build_sqltable(tmp_path / "t.sqlite", filtered_table, ranker)
        sql = SQLTable(path)
        bound = ranker.bind(filtered_table)
        rng = np.random.default_rng(5)
        for _ in range(25):
            ranges = {
                index: Interval(int(lo), int(max(lo, hi)))
                for index in range(3)
                if rng.random() < 0.5
                for lo, hi in [sorted(rng.integers(0, 9, size=2))]
            }
            filters = (
                {"color": int(rng.integers(0, 4))}
                if rng.random() < 0.4 else None
            )
            query = Query(ranges=ranges, filters=filters)
            for k in (1, 5, 400):
                expected = filtered_table.rows(
                    bound.top(filtered_table.match_indices(query), k)
                )
                assert sql.top_rows(query, k) == expected, (query, k)

    def test_concurrent_readers(self, tmp_path, filtered_table):
        path = build_sqltable(tmp_path / "t.sqlite", filtered_table)
        sql = SQLTable(path)
        query = Query(ranges={0: Interval(1, 7)})
        expected = sql.top_rows(query, 10)
        failures = []

        def worker():
            try:
                for _ in range(20):
                    assert sql.top_rows(query, 10) == expected
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_context_manager_closes_thread_connection(self, tmp_path):
        path = build_sqltable(tmp_path / "t.sqlite", PARITY_TABLES["rq3"])
        with SQLTable(path) as sql:
            assert sql.top_rows(Query(), 1)
        # Reopen after close: connections are per-thread and lazy.
        assert sql.top_rows(Query(), 1)
