"""Fixtures for the networked hidden-database service tests."""

from __future__ import annotations

import pytest

from repro.service import HiddenDBServer


@pytest.fixture
def serve():
    """Start :class:`HiddenDBServer` instances that are stopped on teardown.

    Usage: ``server = serve(table, k=5, key_budget=100)``.
    """
    started: list[HiddenDBServer] = []

    def _serve(table, **kwargs) -> HiddenDBServer:
        server = HiddenDBServer(table, **kwargs).start()
        started.append(server)
        return server

    yield _serve
    for server in started:
        server.stop()


@pytest.fixture
def no_sleep():
    """A no-op backoff sleeper keeping retry tests instant."""
    return lambda _seconds: None
