"""Observability over the wire: /metrics, stats additions, trace ids."""

from __future__ import annotations

import io
import json
import logging
import urllib.request

import pytest

from repro import Discoverer
from repro.core import DiscoveryConfig
from repro.hiddendb import InterfaceKind
from repro.obs import RunObserver
from repro.service import FaultConfig, RemoteTopKInterface
from repro.service.client import QueryClientCore  # noqa: F401 (shared core)

from ..conftest import make_table, parse_prometheus, random_table


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def get_text(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read().decode("utf-8"),
        )


@pytest.fixture
def table():
    import numpy as np

    return random_table(
        np.random.default_rng(7), (InterfaceKind.RQ,) * 3, n=120, domain=6
    )


class TestServerMetricsRoute:
    def test_exposition_parses_and_covers_billing(self, serve, table):
        server = serve(table, k=3, key_budget=500)
        client = RemoteTopKInterface(server.url, api_key="alice")
        result = Discoverer().run(client, "baseline")
        client.close()
        status, content_type, text = get_text(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        families = parse_prometheus(text)
        billed = families["hiddendb_queries_billed_total"]
        assert billed["type"] == "counter"
        assert billed["samples"][
            ("hiddendb_queries_billed_total", (("key", "alice"),))
        ] == float(result.total_cost)
        latency = families["hiddendb_request_latency_seconds"]
        assert latency["type"] == "histogram"
        query_count = latency["samples"][
            (
                "hiddendb_request_latency_seconds_count",
                (("route", "/api/query"),),
            )
        ]
        assert query_count >= result.total_cost
        assert families["hiddendb_requests_in_flight"]["type"] == "gauge"

    def test_replay_counter_increments(self, serve, table):
        server = serve(table, k=3)
        client = RemoteTopKInterface(server.url, api_key="bob",
                                     replay_nonce="fixed-nonce")
        from repro.hiddendb.query import Query

        query = Query.select_all()
        client.query(query)
        # Deterministic request id: re-presenting it must replay the
        # billed answer, not bill again.
        client.query(query)
        client.close()
        _, _, text = get_text(server.url + "/metrics")
        families = parse_prometheus(text)
        assert families["hiddendb_queries_replayed_total"]["samples"][
            ("hiddendb_queries_replayed_total", (("key", "bob"),))
        ] == 1.0
        assert families["hiddendb_queries_billed_total"]["samples"][
            ("hiddendb_queries_billed_total", (("key", "bob"),))
        ] == 1.0

    def test_fault_counter_increments(self, serve, table, no_sleep):
        server = serve(
            table,
            k=3,
            faults=FaultConfig(error_rate=0.9, seed=1),
        )
        client = RemoteTopKInterface(server.url, api_key="carol",
                                     max_retries=100, sleep=no_sleep)
        from repro.hiddendb.query import Query

        client.query(Query.select_all())
        client.close()
        injected = server.stats().faults_injected
        assert injected >= 1
        _, _, text = get_text(server.url + "/metrics")
        samples = parse_prometheus(text)[
            "hiddendb_queries_faulted_total"
        ]["samples"]
        assert samples[
            ("hiddendb_queries_faulted_total", (("key", "carol"),))
        ] == float(injected)


class TestServerStatsAdditions:
    def test_uptime_in_flight_and_request_totals(self, serve, table):
        server = serve(table, k=3)
        client = RemoteTopKInterface(server.url, api_key="alice")
        from repro.hiddendb.query import Query

        client.query(Query.select_all())
        client.close()
        status, body = get_json(server.url + "/api/stats")
        assert status == 200
        assert body["uptime_s"] is not None and body["uptime_s"] >= 0
        # The stats request itself is still being processed.
        assert body["in_flight"] >= 1
        assert body["keys"]["alice"]["issued"] == 1
        # alice's schema bootstrap + one query, counted per key.  The
        # counter lands as each handler finishes, moments after the
        # response body -- poll briefly rather than racing it.
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            _, body = get_json(server.url + "/api/stats")
            if body["requests"].get("alice", 0) >= 2:
                break
            time.sleep(0.05)
        assert body["requests"]["alice"] == 2


class TestTracePropagation:
    def test_client_propagates_trace_id_to_access_log(self, serve, table):
        server = serve(table, k=3)
        records: list[str] = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = Capture(level=logging.DEBUG)
        service_logger = logging.getLogger("repro.service")
        old_level = service_logger.level
        service_logger.addHandler(handler)
        service_logger.setLevel(logging.DEBUG)
        try:
            client = RemoteTopKInterface(server.url, api_key="alice")
            observer = RunObserver(run_id="tracedrun")
            client.attach_observer(observer)
            from repro.hiddendb.query import Query

            query = Query.select_all()
            client.query(query)
            expected = observer.trace_id(query)
            client.close()
        finally:
            service_logger.removeHandler(handler)
            service_logger.setLevel(old_level)
        traced_lines = [line for line in records if "trace=" in line]
        assert any(f"trace={expected}" in line for line in traced_lines)

    def test_traced_remote_run_has_exact_parity(self, serve, table):
        server = serve(table, k=3)
        client = RemoteTopKInterface(server.url, api_key="alice")
        plain = Discoverer().run(client, "baseline")
        client.clear_cache()
        buffer = io.StringIO()
        client2 = RemoteTopKInterface(server.url, api_key="alice2")
        traced = Discoverer(DiscoveryConfig(trace=buffer)).run(
            client2, "baseline"
        )
        client.close()
        client2.close()
        assert traced.skyline_values == plain.skyline_values
        assert traced.total_cost == plain.total_cost
        spans = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        billed = [s for s in spans if s["phase"] == "billed"]
        assert len(billed) == traced.total_cost
        # The wire layer recorded one attempt per billed query, joined to
        # the engine spans by the same deterministic trace ids.
        attempt_ids = {
            s["trace_id"] for s in spans if s["phase"] == "attempt"
        }
        billed_ids = {s["trace_id"] for s in billed}
        assert billed_ids <= attempt_ids


def test_simple_rq_table_metrics_names_are_prefixed(serve):
    table = make_table(
        [(0, 9), (3, 3), (9, 0)], kinds=InterfaceKind.RQ, domain=10
    )
    server = serve(table, k=1)
    _, _, text = get_text(server.url + "/metrics")
    for name in parse_prometheus(text):
        assert name.startswith("hiddendb_")
