"""Round-trip tests pinning the JSON wire format."""

import json

import pytest

from repro.hiddendb import Attribute, InterfaceKind, Interval, Query, Row, Schema
from repro.service import wire


class TestSchemaRoundTrip:
    def test_kinds_and_domains_survive(self):
        schema = Schema(
            [
                Attribute("price", 100, InterfaceKind.RQ),
                Attribute("memory", 6, InterfaceKind.SQ),
                Attribute("ports", 4, InterfaceKind.PQ),
                Attribute("brand", 3, InterfaceKind.FILTER),
            ]
        )
        decoded = wire.decode_schema(wire.encode_schema(schema))
        assert [a.name for a in decoded.attributes] == [
            "price", "memory", "ports", "brand",
        ]
        assert [a.kind for a in decoded.attributes] == [
            InterfaceKind.RQ, InterfaceKind.SQ, InterfaceKind.PQ,
            InterfaceKind.FILTER,
        ]
        assert decoded.domain_sizes == (100, 6, 4)
        assert decoded.m == 3

    def test_labels_survive(self):
        schema = Schema([Attribute("cut", 3, InterfaceKind.PQ,
                                   labels=("ideal", "good", "fair"))])
        decoded = wire.decode_schema(wire.encode_schema(schema))
        assert decoded["cut"].labels == ("ideal", "good", "fair")

    def test_unserialisable_labels_dropped(self):
        schema = Schema([Attribute("a", 2, InterfaceKind.RQ,
                                   labels=(object(), object()))])
        payload = wire.encode_schema(schema)
        json.dumps(payload)  # must be pure JSON
        assert wire.decode_schema(payload)["a"].labels is None

    def test_payload_is_json(self):
        schema = Schema([Attribute("a", 5, InterfaceKind.SQ)])
        assert json.loads(json.dumps(wire.encode_schema(schema))) == \
            wire.encode_schema(schema)


class TestQueryRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            Query.select_all(),
            Query({0: Interval(0, 3)}),
            Query({0: Interval(2, 2), 2: Interval(1, 5)}, {"brand": 1}),
            Query(filters={"store": 0, "brand": 2}),
        ],
    )
    def test_round_trip_equality(self, query):
        payload = json.loads(json.dumps(wire.encode_query(query)))
        assert wire.decode_query(payload) == query

    def test_round_trip_preserves_hash(self):
        query = Query({1: Interval(3, 7)}, {"f": 4})
        assert hash(wire.decode_query(wire.encode_query(query))) == hash(query)


class TestAnswerRoundTrip:
    def test_rows_overflow_sequence(self):
        rows = (Row(3, (1, 2)), Row(9, (0, 5)))
        payload = json.loads(json.dumps(wire.encode_answer(rows, True, 17)))
        decoded_rows, overflow, sequence = wire.decode_answer(payload)
        assert decoded_rows == rows
        assert overflow is True
        assert sequence == 17

    def test_empty_answer(self):
        rows, overflow, sequence = wire.decode_answer(
            wire.encode_answer((), False, 1)
        )
        assert rows == ()
        assert not overflow
        assert sequence == 1


class TestJobSpec:
    """The coordinator's POST /api/jobs body: strict, defaulted, minimal."""

    def test_empty_body_yields_the_defaults(self):
        spec = wire.decode_job_spec({})
        assert spec == dict(wire.JOB_SPEC_DEFAULTS)
        assert spec["tenant"] == "anonymous"
        assert spec["workers"] == 4

    def test_unknown_fields_rejected_with_the_known_list(self):
        with pytest.raises(ValueError, match="budgit") as excinfo:
            wire.decode_job_spec({"budgit": 10})
        assert "budget" in str(excinfo.value)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            wire.decode_job_spec(["budget", 10])

    @pytest.mark.parametrize(
        "payload",
        [
            {"budget": "lots"},
            {"budget": True},
            {"budget": -1},
            {"workers": 0},
            {"workers": None},
            {"checkpoint_every": 0},
            {"dedup": "yes"},
            {"algorithm": 7},
            {"fingerprint": 0xdead},
            {"tenant": ""},
            {"tenant": 9},
        ],
    )
    def test_invalid_values_rejected(self, payload):
        with pytest.raises(ValueError):
            wire.decode_job_spec(payload)

    def test_valid_spec_normalises(self):
        spec = wire.decode_job_spec(
            {"algorithm": "rq", "budget": 500, "tenant": "alice",
             "dedup": True}
        )
        assert spec["algorithm"] == "rq"
        assert spec["budget"] == 500
        assert spec["dedup"] is True
        assert spec["workers"] == 4  # defaulted

    def test_encode_drops_defaults_and_round_trips(self):
        spec = wire.decode_job_spec({"budget": 500, "tenant": "alice"})
        encoded = json.loads(json.dumps(wire.encode_job_spec(spec)))
        assert encoded == {"budget": 500, "tenant": "alice"}
        assert wire.decode_job_spec(encoded) == spec

    def test_encode_of_pure_defaults_is_empty(self):
        assert wire.encode_job_spec(dict(wire.JOB_SPEC_DEFAULTS)) == {}
