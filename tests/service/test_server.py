"""HTTP-level tests of the hidden-DB server (raw urllib, no client class)."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.hiddendb import InterfaceKind
from repro.service import FaultConfig, FaultInjector
from repro.service.wire import encode_query
from repro.hiddendb.query import Query

from ..conftest import make_table


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, payload: dict, api_key: str | None = None,
         request_id: str | None = None):
    headers = {"Content-Type": "application/json"}
    if api_key is not None:
        headers["X-Api-Key"] = api_key
    if request_id is not None:
        headers["X-Request-Id"] = request_id
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers=headers, method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def query_payload(query: Query) -> dict:
    return {"query": encode_query(query)}


@pytest.fixture
def table():
    return make_table(
        [(0, 9), (3, 3), (9, 0), (5, 5)], kinds=InterfaceKind.RQ, domain=10
    )


class TestMetadataRoutes:
    def test_schema_route(self, serve, table):
        server = serve(table, k=2, name="unit")
        status, body = get(server.url + "/api/schema")
        assert status == 200
        assert body["k"] == 2
        assert body["name"] == "unit"
        assert [a["kind"] for a in body["schema"]["attributes"]] == ["rq", "rq"]

    def test_healthz(self, serve, table):
        server = serve(table)
        status, body = get(server.url + "/healthz")
        assert (status, body["status"]) == (200, "ok")

    def test_unknown_route_404(self, serve, table):
        server = serve(table)
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404


class TestQueryRoute:
    def test_top_k_answer(self, serve, table):
        server = serve(table, k=2)
        status, body = post(
            server.url + "/api/query", query_payload(Query.select_all())
        )
        assert status == 200
        assert [row["values"] for row in body["rows"]] == [[3, 3], [0, 9]]
        assert body["overflow"] is True
        assert body["sequence"] == 1

    def test_billing_is_per_key(self, serve, table):
        server = serve(table, k=1)
        url = server.url + "/api/query"
        post(url, query_payload(Query.select_all()), api_key="alice")
        post(url, query_payload(Query.select_all()), api_key="alice")
        post(url, query_payload(Query.select_all()), api_key="bob")
        stats = server.stats()
        assert stats.queries_total == 3
        assert stats.usage("alice").issued == 2
        assert stats.usage("bob").issued == 1

    def test_budget_exhaustion_is_429_and_unbilled(self, serve, table):
        server = serve(table, k=1, key_budget=1)
        url = server.url + "/api/query"
        status, _ = post(url, query_payload(Query.select_all()), api_key="a")
        assert status == 200
        with pytest.raises(urllib.error.HTTPError) as err:
            post(url, query_payload(Query.select_all()), api_key="a")
        assert err.value.code == 429
        body = json.loads(err.value.read())
        assert body["error"] == "budget_exceeded"
        assert body["limit"] == 1
        assert body["retriable"] is False
        assert server.stats().usage("a").issued == 1

    def test_unsupported_query_is_400_and_unbilled(self, serve):
        pq = make_table([(1, 1)], kinds=InterfaceKind.PQ, domain=10)
        server = serve(pq, k=1)
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server.url + "/api/query",
                 query_payload(Query.select_all().and_upper(0, 5)))
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "unsupported_query"
        assert server.stats().queries_total == 0

    def test_invalid_json_is_400(self, serve, table):
        server = serve(table)
        request = urllib.request.Request(
            server.url + "/api/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_repeated_request_id_is_replayed_not_rebilled(self, serve, table):
        # A client that lost the response retries the same X-Request-Id;
        # the server must replay the billed answer, not charge it again.
        server = serve(table, k=2)
        url = server.url + "/api/query"
        payload = query_payload(Query.select_all())
        first = post(url, payload, api_key="a", request_id="req-1")
        second = post(url, payload, api_key="a", request_id="req-1")
        assert second == first
        assert server.stats().usage("a").issued == 1
        # A fresh id is billed normally.
        post(url, payload, api_key="a", request_id="req-2")
        assert server.stats().usage("a").issued == 2

    def test_replay_is_scoped_per_api_key(self, serve, table):
        server = serve(table, k=2)
        url = server.url + "/api/query"
        payload = query_payload(Query.select_all())
        post(url, payload, api_key="a", request_id="req-1")
        post(url, payload, api_key="b", request_id="req-1")
        stats = server.stats()
        assert stats.usage("a").issued == 1
        assert stats.usage("b").issued == 1

    def test_budget_headers(self, serve, table):
        server = serve(table, k=1, key_budget=5)
        request = urllib.request.Request(
            server.url + "/api/query",
            data=json.dumps(query_payload(Query.select_all())).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Queries-Issued"] == "1"
            assert response.headers["X-Budget-Remaining"] == "4"


class TestStatsAndReset:
    def test_stats_route(self, serve, table):
        server = serve(table, key_budget=10)
        post(server.url + "/api/query", query_payload(Query.select_all()),
             api_key="k1")
        status, body = get(server.url + "/api/stats")
        assert status == 200
        assert body["queries_total"] == 1
        assert body["keys"]["k1"] == {
            "issued": 1, "budget": 10, "remaining": 9,
        }

    def test_reset_route_clears_billing(self, serve, table):
        server = serve(table)
        post(server.url + "/api/query", query_payload(Query.select_all()))
        status, body = post(server.url + "/api/reset", {})
        assert status == 200
        assert body["queries_total"] == 0
        assert server.stats().queries_total == 0

    def test_reset_clears_replay_cache(self, serve, table):
        # A pre-reset request id must be billed as a fresh query after the
        # reset, not replayed unbilled with a stale sequence number.
        server = serve(table, k=2)
        url = server.url + "/api/query"
        payload = query_payload(Query.select_all())
        post(url, payload, api_key="a", request_id="r1")
        post(server.url + "/api/reset", {})
        post(url, payload, api_key="a", request_id="r1")
        assert server.stats().usage("a").issued == 1

    def test_reset_single_key_clears_only_its_replay_entries(self, serve, table):
        server = serve(table, k=2)
        url = server.url + "/api/query"
        payload = query_payload(Query.select_all())
        post(url, payload, api_key="a", request_id="r1")
        post(url, payload, api_key="b", request_id="r1")
        post(server.url + "/api/reset", {"api_key": "a"})
        post(url, payload, api_key="a", request_id="r1")  # rebilled
        post(url, payload, api_key="b", request_id="r1")  # still replayed
        stats = server.stats()
        assert stats.usage("a").issued == 1
        assert stats.usage("b").issued == 1

    def test_reset_single_key(self, serve, table):
        server = serve(table)
        url = server.url + "/api/query"
        post(url, query_payload(Query.select_all()), api_key="a")
        post(url, query_payload(Query.select_all()), api_key="b")
        post(server.url + "/api/reset", {"api_key": "a"})
        stats = server.stats()
        assert stats.usage("a") is None
        assert stats.usage("b").issued == 1


class TestStartupErrors:
    def test_port_collision_is_a_clear_startup_error(self, serve, table):
        from repro.service import HiddenDBServer, ServiceStartupError

        first = serve(table, k=2)
        second = HiddenDBServer(table, k=2, port=first.port)
        with pytest.raises(ServiceStartupError, match="already in use"):
            second.start()
        # The failed server never bound, so stop() must be a no-op and
        # the first server keeps serving.
        second.stop()
        status, _payload = get(f"{first.url}/healthz")
        assert status == 200


class TestServerMetadata:
    def test_wildcard_bind_advertises_loopback(self, serve, table):
        server = serve(table, host="0.0.0.0", port=0)
        assert server.url.startswith("http://127.0.0.1:")
        status, _ = get(server.url + "/healthz")
        assert status == 200

    def test_port_survives_stop(self, table):
        from repro.service import HiddenDBServer

        server = HiddenDBServer(table, port=0).start()
        bound = server.port
        assert bound != 0
        server.stop()
        assert server.port == bound
        assert server.url.endswith(f":{bound}")


class TestInflightDedup:
    def test_racing_duplicate_waits_and_replays(self, serve, table):
        # A client retry can arrive while its original request is still
        # sleeping in injected latency; the duplicate must wait for the
        # original's answer, not bill the query a second time.
        server = serve(
            table, k=2, faults=FaultConfig(latency=(0.25, 0.25), seed=0)
        )
        payload = {"query": encode_query(Query.select_all())}
        results = []

        def issue():
            results.append(
                server._handle_query(payload, "a", request_id="race-1")
            )

        first = threading.Thread(target=issue)
        second = threading.Thread(target=issue)
        first.start()
        time.sleep(0.05)  # original is now sleeping in injected latency
        second.start()
        first.join()
        second.join()
        assert len(results) == 2
        assert results[0] == results[1]
        assert results[0][0] == 200
        assert server.stats().usage("a").issued == 1


class TestConcurrency:
    def test_concurrent_clients_bill_exactly(self, serve, table):
        server = serve(table, k=1)
        url = server.url + "/api/query"
        per_thread = 20

        def crawl(key: str) -> None:
            for _ in range(per_thread):
                post(url, query_payload(Query.select_all()), api_key=key)

        threads = [
            threading.Thread(target=crawl, args=(f"key-{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
        assert stats.queries_total == 4 * per_thread
        for i in range(4):
            assert stats.usage(f"key-{i}").issued == per_thread


class TestFaultInjector:
    def test_deterministic_given_seed(self):
        config = FaultConfig(error_rate=0.5, seed=42)
        a = [FaultInjector(config).draw() for _ in range(50)]
        b = [FaultInjector(config).draw() for _ in range(50)]
        assert a == b

    def test_codes_drawn_from_config(self):
        injector = FaultInjector(
            FaultConfig(error_rate=1.0, error_codes=(429,), seed=0)
        )
        draws = [injector.draw() for _ in range(10)]
        assert all(code == 429 for _, code in draws)
        assert injector.injected == 10

    def test_zero_rate_never_injects(self):
        injector = FaultInjector(FaultConfig(latency=(0.0, 0.001), seed=0))
        assert all(code is None for _, code in
                   (injector.draw() for _ in range(20)))

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(error_rate=0.5, error_codes=())
        with pytest.raises(ValueError):
            FaultConfig(latency=(0.5, 0.1))
