"""Server traffic shaping: token-bucket rate limits + load shedding.

The server must throttle *honestly*: a 429 names the seconds until the
key's next token refills, a load-shed 503 names a short retriable pause,
and neither is ever billed or replay-cached.  The client must honor
those hints -- ``Retry-After`` floors the retry sleep -- and surface the
signals as window pressure through ``take_throttle_signals``.
"""

import threading
import urllib.request

import pytest

from repro import Discoverer, TopKInterface
from repro.hiddendb import Query
from repro.service import FaultConfig, RemoteTopKInterface
from repro.service.client import (
    RETRY_AFTER_CAP,
    _parse_retry_after,
)
from repro.service.server import LOAD_SHED_RETRY_AFTER, _TokenBucket

from ..conftest import PARITY_TABLES as TABLES, parse_prometheus


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_honest_wait(self):
        clock = FakeClock()
        bucket = _TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.acquire("key") for _ in range(3)] == [0.0, 0.0, 0.0]
        # Bucket empty: the wait is exactly one token's refill time.
        assert bucket.acquire("key") == pytest.approx(0.1)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = _TokenBucket(rate=10.0, burst=2, clock=clock)
        bucket.acquire("key")
        bucket.acquire("key")
        clock.now = 0.1  # one token refilled
        assert bucket.acquire("key") == 0.0
        assert bucket.acquire("key") > 0.0

    def test_keys_are_independent(self):
        clock = FakeClock()
        bucket = _TokenBucket(rate=1.0, burst=1, clock=clock)
        assert bucket.acquire("a") == 0.0
        assert bucket.acquire("b") == 0.0
        assert bucket.acquire("a") > 0.0


class TestServerThrottling:
    def test_rate_limited_429_names_honest_retry_after(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, rate_limit=10.0, burst=2)
        query = Query.select_all()
        client = RemoteTopKInterface(server.url, api_key="hot",
                                     max_retries=0)
        # Burst exhausted after two queries; the third is throttled.
        client.query(query)
        client.query(query)
        from repro.service.client import RemoteServiceError

        with pytest.raises(RemoteServiceError) as err:
            client.query(query)
        assert err.value.status == 429
        assert client.throttled == 1
        count, retry_after = client.take_throttle_signals()
        assert count == 1
        assert 0.0 < retry_after <= 0.1 + 1e-6

    def test_throttled_queries_are_not_billed(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, rate_limit=5.0, burst=1)
        client = RemoteTopKInterface(server.url, api_key="meter",
                                     max_retries=0)
        client.query(Query.select_all())
        from repro.service.client import RemoteServiceError

        with pytest.raises(RemoteServiceError):
            client.query(Query.select_all())
        assert server.stats().queries_total == 1

    def test_load_shed_503_when_inflight_exceeds_cap(self, serve):
        # One query parked in injected latency holds the single slot; a
        # concurrent one must be shed with a retriable 503.
        table = TABLES["rq3"]
        server = serve(
            table, k=5, max_inflight=1,
            faults=FaultConfig(latency=(0.3, 0.3), seed=1),
        )
        slow = RemoteTopKInterface(server.url, api_key="slow")
        fast = RemoteTopKInterface(server.url, api_key="fast",
                                   max_retries=0)
        started = threading.Event()

        def occupy():
            started.set()
            slow.query(Query.select_all())

        worker = threading.Thread(target=occupy)
        worker.start()
        started.wait()
        import time as _time

        _time.sleep(0.05)  # let the slow query enter the handler
        from repro.service.client import RemoteServiceError

        with pytest.raises(RemoteServiceError) as err:
            fast.query(Query.select_all())
        worker.join()
        assert err.value.status == 503
        count, retry_after = fast.take_throttle_signals()
        assert count >= 1
        # A shed 503 is pressure but not a pacing signal: its hint floors
        # the per-request retry sleep, never the whole dispatch window.
        assert retry_after == 0.0

    def test_throttle_metric_exposed(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, rate_limit=5.0, burst=1)
        client = RemoteTopKInterface(server.url, api_key="scrape",
                                     max_retries=0)
        client.query(Query.select_all())
        from repro.service.client import RemoteServiceError

        with pytest.raises(RemoteServiceError):
            client.query(Query.select_all())
        text = urllib.request.urlopen(server.url + "/metrics").read().decode()
        families = parse_prometheus(text)
        samples = families["hiddendb_server_throttled_total"]["samples"]
        key = ("hiddendb_server_throttled_total", (("key", "scrape"),))
        assert samples[key] >= 1.0

    def test_retrying_client_converges_under_throttling(self, serve, no_sleep):
        # With retries enabled the crawl completes at the exact reference
        # cost: throttled attempts are retried, never billed.
        table = TABLES["rq3"]
        reference = Discoverer().run(TopKInterface(table, k=5))
        server = serve(table, k=5, rate_limit=200.0, burst=5)
        client = RemoteTopKInterface(server.url, api_key="patient",
                                     max_retries=50, sleep=no_sleep)
        result = Discoverer().run(client)
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert server.stats().queries_total == reference.total_cost

    def test_server_validates_shaping_parameters(self):
        from repro.service import HiddenDBServer

        table = TABLES["rq3"]
        with pytest.raises(ValueError, match="rate_limit"):
            HiddenDBServer(table, rate_limit=0.0)
        with pytest.raises(ValueError, match="burst requires"):
            HiddenDBServer(table, burst=4)
        with pytest.raises(ValueError, match="burst must be"):
            HiddenDBServer(table, rate_limit=5.0, burst=0)
        with pytest.raises(ValueError, match="max_inflight"):
            HiddenDBServer(table, max_inflight=0)


class TestClientRetryAfter:
    def test_parse_retry_after(self):
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("1.5") == 1.5
        assert _parse_retry_after(2) == 2.0
        assert _parse_retry_after("-3") == 0.0
        assert _parse_retry_after("soon") is None

    def test_hint_floors_the_backoff(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        client = RemoteTopKInterface(server.url, backoff=0.01,
                                     backoff_cap=1.0)
        # No hint: pure exponential backoff.
        assert client._retry_delay(1, None) == pytest.approx(0.01)
        assert client._retry_delay(3, None) == pytest.approx(0.04)
        # A hint larger than the backoff floors the sleep.
        assert client._retry_delay(1, 0.5) == pytest.approx(0.5)
        # The backoff still escalates past a small hint.
        assert client._retry_delay(7, 0.1) == pytest.approx(0.64)
        # Hostile hints are capped.
        assert client._retry_delay(1, 3600.0) == pytest.approx(RETRY_AFTER_CAP)

    def test_throttled_retry_sleeps_at_least_the_hint(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, rate_limit=10.0, burst=1)
        import time as _time

        sleeps: list[float] = []

        def recording_sleep(seconds: float) -> None:
            # Really sleep: the bucket must refill for the retry to pass.
            sleeps.append(seconds)
            _time.sleep(seconds)

        client = RemoteTopKInterface(
            server.url, api_key="timed", max_retries=8,
            backoff=0.001, backoff_cap=0.002,
            sleep=recording_sleep,
        )
        client.query(Query.select_all())
        client.query(Query.select_all())  # throttled once, then retried
        assert sleeps, "the throttled attempt must have slept"
        # The sleep honored the server's ~0.1s refill hint, not the
        # microscopic configured backoff.
        assert max(sleeps) > 0.002
