"""Adaptive-window parity grid, over the wire.

``workers="auto"`` changes *when* queries are dispatched, never which
queries are issued or how answers merge -- so for every registered
algorithm, an adaptive drain against a fault- and rate-limit-injected
server must reproduce the serial in-process skyline and billed cost
exactly, under every windowed strategy (pipelined, async, and sharded
across two mirrors).
"""

import pytest

from repro import Discoverer, TopKInterface
from repro.core import DiscoveryConfig
from repro.coordinator import EndpointSet, ShardedStrategy
from repro.service import (
    AsyncRemoteTopKInterface,
    FaultConfig,
    RemoteTopKInterface,
)

from ..conftest import parity_run_params as run_params

#: Generous-but-real shaping: wide enough that crawls stay fast, tight
#: enough that bursts genuinely harvest 429s and exercise the AIMD path.
SHAPING = dict(
    rate_limit=500.0,
    burst=20,
    max_inflight=16,
    faults=FaultConfig(error_rate=0.05, seed=11),
)

#: Throttled runs retry more: every 429 is eventually absorbed.
CLIENT = dict(max_retries=50)

AUTO = dict(workers="auto", min_workers=1, max_workers=12)


class TestAdaptiveParity:
    @pytest.mark.parametrize("algorithm,table", run_params())
    @pytest.mark.parametrize("strategy", ["pipelined", "async"])
    def test_algorithm_grid_matches_serial(
        self, serve, algorithm, table, strategy
    ):
        reference = Discoverer().run(TopKInterface(table, k=5), algorithm)

        server = serve(table, k=5, **SHAPING)
        key = f"{algorithm}-{strategy}-auto"
        if strategy == "async":
            remote = AsyncRemoteTopKInterface(server.url, api_key=key,
                                              **CLIENT)
        else:
            remote = RemoteTopKInterface(server.url, api_key=key, **CLIENT)
        config = DiscoveryConfig(strategy=strategy, **AUTO)
        result = Discoverer(config).run(remote, algorithm)

        assert result.stats.strategy == strategy
        assert result.skyline_values == reference.skyline_values
        assert result.complete == reference.complete
        assert result.total_cost == reference.total_cost
        # Throttled/faulted attempts were retried, never billed.
        assert server.stats().queries_total == reference.total_cost
        close = getattr(remote, "close", None)
        if close is not None:
            close()

    @pytest.mark.parametrize("algorithm,table", run_params())
    def test_sharded_grid_matches_serial(self, serve, algorithm, table):
        reference = Discoverer().run(TopKInterface(table, k=5), algorithm)

        a = serve(table, k=5, **SHAPING)
        b = serve(table, k=5, **SHAPING)
        with EndpointSet(
            [f"{a.url}=shard-a", f"{b.url}=shard-b"], **CLIENT
        ) as pool:
            strategy = ShardedStrategy(
                pool, workers_per_backend="auto", max_workers=6
            )
            result = Discoverer(DiscoveryConfig(strategy=strategy)).run(
                pool, algorithm
            )
            assert result.stats.strategy == "sharded"
            assert result.skyline_values == reference.skyline_values
            assert result.total_cost == reference.total_cost
            # The pool billed exactly the reference cost, split across
            # the mirrors.
            assert pool.queries_issued == reference.total_cost

    def test_adaptive_run_reports_window_stats(self, serve):
        from ..conftest import PARITY_TABLES

        table = PARITY_TABLES["rq3"]
        server = serve(table, k=5, rate_limit=200.0, burst=10)
        remote = RemoteTopKInterface(server.url, api_key="stats", **CLIENT)
        # The crawling baseline drains a wide frontier, so the window is
        # actually exercised (sequential algorithms never open it).
        result = Discoverer(
            DiscoveryConfig(strategy="pipelined", **AUTO)
        ).run(remote, "baseline")
        stats = result.stats
        assert stats.mean_window >= 1.0
        payload = stats.as_dict()
        assert payload["mean_window"] == stats.mean_window
        assert payload["window_decreases"] == stats.window_decreases
