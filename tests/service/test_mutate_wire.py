"""Over-the-wire endpoint mutations: ``POST /api/mutate`` and the client.

Mutations are the freshness plane's operator surface: unbilled, atomic
per batch, advancing the advertised ``data_version`` by exactly one.
These tests drive the real HTTP server and pin the wire contract --
explicit ops and server-drawn churn, the error shapes, and the client
folding the new version into its skew detector (dropping its cache).
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.datagen import churn_ops
from repro.hiddendb import InterfaceKind, Query, TopKInterface
from repro.service import RemoteTopKInterface

from ..conftest import make_table

ROWS = [(0, 9), (3, 3), (9, 0), (5, 5), (7, 2), (2, 7)]


@pytest.fixture
def table():
    return make_table(ROWS, kinds=InterfaceKind.RQ, domain=10)


def post_mutate(url, payload):
    request = urllib.request.Request(
        f"{url}/api/mutate",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


class TestMutateEndpoint:
    def test_explicit_ops_apply_and_bump_version(self, serve, table):
        server = serve(table, k=2)
        status, body = post_mutate(server.url, {"ops": [
            {"op": "insert", "values": [1, 1]},
            {"op": "delete", "rid": 0},
        ]})
        assert status == 200
        assert body == {"applied": 2, "data_version": 1}
        assert table.data_version == 1

    def test_server_drawn_churn_matches_local_batch(self, serve):
        table = make_table(ROWS, kinds=InterfaceKind.RQ, domain=10)
        twin = make_table(ROWS, kinds=InterfaceKind.RQ, domain=10)
        server = serve(table, k=2)
        expected = churn_ops(twin, 0.5, seed=9)
        status, body = post_mutate(
            server.url, {"churn": {"frac": 0.5, "seed": 9}}
        )
        assert status == 200
        assert body["applied"] == len(expected)
        # (table, frac, seed) names the same batch on both sides.
        twin.apply_mutations(expected)
        assert table.matrix.tolist() == twin.matrix.tolist()

    def test_mutations_are_never_billed(self, serve, table):
        server = serve(table, k=2, key_budget=5)
        client = RemoteTopKInterface(server.url)
        client.query(Query.select_all())
        billed_before = client.queries_issued
        status, _ = post_mutate(server.url, {"ops": [
            {"op": "delete", "rid": 0},
        ]})
        assert status == 200
        assert client.queries_issued == billed_before

    @pytest.mark.parametrize(
        "payload,expected_error",
        [
            ({}, "bad_request"),
            ({"ops": [], "churn": {"frac": 0.1}}, "bad_request"),
            ({"churn": {"seed": 1}}, "bad_mutation"),
            ({"churn": {"frac": 2.0}}, "bad_mutation"),
            ({"ops": [{"op": "merge"}]}, "bad_mutation"),
            ({"ops": [{"op": "delete", "rid": 999}]}, "bad_mutation"),
            ({"ops": [{"op": "insert", "values": [1]}]}, "bad_mutation"),
        ],
        ids=["neither", "both", "no-frac", "bad-frac", "bad-op",
             "unknown-rid", "arity"],
    )
    def test_invalid_payloads_are_rejected(
        self, serve, table, payload, expected_error
    ):
        server = serve(table, k=2)
        status, body = post_mutate(server.url, payload)
        assert status == 400
        assert body["error"] == expected_error
        assert not body["retriable"]
        # A rejected batch applied nothing.
        assert table.data_version == 0

    def test_served_answers_reflect_the_mutation(self, serve, table):
        server = serve(table, k=3)
        client = RemoteTopKInterface(server.url)
        before = client.query(Query.select_all())
        post_mutate(server.url, {"ops": [
            {"op": "insert", "values": [0, 0]},
        ]})
        after = client.query(Query.select_all())
        assert before.rows != after.rows
        assert (0, 0) in {row.values for row in after.rows}


class TestClientMutate:
    def test_client_mutate_folds_the_new_version(self, serve, table):
        with RemoteTopKInterface(serve(table, k=2).url) as client:
            assert client.data_version == 0
            reply = client.mutate([{"op": "delete", "rid": 0}])
            assert reply == {"applied": 1, "data_version": 1}
            assert client.data_version == 1

    def test_client_mutate_churn_mode(self, serve, table):
        with RemoteTopKInterface(serve(table, k=2).url) as client:
            reply = client.mutate(churn={"frac": 0.5, "seed": 3})
            assert reply["applied"] == len(
                churn_ops(
                    make_table(ROWS, kinds=InterfaceKind.RQ, domain=10),
                    0.5,
                    seed=3,
                )
            )
            assert reply["data_version"] == 1

    def test_client_mutate_requires_exactly_one_mode(self, serve, table):
        with RemoteTopKInterface(serve(table, k=2).url) as client:
            with pytest.raises(ValueError):
                client.mutate()
            with pytest.raises(ValueError):
                client.mutate(
                    [{"op": "delete", "rid": 0}], churn={"frac": 0.1}
                )

    def test_skew_detection_drops_the_cache(self, serve, table):
        server = serve(table, k=2)
        client = RemoteTopKInterface(server.url, cache_size=32)
        query = Query.select_all()
        client.query(query)
        client.query(query)
        assert client.cache_hits == 1
        # Another operator mutates behind our back.  Detection rides on
        # billed answers only -- the next *wire* round-trip advertises
        # the new version and invalidates the whole cache, so the
        # original query is re-billed and comes back fresh.
        post_mutate(server.url, {"ops": [{"op": "insert",
                                          "values": [0, 0]}]})
        client.query(Query.select_all().and_upper(0, 5))
        assert client.version_skews == 1
        assert client.data_version == 1
        fresh = client.query(query)
        assert client.cache_hits == 1  # dropped: no stale hit
        assert (0, 0) in {row.values for row in fresh.rows}

    def test_refresh_data_version_is_a_free_probe(self, serve, table):
        server = serve(table, k=2)
        client = RemoteTopKInterface(server.url)
        post_mutate(server.url, {"ops": [{"op": "delete", "rid": 0}]})
        assert client.refresh_data_version() == 1
        assert client.queries_issued == 0

    def test_parity_with_local_interface_after_churn(self, serve):
        table = make_table(ROWS, kinds=InterfaceKind.RQ, domain=10)
        twin = make_table(ROWS, kinds=InterfaceKind.RQ, domain=10)
        server = serve(table, k=3)
        with RemoteTopKInterface(server.url) as client:
            client.mutate(churn={"frac": 0.5, "seed": 4})
            twin.apply_mutations(churn_ops(twin, 0.5, seed=4))
            local = TopKInterface(twin, k=3)
            for hi in range(10):
                query = Query.select_all().and_upper(0, hi)
                assert client.query(query).rows == local.query(query).rows
