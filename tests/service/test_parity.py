"""Remote-parity integration tests.

For every algorithm in the registry, a run through
:class:`RemoteTopKInterface` against a served table must be
query-for-query identical to the in-process run: same discovered skyline
(rids *and* values), same client-side cost, same server-side billing.
With fault injection enabled the client must still converge, and a warm
client cache must make a repeated crawl strictly cheaper.
"""

import pytest

from repro import Discoverer, TopKInterface
from repro.core import all_algorithms
from repro.service import (
    AsyncRemoteTopKInterface,
    FaultConfig,
    RemoteTopKInterface,
)

from ..conftest import (
    PARITY_TABLES as TABLES,
    parity_candidate_table as candidate_table,
    parity_run_params as run_params,
    parity_run_strategy_params,
)


def _remote_client(server, strategy: str, api_key: str):
    """The client flavour a strategy is meant to drive over the wire."""
    if strategy == "async":
        return AsyncRemoteTopKInterface(server.url, api_key=api_key)
    return RemoteTopKInterface(server.url, api_key=api_key)


def skyband_params():
    for spec in all_algorithms():
        if spec.skyband is None:
            continue
        table = candidate_table(spec.supports_skyband)
        assert table is not None, f"no skyband candidate for {spec.name}"
        yield pytest.param(spec.name, table, id=spec.name)


class TestRemoteParity:
    @pytest.mark.parametrize("algorithm,table", run_params())
    def test_every_algorithm_matches_in_process(
        self, serve, algorithm, table
    ):
        local = TopKInterface(table, k=5)
        local_result = Discoverer().run(local, algorithm)

        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, api_key=algorithm)
        remote_result = Discoverer().run(remote, algorithm)

        # Byte-identical skylines: same rids, same values, same order.
        assert remote_result.skyline == local_result.skyline
        assert remote_result.retrieved == local_result.retrieved
        assert remote_result.trace == local_result.trace
        assert remote_result.complete == local_result.complete
        # Identical costs, client- and server-side.
        assert remote_result.total_cost == local_result.total_cost
        assert remote.queries_issued == local.queries_issued
        assert (
            server.stats().usage(algorithm).issued == local.queries_issued
        )

    @pytest.mark.parametrize(
        "algorithm,table,strategy,config", parity_run_strategy_params()
    )
    def test_every_algorithm_matches_under_every_strategy(
        self, serve, algorithm, table, strategy, config
    ):
        """The full parity grid: algorithm x strategy, over the wire.

        Whatever drains the frontier -- serial, a thread pool, or the
        asyncio data plane against the non-blocking client -- the remote
        run must bill exactly the serial in-process cost and discover the
        identical skyline.
        """
        local = TopKInterface(table, k=5)
        local_result = Discoverer().run(local, algorithm)

        server = serve(table, k=5)
        key = f"{algorithm}-{strategy}"
        remote = _remote_client(server, strategy, key)
        remote_result = Discoverer(config).run(remote, algorithm)

        assert remote_result.stats.strategy == strategy
        assert remote_result.skyline_values == local_result.skyline_values
        assert remote_result.complete == local_result.complete
        assert remote_result.total_cost == local_result.total_cost
        assert remote.queries_issued == local.queries_issued
        assert server.stats().usage(key).issued == local.queries_issued
        close = getattr(remote, "close", None)
        if close is not None:
            close()

    @pytest.mark.parametrize("algorithm,table", skyband_params())
    def test_skyband_extensions_match_in_process(
        self, serve, algorithm, table
    ):
        local = TopKInterface(table, k=5)
        local_result = Discoverer().skyband(local, 2, algorithm)

        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, api_key=algorithm)
        remote_result = Discoverer().skyband(remote, 2, algorithm)

        assert remote_result.skyband == local_result.skyband
        assert remote_result.total_cost == local_result.total_cost
        assert remote_result.complete == local_result.complete
        assert (
            server.stats().usage(algorithm).issued == local.queries_issued
        )


class TestFaultedConvergence:
    def test_flaky_service_still_yields_exact_skyline(self, serve, no_sleep):
        table = TABLES["rq3"]
        local_result = Discoverer().run(TopKInterface(table, k=5))

        server = serve(
            table, k=5, faults=FaultConfig(error_rate=0.2, seed=7)
        )
        remote = RemoteTopKInterface(
            server.url, max_retries=50, sleep=no_sleep
        )
        remote_result = Discoverer().run(remote)

        assert remote_result.skyline == local_result.skyline
        assert remote_result.total_cost == local_result.total_cost
        assert remote.retries > 0
        assert server.stats().faults_injected > 0
        # Faults were retried, never billed.
        assert server.stats().queries_total == local_result.total_cost


class TestWarmCacheEconomy:
    def test_recrawl_with_warm_cache_bills_strictly_less(self, serve):
        table = TABLES["mixed"]
        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, cache_size=4096)

        first = Discoverer().run(remote)
        cold_billed = remote.queries_issued
        second = Discoverer().run(remote)
        warm_billed = remote.queries_issued - cold_billed

        assert second.skyline == first.skyline
        assert warm_billed < cold_billed
        assert remote.cache_hits > 0
        # Server-side billing agrees with the client's billable count.
        assert server.stats().queries_total == remote.queries_issued

    def test_cache_does_not_change_discovery_cost_semantics(self, serve):
        # A cached run reports the *billable* cost, which the anytime
        # trace is keyed on -- cache hits appear at the cost level of the
        # last billed query, never inflating it.
        table = TABLES["rq3"]
        server = serve(table, k=5)
        local_result = Discoverer().run(TopKInterface(table, k=5))
        remote = RemoteTopKInterface(server.url, cache_size=4096)
        result = Discoverer().run(remote)
        # First crawl has no repeated queries answered differently: the
        # discovered skyline matches the reference exactly.
        assert result.skyline == local_result.skyline
        assert result.total_cost <= local_result.total_cost
