"""Batched dispatch over the wire: /api/batch, client pipelining, parity.

Covers the three layers the engine's batched path crosses: the wire
format, the server route (per-item billing / faults / replay), and the
client's ``batch_query`` -- plus the remote half of the serial <->
pipelined parity satellite (every algorithm, workers in {1, 4}).
"""

import json
import urllib.request

import pytest

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.hiddendb import Query, QueryBudgetExceeded
from repro.service import FaultConfig, RemoteTopKInterface
from repro.service.server import MAX_BATCH_ITEMS
from repro.service.wire import (
    decode_batch_answer,
    encode_batch_item,
    encode_batch_request,
)

from ..conftest import (
    PARITY_TABLES as TABLES,
    parity_run_params as run_params,
)


def post_json(url, payload, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def sample_queries(count=3):
    queries = [Query.select_all()]
    for value in range(count - 1):
        queries.append(Query.select_all().and_upper(0, value + 2))
    return queries[:count]


class TestWireFormat:
    def test_batch_request_round_trip_shape(self):
        queries = sample_queries(3)
        body = encode_batch_request(queries, ["a", "b", "c"])
        assert [item["id"] for item in body["items"]] == ["a", "b", "c"]
        answer = {
            "items": [encode_batch_item(200, {"x": i}) for i in range(3)]
        }
        decoded = decode_batch_answer(answer, 3)
        assert decoded == [(200, {"x": 0}), (200, {"x": 1}), (200, {"x": 2})]

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            encode_batch_request(sample_queries(2), ["only-one"])

    def test_wrong_item_count_rejected(self):
        with pytest.raises(ValueError):
            decode_batch_answer({"items": [encode_batch_item(200, {})]}, 2)


class TestServerBatchRoute:
    def test_per_item_billing_and_answers_match_single_path(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        queries = sample_queries(3)
        status, payload = post_json(
            f"{server.url}/api/batch",
            encode_batch_request(queries, ["q0", "q1", "q2"]),
            headers={"X-Api-Key": "batch"},
        )
        assert status == 200
        outcomes = decode_batch_answer(payload, 3)
        assert all(item_status == 200 for item_status, _ in outcomes)
        assert server.stats().usage("batch").issued == 3
        # Same answers as the single-query endpoint (fresh key).
        for query, (_, body) in zip(queries, outcomes):
            _, single = post_json(
                f"{server.url}/api/query",
                {"query": encode_batch_request([query], ["x"])["items"][0]["query"]},
                headers={"X-Api-Key": "single"},
            )
            assert body["rows"] == single["rows"]
            assert body["overflow"] == single["overflow"]

    def test_replayed_ids_are_not_billed_twice(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        body = encode_batch_request(sample_queries(2), ["r0", "r1"])
        post_json(f"{server.url}/api/batch", body, {"X-Api-Key": "replay"})
        status, payload = post_json(
            f"{server.url}/api/batch", body, {"X-Api-Key": "replay"}
        )
        assert status == 200
        outcomes = decode_batch_answer(payload, 2)
        assert all(item_status == 200 for item_status, _ in outcomes)
        assert server.stats().usage("replay").issued == 2

    def test_oversized_batch_rejected(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        queries = [Query.select_all()] * (MAX_BATCH_ITEMS + 1)
        ids = [f"id{i}" for i in range(len(queries))]
        request = urllib.request.Request(
            f"{server.url}/api/batch",
            data=json.dumps(encode_batch_request(queries, ids)).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["error"] == "batch_too_large"

    def test_per_item_budget_enforcement(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, key_budget=2)
        status, payload = post_json(
            f"{server.url}/api/batch",
            encode_batch_request(sample_queries(3), ["b0", "b1", "b2"]),
            headers={"X-Api-Key": "tight"},
        )
        assert status == 200
        outcomes = decode_batch_answer(payload, 3)
        assert [s for s, _ in outcomes] == [200, 200, 429]
        assert outcomes[2][1]["error"] == "budget_exceeded"
        assert server.stats().usage("tight").issued == 2

    def test_schema_advertises_batch_capability(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        with urllib.request.urlopen(f"{server.url}/api/schema") as response:
            metadata = json.loads(response.read().decode("utf-8"))
        assert metadata["batch"] is True
        assert metadata["max_batch"] == MAX_BATCH_ITEMS


class TestClientBatchQuery:
    def test_batch_results_match_per_query_dispatch(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, api_key="client")
        assert remote.supports_batch
        queries = sample_queries(4)
        batched = remote.batch_query(queries)
        singles = [
            RemoteTopKInterface(server.url, api_key="ref").query(query)
            for query in queries
        ]
        assert [r.rows for r in batched] == [r.rows for r in singles]
        assert [r.overflow for r in batched] == [r.overflow for r in singles]
        assert remote.queries_issued == len(queries)

    def test_batch_retries_faulted_items_without_double_billing(
        self, serve, no_sleep
    ):
        table = TABLES["rq3"]
        server = serve(
            table, k=5, faults=FaultConfig(error_rate=0.4, seed=1)
        )
        remote = RemoteTopKInterface(
            server.url, api_key="flaky", max_retries=50, sleep=no_sleep
        )
        queries = sample_queries(4)
        results = remote.batch_query(queries)
        assert len(results) == 4
        assert remote.queries_issued == 4
        # Each item was billed exactly once despite the injected faults.
        assert server.stats().usage("flaky").issued == 4
        assert server.stats().faults_injected > 0

    def test_budget_exhaustion_raises_after_accounting(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, key_budget=2)
        remote = RemoteTopKInterface(server.url, api_key="broke")
        with pytest.raises(QueryBudgetExceeded):
            remote.batch_query(sample_queries(4))
        # The two items answered before exhaustion were still billed and
        # counted client-side.
        assert remote.queries_issued == 2
        assert server.stats().usage("broke").issued == 2

    def test_cache_hits_skip_the_wire(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        remote = RemoteTopKInterface(
            server.url, api_key="cached", cache_size=64
        )
        queries = sample_queries(3)
        remote.batch_query(queries)
        again = remote.batch_query(queries)
        assert len(again) == 3
        assert remote.queries_issued == 3
        assert remote.cache_hits == 3
        assert server.stats().usage("cached").issued == 3

    def test_fallback_to_per_query_dispatch(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, api_key="fallback")
        remote._supports_batch = False  # as if the server were pre-batch
        queries = sample_queries(3)
        results = remote.batch_query(queries)
        assert len(results) == 3
        assert remote.queries_issued == 3
        assert server.stats().usage("fallback").issued == 3

    def test_fallback_failure_attaches_partial_results(self, serve):
        # Regression: the per-query fallback must carry already-billed
        # answers on the raised exception, like the batched path does.
        table = TABLES["rq3"]
        server = serve(table, k=5, key_budget=2)
        remote = RemoteTopKInterface(server.url, api_key="fb-broke")
        remote._supports_batch = False
        with pytest.raises(QueryBudgetExceeded) as excinfo:
            remote.batch_query(sample_queries(4))
        partial = excinfo.value.partial_results
        answered = [r for r in partial if r is not None]
        assert len(answered) == 2
        assert remote.queries_issued == 2
        assert server.stats().usage("fb-broke").issued == 2


class TestRemotePipelinedParity:
    """Satellite: remote serial <-> pipelined parity for every algorithm."""

    @pytest.mark.parametrize("algorithm,table", run_params())
    @pytest.mark.parametrize("workers", [1, 4])
    def test_remote_parity(self, serve, algorithm, table, workers):
        local = TopKInterface(table, k=5)
        reference = Discoverer().run(local, algorithm)

        server = serve(table, k=5)
        remote = RemoteTopKInterface(
            server.url, api_key=f"{algorithm}-w{workers}"
        )
        result = Discoverer(
            DiscoveryConfig(workers=workers, batch_size=8)
        ).run(remote, algorithm)

        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert result.complete == reference.complete
        assert (
            server.stats().usage(f"{algorithm}-w{workers}").issued
            == reference.total_cost
        )

    def test_pipelined_run_survives_fault_injection(self, serve, no_sleep):
        table = TABLES["rq3"]
        reference = Discoverer().run(TopKInterface(table, k=5), "baseline")
        server = serve(
            table, k=5, faults=FaultConfig(error_rate=0.2, seed=7)
        )
        remote = RemoteTopKInterface(
            server.url, api_key="faulted", max_retries=50, sleep=no_sleep
        )
        result = Discoverer(DiscoveryConfig(workers=4, batch_size=8)).run(
            remote, "baseline"
        )
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert server.stats().faults_injected > 0
        assert server.stats().usage("faulted").issued == reference.total_cost

    def test_remote_budget_exhaustion_keeps_billed_answers(self, serve):
        # Regression: when the server-side key budget dies mid-batch, the
        # answers billed before exhaustion must still reach the session.
        table = TABLES["rq3"]
        server = serve(table, k=5, key_budget=30)
        remote = RemoteTopKInterface(server.url, api_key="mid-batch")
        result = Discoverer(DiscoveryConfig(workers=1, batch_size=8)).run(
            remote, "baseline"
        )
        assert not result.complete
        assert result.total_cost == 30
        assert remote.queries_issued == 30
        assert server.stats().usage("mid-batch").issued == 30
        assert len(result.retrieved) > 0

    def test_cache_hits_do_not_consume_session_budget(self, serve):
        # Regression: the reservation-based budget must only charge
        # billable transports -- client-LRU cache hits stay free, exactly
        # like the pre-engine `cost >= budget` check treated them.
        table = diamonds_table(150, seed=3)
        server = serve(table, k=10)
        probe = RemoteTopKInterface(
            server.url, api_key="probe", cache_size=65_536
        )
        reference = Discoverer().run(probe, "sq")
        assert probe.cache_hits > 0  # SQ's tree repeats queries in-run

        crawler = RemoteTopKInterface(
            server.url, api_key="budgeted", cache_size=65_536
        )
        result = Discoverer(
            DiscoveryConfig(budget=reference.total_cost)
        ).run(crawler, "sq")
        assert result.complete
        assert result.total_cost == reference.total_cost

    def test_pipelined_batches_actually_travel_batched(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        remote = RemoteTopKInterface(server.url, api_key="batched")
        result = Discoverer(DiscoveryConfig(workers=4, batch_size=8)).run(
            remote, "baseline"
        )
        assert result.stats.batches > 0
        assert result.stats.batched > 0
        assert result.stats.max_in_flight > 1
