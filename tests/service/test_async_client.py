"""Tests for the asyncio remote client (repro.service.aclient).

The async client must be billing-for-billing identical to the blocking
client: same wire format, same retry/replay semantics, same never-billed
cache and ledger mount -- just driven by an event loop instead of
blocking sockets.
"""

import pytest

from repro import CrawlStore, Discoverer, DiscoveryConfig, TopKInterface
from repro.hiddendb import Query, as_sync_endpoint
from repro.hiddendb.endpoint import EventLoopRunner
from repro.service import (
    AsyncRemoteTopKInterface,
    FaultConfig,
    RemoteServiceError,
)

from ..conftest import PARITY_TABLES as TABLES


class TestBootstrapAndMetadata:
    def test_schema_and_capabilities_match_sync_client(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, name="meta-check")
        with AsyncRemoteTopKInterface(server.url) as client:
            assert client.k == 5
            assert client.service_name == "meta-check"
            assert client.supports_batch
            assert client.schema.m == table.schema.m
            assert client.queries_issued == 0

    def test_rejects_bad_url(self):
        with pytest.raises(ValueError):
            AsyncRemoteTopKInterface("ftp://nope")

    def test_unreachable_service_fails_terminally(self):
        with pytest.raises(RemoteServiceError):
            AsyncRemoteTopKInterface(
                "http://127.0.0.1:9", max_retries=1,
                sleep=lambda _s: None,
            )


class TestQuerySemantics:
    def test_aquery_matches_blocking_query(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        with AsyncRemoteTopKInterface(server.url) as client:
            runner = EventLoopRunner()
            try:
                async_answer = runner.run(client.aquery(Query.select_all()))
            finally:
                runner.close()
            blocking_answer = client.query(Query.select_all())
            assert async_answer.rows == blocking_answer.rows
            assert client.queries_issued == 2

    def test_batch_matches_per_query_answers(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        queries = [
            Query.select_all().and_upper(0, bound) for bound in range(4)
        ]
        with AsyncRemoteTopKInterface(server.url, api_key="one") as one:
            singles = [one.query(query) for query in queries]
        with AsyncRemoteTopKInterface(server.url, api_key="batch") as batch:
            batched = batch.batch_query(queries)
            assert [r.rows for r in batched] == [r.rows for r in singles]
            assert batch.queries_issued == len(queries)
        assert server.stats().usage("batch").issued == len(queries)

    def test_cache_hits_are_free(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        with AsyncRemoteTopKInterface(server.url, cache_size=64) as client:
            first = client.query(Query.select_all())
            again = client.query(Query.select_all())
            assert again.rows == first.rows
            assert client.queries_issued == 1
            assert client.cache_hits == 1
            assert client.cached_answer(Query.select_all()) is not None
            assert server.stats().queries_total == 1

    def test_retries_converge_without_double_billing(self, serve):
        # The baseline crawl issues hundreds of queries, so the seeded
        # 20% fault rate is guaranteed to hit both the single-query and
        # the batched transport paths.
        table = TABLES["rq3"]
        server = serve(
            table, k=5, faults=FaultConfig(error_rate=0.2, seed=11)
        )
        with AsyncRemoteTopKInterface(
            server.url, max_retries=50, sleep=lambda _s: None
        ) as client:
            local = Discoverer().run(TopKInterface(table, k=5), "baseline")
            result = Discoverer(
                DiscoveryConfig(strategy="async", workers=4, batch_size=8)
            ).run(client, "baseline")
            assert result.skyline_values == local.skyline_values
            assert result.total_cost == local.total_cost
            assert client.retries > 0
            assert server.stats().faults_injected > 0
            # Faults were retried under stable request ids, never billed.
            assert server.stats().queries_total == local.total_cost

    def test_replay_nonce_makes_reissues_free(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        with AsyncRemoteTopKInterface(
            server.url, api_key="nonced", replay_nonce="resume-nonce"
        ) as client:
            first = client.query(Query.select_all())
            again = client.query(Query.select_all())
            assert again.rows == first.rows
            # Same nonce + same canonical key -> same X-Request-Id: the
            # server replays the billed answer instead of charging twice.
            assert server.stats().usage("nonced").issued == 1

    def test_ledger_mount_is_a_durable_free_cache(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5, name="aledger")
        store = CrawlStore.memory()
        with AsyncRemoteTopKInterface(server.url) as probe:
            fingerprint = store.register_endpoint(
                probe.schema, probe.k, probe.service_name
            )
        ledger = store.ledger(fingerprint)
        with AsyncRemoteTopKInterface(server.url, ledger=ledger) as cold:
            reference = Discoverer().run(cold)
            billed = server.stats().queries_total
            assert billed == reference.total_cost > 0
        # A brand-new client answers everything from the ledger.
        with AsyncRemoteTopKInterface(server.url, ledger=ledger) as warm:
            result = Discoverer().run(warm)
            assert result.skyline_values == reference.skyline_values
            assert result.total_cost == 0
            assert warm.queries_issued == 0
            assert warm.ledger_hits == reference.total_cost
            assert server.stats().queries_total == billed


class TestSyncAdapter:
    def test_as_sync_endpoint_passes_async_clients_through(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)
        with AsyncRemoteTopKInterface(server.url) as client:
            # The async client already offers a blocking surface, so the
            # adapter is the identity for it.
            assert as_sync_endpoint(client) is client

    def test_adapter_wraps_a_pure_async_endpoint(self, serve):
        table = TABLES["rq3"]
        server = serve(table, k=5)

        class PureAsync:
            """An endpoint speaking only the async protocol."""

            def __init__(self, inner):
                self._inner = inner
                self.schema = inner.schema
                self.k = inner.k

            @property
            def queries_issued(self):
                return self._inner.queries_issued

            async def aquery(self, query):
                return await self._inner.aquery(query)

        with AsyncRemoteTopKInterface(server.url) as client:
            adapted = as_sync_endpoint(PureAsync(client))
            with adapted:
                answer = adapted.query(Query.select_all())
                assert answer.rows
                assert adapted.queries_issued == 1
