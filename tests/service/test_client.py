"""Tests of the resilient remote client: retries, caching, error mapping."""

import pytest

from repro.hiddendb import (
    InterfaceKind,
    Query,
    QueryBudgetExceeded,
    SearchEndpoint,
    TopKInterface,
    UnsupportedQueryError,
)
from repro.service import FaultConfig, RemoteServiceError, RemoteTopKInterface

from ..conftest import make_table


@pytest.fixture
def table():
    return make_table(
        [(0, 9), (3, 3), (9, 0), (5, 5)], kinds=InterfaceKind.RQ, domain=10
    )


class TestEndpointSurface:
    def test_implements_search_endpoint(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url)
        assert isinstance(remote, SearchEndpoint)
        assert isinstance(TopKInterface(table, k=2), SearchEndpoint)

    def test_schema_and_k_fetched_at_construction(self, serve, table):
        server = serve(table, k=3, name="svc")
        remote = RemoteTopKInterface(server.url)
        assert remote.k == 3
        assert remote.service_name == "svc"
        assert remote.schema.m == table.schema.m
        assert [a.kind for a in remote.schema.ranking_attributes] == \
            [a.kind for a in table.schema.ranking_attributes]

    def test_query_matches_in_process_answer(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url)
        local = TopKInterface(table, k=2)
        query = Query.select_all().and_upper(0, 5)
        remote_result = remote.query(query)
        local_result = local.query(query)
        assert remote_result.rows == local_result.rows
        assert remote_result.overflow == local_result.overflow
        assert remote_result.sequence == local_result.sequence
        assert remote_result.query == query
        assert remote.queries_issued == 1

    def test_unreachable_service(self, no_sleep):
        with pytest.raises(RemoteServiceError):
            RemoteTopKInterface(
                "http://127.0.0.1:9", max_retries=1, sleep=no_sleep, timeout=1.0
            )


class TestErrorMapping:
    def test_budget_exceeded_maps_to_exception(self, serve, table):
        server = serve(table, k=1, key_budget=2)
        remote = RemoteTopKInterface(server.url, api_key="crawler")
        remote.query(Query.select_all())
        remote.query(Query.select_all())
        with pytest.raises(QueryBudgetExceeded) as err:
            remote.query(Query.select_all())
        assert err.value.limit == 2
        # The rejected query is charged neither locally nor server-side.
        assert remote.queries_issued == 2
        assert server.stats().usage("crawler").issued == 2

    def test_unsupported_query_maps_to_exception(self, serve):
        pq = make_table([(1, 1)], kinds=InterfaceKind.PQ, domain=10)
        server = serve(pq, k=1)
        remote = RemoteTopKInterface(server.url)
        with pytest.raises(UnsupportedQueryError):
            remote.query(Query.select_all().and_upper(0, 5))
        assert remote.queries_issued == 0


class TestRetries:
    def test_retries_absorb_injected_faults(self, serve, table, no_sleep):
        server = serve(
            table, k=2, faults=FaultConfig(error_rate=0.5, seed=3)
        )
        remote = RemoteTopKInterface(
            server.url, max_retries=50, sleep=no_sleep
        )
        local = TopKInterface(table, k=2)
        for _ in range(10):
            assert remote.query(Query.select_all()).rows == \
                local.query(Query.select_all()).rows
        assert remote.retries > 0
        # Injected faults are never billed.
        assert server.stats().queries_total == 10

    def test_gives_up_after_max_retries(self, serve, table, no_sleep):
        server = serve(table, faults=FaultConfig(error_rate=1.0, seed=0))
        remote = RemoteTopKInterface(
            server.url, max_retries=3, sleep=no_sleep
        )
        with pytest.raises(RemoteServiceError) as err:
            remote.query(Query.select_all())
        assert err.value.status in (429, 503)
        assert remote.retries == 3

    def test_retries_reuse_one_request_id_per_logical_query(
        self, serve, table, no_sleep, monkeypatch
    ):
        # All attempts of one query() must share an X-Request-Id (so the
        # server can dedup billing), and distinct queries must use new ids.
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url, max_retries=5, sleep=no_sleep)
        seen: list[str | None] = []
        original = RemoteTopKInterface._send
        failed_once = []

        def flaky_send(self, method, path, body, request_id=None, trace_id=None):
            if path == "/api/query":
                seen.append(request_id)
                if not failed_once:
                    failed_once.append(True)
                    from repro.service.client import _Retriable

                    raise _Retriable("simulated lost response", status=None)
            return original(self, method, path, body, request_id, trace_id)

        monkeypatch.setattr(RemoteTopKInterface, "_send", flaky_send)
        remote.query(Query.select_all())
        remote.query(Query.select_all().and_upper(0, 5))
        assert len(seen) == 3  # two attempts for query 1, one for query 2
        assert seen[0] is not None and seen[0] == seen[1]
        assert seen[2] is not None and seen[2] != seen[0]

    def test_backoff_schedule_is_exponential_and_capped(self, serve, table):
        server = serve(table, faults=FaultConfig(error_rate=1.0, seed=0))
        slept: list[float] = []
        remote = RemoteTopKInterface(
            server.url, max_retries=5, backoff=0.1, backoff_cap=0.4,
            sleep=slept.append,
        )
        with pytest.raises(RemoteServiceError):
            remote.query(Query.select_all())
        assert slept == [0.1, 0.2, 0.4, 0.4, 0.4]


class TestQueryCache:
    def test_cache_hits_are_free(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url, cache_size=16)
        query = Query.select_all().and_upper(0, 5)
        first = remote.query(query)
        second = remote.query(query)
        assert second is first
        assert remote.queries_issued == 1
        assert remote.cache_hits == 1
        assert server.stats().queries_total == 1

    def test_distinct_queries_are_billed(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url, cache_size=16)
        remote.query(Query.select_all())
        remote.query(Query.select_all().and_upper(0, 5))
        assert remote.queries_issued == 2
        assert remote.cache_hits == 0

    def test_lru_eviction(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url, cache_size=1)
        a = Query.select_all()
        b = Query.select_all().and_upper(0, 5)
        remote.query(a)
        remote.query(b)  # evicts a
        remote.query(a)  # miss: billed again
        assert remote.queries_issued == 3
        assert remote.cache_hits == 0
        remote.query(a)  # hit
        assert remote.cache_hits == 1

    def test_clear_cache(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url, cache_size=16)
        remote.query(Query.select_all())
        remote.clear_cache()
        remote.query(Query.select_all())
        assert remote.queries_issued == 2

    def test_cache_disabled_by_default(self, serve, table):
        server = serve(table, k=2)
        remote = RemoteTopKInterface(server.url)
        remote.query(Query.select_all())
        remote.query(Query.select_all())
        assert remote.queries_issued == 2
        assert remote.cache_hits == 0


class TestTelemetry:
    def test_budget_remaining_tracks_headers(self, serve, table):
        server = serve(table, k=1, key_budget=3)
        remote = RemoteTopKInterface(server.url)
        assert remote.budget_remaining is None  # schema route has no header
        remote.query(Query.select_all())
        assert remote.budget_remaining == 2

    def test_budget_remaining_reaches_zero_on_exhaustion(self, serve, table):
        server = serve(table, k=1, key_budget=1)
        remote = RemoteTopKInterface(server.url)
        remote.query(Query.select_all())
        with pytest.raises(QueryBudgetExceeded):
            remote.query(Query.select_all())
        # The 429 carries X-Budget-Remaining: 0; telemetry must not report
        # leftover budget on an exhausted key.
        assert remote.budget_remaining == 0

    def test_server_stats_accessor(self, serve, table):
        server = serve(table, k=1)
        remote = RemoteTopKInterface(server.url, api_key="me")
        remote.query(Query.select_all())
        stats = remote.server_stats()
        assert stats["keys"]["me"]["issued"] == 1

    def test_connection_survives_close_and_context_manager(self, serve, table):
        server = serve(table, k=1)
        with RemoteTopKInterface(server.url) as remote:
            remote.query(Query.select_all())
            remote.close()  # next request transparently reconnects
            remote.query(Query.select_all())
            assert remote.queries_issued == 2

    def test_rejects_malformed_url(self):
        with pytest.raises(ValueError):
            RemoteTopKInterface("127.0.0.1:8080")
