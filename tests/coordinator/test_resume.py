"""Coordinator crash recovery: SIGKILL ``repro coordinate``, restart with
``--resume``, and the catalog job finishes at serial parity.

This drives the real CLI in a subprocess (parsing the ``port       : N``
line the daemon prints for exactly this purpose), kills it dead -- no
atexit, no cleanup -- mid-crawl, and restarts it against the same store.
The restarted coordinator must replay every catalog job still
queued/running under its original session: the paid-for ledger prefix
comes back free, in-flight queries the dead incarnation already billed
are replayed free by the servers under the session's deterministic
request ids, and the final skyline and billed cost equal the serial
single-process reference.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import CrawlStore, Discoverer, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer

from .conftest import get_json, post_json, wait_for_job

K = 5
N = 1000


def _spawn_coordinator(store_path, backend_urls, *, resume=False):
    """Start ``repro coordinate`` in a subprocess; returns (proc, base_url)."""
    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    argv = [
        sys.executable, "-m", "repro.cli", "coordinate",
        "--store", str(store_path), "--port", "0", "--workers", "2",
    ]
    for url in backend_urls:
        argv += ["--backend", url]
    if resume:
        argv.append("--resume")
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("port"):
            port = int(line.split(":", 1)[1].strip())
            break
    if port is None:
        proc.kill()
        proc.wait(timeout=10)
        pytest.fail("coordinator subprocess never reported its port")
    return proc, f"http://127.0.0.1:{port}"


class TestKillAndResume:
    def test_sigkill_mid_job_then_resume_reaches_parity(self, tmp_path):
        table = diamonds_table(N, seed=4)
        reference = Discoverer().run(TopKInterface(table, k=K), "rq")
        store_path = tmp_path / "jobs.db"
        faults = FaultConfig(latency=(0.01, 0.02), seed=9)
        servers = [
            HiddenDBServer(
                table, k=K, name="mirrored-db", faults=faults
            ).start()
            for _ in range(2)
        ]
        urls = [server.url for server in servers]
        try:
            proc, base = _spawn_coordinator(store_path, urls)
            try:
                status, body = post_json(
                    f"{base}/api/jobs",
                    {"tenant": "survivor", "checkpoint_every": 4},
                )
                assert status == 201, body
                job_id = body["job_id"]

                # Wait until the crawl has durably billed a real prefix
                # (but is nowhere near done), then kill -9 the daemon.
                deadline = time.time() + 60
                with CrawlStore(str(store_path)) as store:
                    while time.time() < deadline:
                        if store.ledger_size() >= 10:
                            break
                        time.sleep(0.02)
                    else:
                        pytest.fail("coordinator made no ledger progress")
            finally:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)

            with CrawlStore(str(store_path)) as store:
                prefix = store.ledger_size()
                record = store.job(job_id)
                assert record is not None
                # The kill left the catalog row mid-flight -- exactly
                # what --resume replays.
                assert record.status in ("queued", "running")
                assert 0 < prefix < reference.total_cost

            proc, base = _spawn_coordinator(store_path, urls, resume=True)
            try:
                final = wait_for_job(base, job_id, timeout=120)
                assert final["status"] == "finished", final.get("error")
                result = final["result"]
                skyline = frozenset(tuple(row) for row in result["skyline"])
                assert skyline == reference.skyline_values
                # No double billing anywhere: the session's billed total
                # equals the uninterrupted serial cost, and so does the
                # actual server-side bill across both incarnations
                # (ledgered answers replayed from the store; the dead
                # run's in-flight answers replayed free by the servers
                # under the session's deterministic request ids).
                assert result["total_cost"] == reference.total_cost
                billed_on_servers = sum(
                    server.stats().queries_total for server in servers
                )
                assert billed_on_servers <= reference.total_cost

                # The resumed catalog is visible over the wire too.
                _, index = get_json(f"{base}/api/jobs")
                entry = next(
                    j for j in index["jobs"] if j["job_id"] == job_id
                )
                assert entry["status"] == "finished"
            finally:
                proc.kill()
                proc.wait(timeout=30)
        finally:
            for server in servers:
                server.stop()
