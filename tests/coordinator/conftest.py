"""Fixtures for the sharded crawl-coordinator tests.

The recurring setup: N :class:`HiddenDBServer` *mirrors* of one table --
same name, same k, same ranking, hence the same endpoint fingerprint --
each with its own API-key budgets, plus plain urllib helpers for talking
to a coordinator over the wire (the tests deliberately do not use the
repro client for coordinator routes: tenants are arbitrary HTTP speakers).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import HiddenDBServer


@pytest.fixture
def mirrors():
    """Start N identically-named servers over one table, stop on teardown.

    Usage: ``a, b = mirrors(table, 2, k=5, budgets=[{"ka": 40}, None])``.
    """
    started: list[HiddenDBServer] = []

    def _mirrors(table, count, *, name="mirrored-db", budgets=None, **kwargs):
        servers = []
        for index in range(count):
            extra = dict(kwargs)
            if budgets and budgets[index]:
                extra["budgets"] = budgets[index]
            server = HiddenDBServer(table, name=name, **extra).start()
            started.append(server)
            servers.append(server)
        return servers

    yield _mirrors
    for server in started:
        server.stop()


def get_json(url: str) -> tuple[int, dict]:
    """GET ``url``; returns ``(status, decoded body)`` without raising on 4xx."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def post_json(url: str, payload: dict) -> tuple[int, dict]:
    """POST ``payload`` as JSON; returns ``(status, decoded body)``."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def delete(url: str) -> tuple[int, dict]:
    """DELETE ``url``; returns ``(status, decoded body)``."""
    request = urllib.request.Request(url, method="DELETE")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def wait_for_job(base_url: str, job_id: str, *, timeout: float = 60.0) -> dict:
    """Poll ``GET /api/jobs/<id>`` until the job reaches a terminal status."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, body = get_json(f"{base_url}/api/jobs/{job_id}")
        assert status == 200, body
        if body["status"] not in ("queued", "running"):
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")
