"""Watch jobs: the coordinator's continuous-monitoring loop.

A job submitted with ``{"watch": {"interval_s": ...}}`` stays ``running``
after its initial crawl and re-checks the endpoint every interval: a
quiet endpoint costs nothing (the data version did not move), a mutated
one triggers a delta-crawl repair whose skyline must match a from-scratch
reference, and the tenant reads the repair's freshness report from the
job view.  Cancellation stops the loop.  Everything here speaks plain
HTTP, as a tenant would.
"""

from __future__ import annotations

import time
import urllib.request

import pytest

from repro import Discoverer, TopKInterface
from repro.coordinator import CrawlCoordinator
from repro.datagen import churn_ops, diamonds_table
from repro.service.wire import decode_job_spec

from ..conftest import parse_prometheus
from .conftest import delete, get_json, post_json

K = 5
N = 400
INTERVAL = 0.2


class TestWatchSpec:
    def test_interval_normalised_to_float(self):
        spec = decode_job_spec({"watch": {"interval_s": 2}})
        assert spec["watch"] == {"interval_s": 2.0}

    def test_omitted_watch_defaults_to_none(self):
        assert decode_job_spec({})["watch"] is None

    @pytest.mark.parametrize(
        "watch,message",
        [
            ("soon", "must be an object"),
            ({"interval": 1}, "unknown watch field"),
            ({"interval_s": "fast"}, "must be a number"),
            ({"interval_s": True}, "must be a number"),
            ({"interval_s": 0}, "must be > 0"),
            ({"interval_s": -3.0}, "must be > 0"),
            ({}, "must be a number"),
        ],
        ids=["not-object", "typo", "string", "bool", "zero", "negative",
             "missing"],
    )
    def test_invalid_watch_rejected(self, watch, message):
        with pytest.raises(ValueError, match=message):
            decode_job_spec({"watch": watch})

    def test_rejected_over_the_wire_as_400(self, mirrors, tmp_path):
        table = diamonds_table(50, seed=3)
        (backend,) = mirrors(table, 1, k=K)
        with CrawlCoordinator(
            [backend.url], str(tmp_path / "jobs.db")
        ) as coordinator:
            status, body = post_json(
                f"{coordinator.url}/api/jobs",
                {"tenant": "alice", "watch": {"interval_s": 0}},
            )
            assert status == 400
            assert "interval_s" in body["message"]


class TestWatchLoop:
    @pytest.fixture
    def table(self):
        return diamonds_table(N, seed=3)

    @pytest.fixture
    def watching(self, table, mirrors, tmp_path):
        """A started coordinator with one watch job over one backend."""
        (backend,) = mirrors(table, 1, k=K)
        coordinator = CrawlCoordinator(
            [backend.url], str(tmp_path / "jobs.db"), workers_per_backend=2
        )
        with coordinator:
            status, body = post_json(
                f"{coordinator.url}/api/jobs",
                {"tenant": "alice", "algorithm": "rq",
                 "watch": {"interval_s": INTERVAL}},
            )
            assert status == 201, body
            yield coordinator, backend, body["job_id"]

    def await_view(self, coordinator, job_id, predicate, timeout=60.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, view = get_json(f"{coordinator.url}/api/jobs/{job_id}")
            assert status == 200, view
            if predicate(view):
                return view
            time.sleep(0.05)
        raise AssertionError("watch job never reached the expected state")

    def test_watch_cycle_repairs_after_mutation(self, watching, table):
        coordinator, backend, job_id = watching
        # Initial crawl lands but the job stays running (it is a watch).
        view = self.await_view(
            coordinator, job_id, lambda v: bool(v.get("result"))
        )
        assert view["status"] == "running"
        initial_cost = view["result"]["total_cost"]

        # A quiet endpoint: the next cycle bills nothing.
        view = self.await_view(
            coordinator, job_id,
            lambda v: bool(v.get("progress", {}).get("watch")),
        )
        quiet = view["progress"]["watch"]
        assert quiet["billed"] == 0
        assert quiet["epoch"] == 0
        assert not quiet["skyline_changed"]

        # Churn the endpoint; the watcher notices the version bump and
        # repairs.  The repaired skyline must equal a from-scratch crawl
        # of the mutated table, at a fraction of its cost.
        ops = churn_ops(table, 0.10, seed=7, mix=(1.0, 0.0, 0.0))
        status, reply = post_json(f"{backend.url}/api/mutate", {"ops": ops})
        assert status == 200, reply
        view = self.await_view(
            coordinator, job_id,
            lambda v: (v.get("progress", {}).get("watch") or {}).get("epoch")
            == reply["data_version"],
        )
        repair = view["progress"]["watch"]
        scratch = Discoverer().run(TopKInterface(table, k=K), "rq")
        got = frozenset(tuple(row) for row in view["result"]["skyline"])
        assert got == scratch.skyline_values
        assert 0 < repair["billed"] < scratch.total_cost < initial_cost
        assert repair["complete"]
        assert repair["revalidated"] > 0
        freshness = view["result"]["freshness"]
        assert freshness["epoch"] == reply["data_version"]
        assert freshness["billed"] == repair["billed"]
        removed = {tuple(v) for v in repair["skyline_removed"]}
        added = {tuple(v) for v in repair["skyline_added"]}
        assert repair["skyline_changed"] == bool(added | removed)

        # Freshness metric families ride the normal scrape.
        with urllib.request.urlopen(
            f"{coordinator.url}/metrics", timeout=30
        ) as response:
            families = parse_prometheus(response.read().decode())
        assert "freshness_ledger_stale_entries" in families
        assert families["freshness_skyline_age_seconds"]["type"] == "gauge"
        delta_total = sum(
            value
            for (_, labels), value in
            families["freshness_delta_queries_total"]["samples"].items()
            if dict(labels).get("job") == job_id
        )
        assert delta_total >= repair["billed"]

    def test_cancel_stops_the_watch(self, watching):
        coordinator, _backend, job_id = watching
        self.await_view(coordinator, job_id, lambda v: bool(v.get("result")))
        status, _ = delete(f"{coordinator.url}/api/jobs/{job_id}")
        assert status == 200
        view = self.await_view(
            coordinator, job_id,
            lambda v: v["status"] not in ("queued", "running"),
        )
        assert view["status"] == "cancelled"
