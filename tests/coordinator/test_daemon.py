"""Over-the-wire tests for the crawl coordinator daemon.

Everything here speaks to the coordinator the way a tenant would: plain
HTTP + JSON against ``/api/jobs``, no in-process shortcuts.  The parity
gates mirror the subsystem's acceptance bar: a job fanned over two
backends produces the skyline *and* billed cost of a serial
single-process run, and a second tenant of the same endpoint bills
almost nothing because the shared ledger already paid for the answers.
"""

import time

import pytest

from repro import CrawlStore, Discoverer, TopKInterface
from repro.coordinator import CrawlCoordinator
from repro.datagen import diamonds_table
from repro.service import FaultConfig

from .conftest import delete, get_json, post_json, wait_for_job

K = 5
N = 400


@pytest.fixture
def table():
    return diamonds_table(N, seed=3)


@pytest.fixture
def reference(table):
    """Serial, single-process, in-memory: the parity yardstick."""
    return Discoverer().run(TopKInterface(table, k=K), "rq")


@pytest.fixture
def coordinated(table, mirrors, tmp_path):
    """Two mirrored backends behind one started coordinator."""
    a, b = mirrors(table, 2, k=K)
    coordinator = CrawlCoordinator(
        [a.url, b.url], str(tmp_path / "jobs.db"), workers_per_backend=2
    )
    with coordinator:
        yield coordinator


def skyline_set(result_payload: dict) -> frozenset:
    return frozenset(tuple(row) for row in result_payload["skyline"])


class TestMetadataRoutes:
    def test_healthz_reports_pool_and_fingerprint(self, coordinated):
        status, body = get_json(f"{coordinated.url}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["fingerprint"] == coordinated.fingerprint
        assert len(body["backends"]) == 2
        assert all(entry["ok"] for entry in body["backends"])

    def test_schema_route_is_tenant_bootstrap(self, coordinated, table):
        status, body = get_json(f"{coordinated.url}/api/schema")
        assert status == 200
        assert body["fingerprint"] == coordinated.fingerprint
        assert body["k"] == K
        assert body["backends"] == 2
        assert len(body["schema"]["attributes"]) >= table.schema.m

    def test_unknown_routes_404(self, coordinated):
        assert get_json(f"{coordinated.url}/nope")[0] == 404
        assert post_json(f"{coordinated.url}/api/nope", {})[0] == 404


class TestJobLifecycle:
    def test_sharded_job_matches_serial_reference(
        self, coordinated, reference
    ):
        status, body = post_json(
            f"{coordinated.url}/api/jobs",
            {"tenant": "alice", "algorithm": "rq"},
        )
        assert status == 201, body
        assert body["status"] in ("queued", "running")
        job_id = body["job_id"]

        final = wait_for_job(coordinated.url, job_id)
        assert final["status"] == "finished", final.get("error")
        result = final["result"]
        assert result["complete"]
        # The acceptance gate: identical skyline, identical billed cost.
        assert skyline_set(result) == reference.skyline_values
        assert result["total_cost"] == reference.total_cost
        # Sharded execution, both mirrors billed.
        assert result["stats"]["strategy"] == "sharded"
        shares = [shard["issued"] for shard in result["shards"]]
        assert all(share > 0 for share in shares)
        assert sum(shares) == reference.total_cost
        # The durable checkpoint agrees with the final accounting.
        assert final["checkpoint"]["billed"] == reference.total_cost

        status, index = get_json(f"{coordinated.url}/api/jobs")
        assert status == 200
        entry = next(j for j in index["jobs"] if j["job_id"] == job_id)
        assert entry["tenant"] == "alice"
        assert entry["status"] == "finished"

    def test_second_tenant_bills_almost_nothing(
        self, coordinated, reference
    ):
        _, first = post_json(
            f"{coordinated.url}/api/jobs", {"tenant": "alice"}
        )
        first_final = wait_for_job(coordinated.url, first["job_id"])
        assert first_final["status"] == "finished"

        _, second = post_json(
            f"{coordinated.url}/api/jobs", {"tenant": "bob"}
        )
        second_final = wait_for_job(coordinated.url, second["job_id"])
        assert second_final["status"] == "finished"

        # Same fingerprint, same ledger: bob replays alice's paid-for
        # answers.  The bar is <= 5% of the first tenant's bill; in
        # practice it is zero.
        first_cost = first_final["result"]["total_cost"]
        second_cost = second_final["result"]["total_cost"]
        assert first_cost == reference.total_cost
        assert second_cost <= max(1, first_cost // 20)
        assert skyline_set(second_final["result"]) == reference.skyline_values

    def test_budget_capped_job_ends_partial(self, coordinated, reference):
        budget = max(2, reference.total_cost // 4)
        _, body = post_json(
            f"{coordinated.url}/api/jobs",
            {"tenant": "capped", "budget": budget},
        )
        final = wait_for_job(coordinated.url, body["job_id"])
        assert final["status"] == "partial"
        assert not final["result"]["complete"]
        assert final["result"]["total_cost"] <= budget
        assert skyline_set(final["result"]) <= reference.skyline_values


class TestConcurrentTenants:
    def test_overlapping_tenants_share_the_ledger(
        self, table, mirrors, tmp_path, reference
    ):
        # Latency-injected mirrors keep the first job in flight long
        # enough for a second tenant to submit mid-crawl.
        a, b = mirrors(
            table, 2, k=K,
            faults=FaultConfig(latency=(0.004, 0.008), seed=11),
        )
        with CrawlCoordinator(
            [a.url, b.url], str(tmp_path / "jobs.db"), workers_per_backend=2
        ) as coordinator:
            _, first = post_json(
                f"{coordinator.url}/api/jobs",
                {"tenant": "alice", "checkpoint_every": 1},
            )
            # Wait for a committed prefix before the second tenant joins:
            # those answers are durably in the ledger, so bob must get
            # them for free even while alice is still crawling.
            deadline = time.time() + 30
            while time.time() < deadline:
                _, view = get_json(
                    f"{coordinator.url}/api/jobs/{first['job_id']}"
                )
                if view.get("checkpoint", {}).get("billed", 0) >= 3:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("first tenant made no ledgered progress")

            _, second = post_json(
                f"{coordinator.url}/api/jobs",
                {"tenant": "bob", "checkpoint_every": 1},
            )
            first_final = wait_for_job(coordinator.url, first["job_id"])
            second_final = wait_for_job(coordinator.url, second["job_id"])

        assert first_final["status"] == "finished"
        assert second_final["status"] == "finished"
        assert skyline_set(first_final["result"]) == reference.skyline_values
        assert skyline_set(second_final["result"]) == reference.skyline_values
        first_cost = first_final["result"]["total_cost"]
        second_cost = second_final["result"]["total_cost"]
        # Determinism caps each tenant at the serial cost; the shared
        # ledger must shave at least the committed prefix off the second
        # tenant's bill (the overlap window -- queries in flight at both
        # tenants simultaneously -- is the only double billing possible).
        assert first_cost <= reference.total_cost
        assert second_cost <= reference.total_cost - 3
        assert first_cost + second_cost < 2 * reference.total_cost


class TestCancellation:
    def test_cancel_running_job_keeps_session_resumable(
        self, table, mirrors, tmp_path
    ):
        a, b = mirrors(
            table, 2, k=K,
            faults=FaultConfig(latency=(0.01, 0.02), seed=5),
        )
        store_path = tmp_path / "jobs.db"
        with CrawlCoordinator(
            [a.url, b.url], str(store_path), workers_per_backend=2
        ) as coordinator:
            _, body = post_json(
                f"{coordinator.url}/api/jobs",
                {"tenant": "quitter", "checkpoint_every": 1},
            )
            job_id = body["job_id"]
            deadline = time.time() + 30
            while time.time() < deadline:
                _, view = get_json(f"{coordinator.url}/api/jobs/{job_id}")
                if view.get("checkpoint", {}).get("billed", 0) >= 2:
                    break
                time.sleep(0.01)
            status, cancelled = delete(f"{coordinator.url}/api/jobs/{job_id}")
            assert status == 200
            final = wait_for_job(coordinator.url, job_id)
            assert final["status"] == "cancelled"
            session_id = final["session_id"]
        with CrawlStore(str(store_path)) as store:
            session = store.session(session_id)
            assert session is not None
            # Cancelled, not failed: the paid-for prefix stays resumable.
            assert session.status == "running"
            assert session.billed >= 2

    def test_cancel_unknown_job_404(self, coordinated):
        assert delete(f"{coordinated.url}/api/jobs/nope")[0] == 404


class TestRejections:
    def test_unknown_spec_field_400(self, coordinated):
        status, body = post_json(
            f"{coordinated.url}/api/jobs", {"budgit": 10}
        )
        assert status == 400
        assert body["error"] == "bad_request"
        assert "budgit" in body["message"]

    def test_unknown_algorithm_400(self, coordinated):
        status, body = post_json(
            f"{coordinated.url}/api/jobs", {"algorithm": "quantum"}
        )
        assert status == 400
        assert body["error"] == "bad_request"

    def test_pinned_fingerprint_mismatch_409(self, coordinated):
        status, body = post_json(
            f"{coordinated.url}/api/jobs",
            {"fingerprint": "deadbeefdeadbeef"},
        )
        assert status == 409
        assert body["error"] == "fingerprint_mismatch"

    def test_matching_pinned_fingerprint_accepted(self, coordinated):
        status, body = post_json(
            f"{coordinated.url}/api/jobs",
            {"fingerprint": coordinated.fingerprint, "budget": 1},
        )
        assert status == 201
        wait_for_job(coordinated.url, body["job_id"])

    def test_invalid_json_body_400(self, coordinated):
        import urllib.request

        request = urllib.request.Request(
            f"{coordinated.url}/api/jobs",
            data=b"not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_job_status_unknown_404(self, coordinated):
        assert get_json(f"{coordinated.url}/api/jobs/missing")[0] == 404
