"""Unit tests for the sharded endpoint pool (repro.coordinator.endpoints).

The load-bearing invariant throughout: because the paper bills a query
identically no matter which mirror answers it, a crawl fanned over an
:class:`EndpointSet` must issue the exact query set -- and therefore pay
the exact cost and discover the exact skyline -- of a single-backend run.
"""

import zlib

import pytest

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.coordinator import (
    BackendSpec,
    EndpointSet,
    EndpointSetError,
    ShardedStrategy,
)
from repro.datagen import diamonds_table
from repro.hiddendb import Interval, Query, QueryBudgetExceeded

from ..conftest import truth_values

K = 5
N = 400


@pytest.fixture
def table():
    return diamonds_table(N, seed=3)


@pytest.fixture
def reference(table):
    """The serial single-endpoint run every sharded run must reproduce."""
    return Discoverer().run(TopKInterface(table, k=K), "rq")


class TestBackendSpec:
    def test_parse_url_only(self):
        spec = BackendSpec.parse("http://db.example:8080")
        assert spec.url == "http://db.example:8080"
        assert spec.api_key is None

    def test_parse_url_with_key(self):
        spec = BackendSpec.parse("http://db.example:8080=tenant-key")
        assert spec.url == "http://db.example:8080"
        assert spec.api_key == "tenant-key"

    def test_parse_rejects_empty_url(self):
        with pytest.raises(ValueError):
            BackendSpec.parse("=justakey")


class TestIdentity:
    def test_empty_pool_rejected(self):
        with pytest.raises(EndpointSetError):
            EndpointSet(())

    def test_mismatched_fingerprints_rejected(self, table, mirrors):
        same, = mirrors(table, 1, k=K)
        other, = mirrors(table, 1, name="a-different-service", k=K)
        with pytest.raises(EndpointSetError, match="disagree"):
            EndpointSet([same.url, other.url])

    def test_pool_exposes_the_shared_identity(self, table, mirrors):
        a, b = mirrors(table, 2, k=K)
        with EndpointSet([a.url, b.url]) as pool:
            assert pool.size == 2
            assert pool.fingerprint == a.fingerprint == b.fingerprint
            assert pool.k == K
            assert pool.service_name == "mirrored-db"
            assert pool.schema.m == table.schema.m


class TestSharding:
    def test_shard_of_is_crc32_stable(self, table, mirrors):
        a, b = mirrors(table, 2, k=K)
        with EndpointSet([a.url, b.url]) as pool:
            for key in ("*", "r:0:1-5", "r:1:0-0|f:make=2"):
                assert pool.shard_of(key) == zlib.crc32(key.encode()) % 2
                # Stable across repeated calls (and, by construction,
                # across processes -- a resumed coordinator must route
                # each query back to the mirror whose replay cache has it).
                assert pool.shard_of(key) == pool.shard_of(key)

    def test_query_routes_to_home_backend(self, table, mirrors):
        a, b = mirrors(table, 2, k=K)
        with EndpointSet([a.url, b.url]) as pool:
            query = Query.select_all()
            home = pool.shard_of(query.canonical_key())
            pool.query(query)
            stats = pool.stats()
            assert stats[home]["issued"] == 1
            assert stats[1 - home]["issued"] == 0


class TestShardedParity:
    def test_two_backends_same_cost_and_skyline(
        self, table, reference, mirrors
    ):
        a, b = mirrors(table, 2, k=K)
        with EndpointSet([a.url, b.url]) as pool:
            strategy = ShardedStrategy(pool, workers_per_backend=2)
            result = Discoverer(DiscoveryConfig(strategy=strategy)).run(
                pool, "rq"
            )
        assert result.complete
        assert result.skyline_values == reference.skyline_values
        assert result.skyline_values == truth_values(table)
        assert result.total_cost == reference.total_cost
        assert result.stats.strategy == "sharded"
        # Both mirrors actually carried work: the whole point of sharding.
        shares = [entry["issued"] for entry in pool.stats()]
        assert all(share > 0 for share in shares)
        assert sum(shares) == reference.total_cost

    def test_three_backends_same_cost_and_skyline(
        self, table, reference, mirrors
    ):
        servers = mirrors(table, 3, k=K)
        with EndpointSet([s.url for s in servers]) as pool:
            result = Discoverer(
                DiscoveryConfig(strategy=ShardedStrategy(pool))
            ).run(pool, "rq")
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost


class TestWorkStealing:
    def test_exhausted_backend_spills_to_healthy_one(
        self, table, reference, mirrors
    ):
        # Mirror A can answer only a handful of queries before its key's
        # budget runs dry; the crawl must still complete at the exact
        # reference cost, with A's overflow stolen by B.
        budget_a = max(3, reference.total_cost // 10)
        a, b = mirrors(
            table, 2, k=K, budgets=[{"starved": budget_a}, None]
        )
        with EndpointSet([f"{a.url}=starved", b.url]) as pool:
            strategy = ShardedStrategy(pool, workers_per_backend=2)
            result = Discoverer(DiscoveryConfig(strategy=strategy)).run(
                pool, "rq"
            )
            stats = pool.stats()
        assert result.complete
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
        assert stats[0]["exhausted"]
        assert stats[0]["issued"] == budget_a
        assert stats[1]["stolen"] > 0

    def test_total_exhaustion_degrades_to_partial_result(
        self, table, reference, mirrors
    ):
        budget = max(2, reference.total_cost // 8)
        a, b = mirrors(
            table, 2, k=K,
            budgets=[{"ka": budget}, {"kb": budget}],
        )
        with EndpointSet([f"{a.url}=ka", f"{b.url}=kb"]) as pool:
            result = Discoverer(
                DiscoveryConfig(strategy=ShardedStrategy(pool))
            ).run(pool, "rq")
        # The standard anytime contract: a partial skyline, every billed
        # query accounted for, no hard failure.
        assert not result.complete
        assert result.skyline_values <= reference.skyline_values
        assert result.total_cost <= 2 * budget

    def test_direct_query_raises_once_everything_is_dry(self, table, mirrors):
        a, = mirrors(table, 1, k=K, budgets=[{"ka": 1}])
        with EndpointSet([f"{a.url}=ka"]) as pool:
            pool.query(Query.select_all())
            with pytest.raises(QueryBudgetExceeded):
                pool.query(Query({0: Interval(0, 0)}))


class TestTelemetry:
    def test_backend_status_reports_budget_headroom(self, table, mirrors):
        a, b = mirrors(table, 2, k=K, budgets=[{"ka": 10}, None])
        with EndpointSet([f"{a.url}=ka", b.url]) as pool:
            pool.query(Query.select_all())
            status = pool.backend_status()
        assert [entry["ok"] for entry in status] == [True, True]
        assert {entry["fingerprint"] for entry in status} == {pool.fingerprint}
        budgeted = status[0]
        assert budgeted["budget"] == 10
        assert budgeted["remaining"] == 10 - budgeted["issued"]
