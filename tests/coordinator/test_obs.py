"""Coordinator observability: /api/stats additions and /metrics scrape."""

from __future__ import annotations

import time
import urllib.request

import pytest

from repro.coordinator import CrawlCoordinator
from repro.datagen import diamonds_table

from ..conftest import parse_prometheus
from .conftest import get_json, post_json, wait_for_job

K = 5
N = 400


def get_text(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read().decode("utf-8"),
        )


@pytest.fixture
def table():
    return diamonds_table(N, seed=3)


@pytest.fixture
def coordinated(table, mirrors, tmp_path):
    a, b = mirrors(table, 2, k=K)
    coordinator = CrawlCoordinator(
        [a.url, b.url], str(tmp_path / "jobs.db"), workers_per_backend=2
    )
    with coordinator:
        yield coordinator


def run_one_job(coordinator, tenant="alice", **extra) -> tuple[str, dict]:
    _, body = post_json(
        f"{coordinator.url}/api/jobs", {"tenant": tenant, **extra}
    )
    job_id = body["job_id"]
    final = wait_for_job(coordinator.url, job_id)
    assert final["status"] == "finished", final.get("error")
    return job_id, final


class TestCoordinatorStats:
    def test_stats_route_reports_operational_counters(self, coordinated):
        job_id, final = run_one_job(coordinated, tenant="alice")
        status, body = get_json(f"{coordinated.url}/api/stats")
        assert status == 200
        assert body["name"] == "coordinator"
        assert body["uptime_s"] is not None and body["uptime_s"] >= 0
        # The stats request itself is still in flight while it is served.
        assert body["in_flight"] >= 1
        assert body["backends"] == 2
        assert body["jobs"].get("finished") == 1

        billed = final["result"]["total_cost"]
        assert body["queries_by_job"][job_id] == billed
        assert body["queries_by_tenant"]["alice"] == billed
        # Both mirrors carried part of the load.
        assert len(body["shards"]) == 2
        assert sum(body["shards"].values()) == billed

        # Request counters are per collapsed route: the polling loop hit
        # the job-status route at least once, via its :id template.
        assert body["requests"]["/api/jobs"] >= 1
        assert body["requests"]["/api/jobs/:id"] >= 1
        # Requests count on completion, so this scrape only shows up in a
        # later one (completion lands moments after the response body).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            _, again = get_json(f"{coordinated.url}/api/stats")
            if again["requests"].get("/api/stats"):
                break
            time.sleep(0.05)
        assert again["requests"]["/api/stats"] >= 1

    def test_two_tenants_tracked_separately(self, coordinated):
        _, first = run_one_job(coordinated, tenant="alice")
        _, second = run_one_job(coordinated, tenant="bob")
        _, body = get_json(f"{coordinated.url}/api/stats")
        alice = body["queries_by_tenant"]["alice"]
        bob = body["queries_by_tenant"]["bob"]
        # The counter tracks answered queries per tenant.  Both tenants
        # drive the identical deterministic workload, but bob's answers
        # replay out of the shared ledger, so his *bill* stays near zero
        # while his query counter matches alice's.
        assert alice == first["result"]["total_cost"]
        assert bob == alice
        assert second["result"]["total_cost"] <= max(1, alice // 20)


class TestCoordinatorMetricsRoute:
    def test_exposition_parses_and_covers_a_job(self, coordinated):
        job_id, final = run_one_job(
            coordinated, tenant="alice", checkpoint_every=1
        )
        status, content_type, text = get_text(f"{coordinated.url}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        families = parse_prometheus(text)

        billed = float(final["result"]["total_cost"])
        job_queries = families["coordinator_job_queries_total"]
        assert job_queries["type"] == "counter"
        assert job_queries["samples"][
            (
                "coordinator_job_queries_total",
                (("job", job_id), ("tenant", "alice")),
            )
        ] == billed

        jobs = families["coordinator_jobs"]
        assert jobs["type"] == "gauge"
        assert jobs["samples"][
            ("coordinator_jobs", (("status", "finished"),))
        ] == 1.0

        # The job checkpointed, so the scrape-time lag gauge has a
        # session series with a small non-negative value.
        lag = families["coordinator_checkpoint_lag_seconds"]["samples"]
        assert lag, "no checkpoint-lag series after a checkpointing job"
        assert all(value >= 0.0 for value in lag.values())

        # Observer-fed families land in the same scrape: shard routing
        # split the billed queries across both mirrors, and the store
        # recorded ledger activity plus the checkpoints.
        shard = families["repro_shard_queries_total"]["samples"]
        assert len(shard) == 2
        assert sum(shard.values()) == billed
        store_events = {
            dict(labels)["event"]: value
            for (_, labels), value in (
                families["repro_store_events_total"]["samples"].items()
            )
        }
        assert store_events.get("ledger_put", 0) >= 1
        assert store_events.get("checkpoint", 0) >= 1

        assert families["coordinator_requests_in_flight"]["type"] == "gauge"
        latency_free = "coordinator_requests_total"
        assert families[latency_free]["type"] == "counter"

    def test_work_steal_counter_declared(self, coordinated):
        # Steals are timing-dependent; the family must exist either way.
        _, _, text = get_text(f"{coordinated.url}/metrics")
        families = parse_prometheus(text)
        assert families["repro_work_steals_total"]["type"] == "counter"
