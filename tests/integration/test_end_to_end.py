"""End-to-end integration tests over the realistic workload generators.

These tests exercise the full pipeline -- generator -> schema/interface ->
discovery algorithm -> result verification -- at small but realistic scale,
including the paper's cross-cutting claims (filtering attributes are
harmless, the ranking function does not affect completeness, the dispatcher
handles every taxonomy the generators produce).
"""

import numpy as np
import pytest

from repro import (
    LinearRanker,
    Query,
    TopKInterface,
    baseline_skyline,
    discover,
    rq_db_skyband,
)
from repro.datagen import (
    autos_table,
    diamonds_table,
    flight_instance,
    flights_mixed_table,
    flights_pq_table,
    flights_range_table,
)


def _truth(table):
    return frozenset(
        tuple(int(v) for v in row)
        for row in table.matrix[table.skyline_indices()]
    )


class TestFlightsPipeline:
    def test_range_interface(self):
        table = flights_range_table(5000, 4, seed=3)
        result = discover(TopKInterface(table, k=10))
        assert result.complete
        assert result.skyline_values == _truth(table)

    def test_pq_interface(self):
        table = flights_pq_table(5000, 3, seed=3)
        result = discover(TopKInterface(table, k=10))
        assert result.skyline_values == _truth(table)

    def test_mixed_interface(self):
        table = flights_mixed_table(5000, 2, 2, seed=3)
        result = discover(TopKInterface(table, k=10))
        assert result.skyline_values == _truth(table)

    def test_filtering_condition_scopes_discovery(self):
        """Skyline subject to a filtering condition (§2.1): append the
        condition to every query and get the sub-database's skyline."""
        table = flights_range_table(5000, 3, seed=4)
        carrier = 5
        base = Query.select_all().and_filter("carrier", carrier)
        result = discover(TopKInterface(table, k=10))
        from repro.core import discover_rq

        scoped = discover_rq(TopKInterface(table, k=10), base_query=base)
        keep = [
            rid for rid in range(table.n)
            if table.filter_value("carrier", rid) == carrier
        ]
        sub_matrix = table.matrix[keep]
        from repro.core.dominance import skyline_indices

        sub_truth = frozenset(
            tuple(int(v) for v in sub_matrix[i])
            for i in skyline_indices(sub_matrix)
        )
        assert scoped.skyline_values == sub_truth
        # The scoped skyline is generally different from the global one.
        assert result.skyline_values != sub_truth


class TestMarketplacePipelines:
    def test_diamonds_price_ranking(self):
        table = diamonds_table(3000, seed=5)
        interface = TopKInterface(
            table, ranker=LinearRanker.single_attribute(0, 5), k=50
        )
        result = discover(interface)
        assert result.skyline_values == _truth(table)
        # The paper's headline: a few queries per discovered skyline tuple.
        assert result.total_cost <= 10 * result.skyline_size

    def test_autos_skyband_pipeline(self):
        table = autos_table(2000, seed=6)
        interface = TopKInterface(
            table, ranker=LinearRanker.single_attribute(0, 3), k=50
        )
        band = rq_db_skyband(interface, 2)
        truth = frozenset(
            tuple(int(v) for v in row)
            for row in table.matrix[table.skyband_indices(2)]
        )
        assert band.skyband_values == truth

    def test_gflights_within_quota(self):
        for seed in range(5):
            table = flight_instance(seed=seed)
            interface = TopKInterface(
                table, ranker=LinearRanker.single_attribute(1, 4), k=1
            )
            result = discover(interface)
            assert result.skyline_values == _truth(table)
            assert result.total_cost <= 50

    def test_baseline_agrees_with_discovery(self):
        # Discovery beats crawling in the paper's regime |S| << n; on tiny
        # tables where a fifth of the tuples are skyline, crawling can win.
        table = flights_range_table(8000, 4, seed=7)
        k = 20
        discovery = discover(TopKInterface(table, k=k))
        baseline = baseline_skyline(TopKInterface(table, k=k))
        assert discovery.skyline_values == baseline.skyline_values
        assert discovery.total_cost < baseline.total_cost


class TestCrossRankerAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_rankers_find_the_same_skyline(self, seed):
        """The skyline is ranking-independent; discovery must be too."""
        from repro.hiddendb import LexicographicRanker, RandomSkylineRanker

        table = flights_mixed_table(3000, 2, 1, seed=seed)
        results = set()
        for ranker in (
            LinearRanker(),
            LinearRanker.single_attribute(0, 3),
            LexicographicRanker([2, 0, 1]),
            RandomSkylineRanker(seed=seed),
        ):
            result = discover(TopKInterface(table, ranker=ranker, k=5))
            results.add(result.skyline_values)
        assert len(results) == 1
        assert results.pop() == _truth(table)


class TestScalability:
    def test_cost_decoupled_from_n(self):
        """The library's core promise: query cost tracks |S|, not n."""
        small = flights_range_table(2000, 4, seed=8)
        large = flights_range_table(40_000, 4, seed=8)
        cost_small = discover(TopKInterface(small, k=10)).total_cost
        cost_large = discover(TopKInterface(large, k=10)).total_cost
        assert cost_large < 100 * cost_small
        assert cost_large < large.n / 10  # nowhere near crawling
