"""Worked examples taken verbatim from the paper's text.

Each test encodes a concrete instance the paper walks through and checks
that our implementation behaves as the prose says it must.
"""

import pytest

from repro.core import (
    discover,
    discover_pq,
    discover_rq,
    discover_sq,
)
from repro.hiddendb import (
    InterfaceKind,
    LinearRanker,
    Query,
    TopKInterface,
)

from ..conftest import make_table

K = InterfaceKind


class TestFigure2RunningExample:
    """Figures 2/3/5: the 4-tuple, 3-attribute example database."""

    DATA = [(5, 1, 9), (4, 4, 8), (1, 3, 7), (3, 2, 3)]
    SKYLINE = {(5, 1, 9), (1, 3, 7), (3, 2, 3)}  # t1, t3, t4; t2 dominated by t4

    def test_t2_is_dominated_by_t4(self):
        from repro.core.dominance import dominates

        assert dominates((3, 2, 3), (4, 4, 8))

    @pytest.mark.parametrize("kind,algo", [
        (K.SQ, discover_sq), (K.RQ, discover_rq),
    ])
    def test_range_discovery(self, kind, algo):
        table = make_table(self.DATA, kinds=kind, domain=10)
        result = algo(TopKInterface(table, k=1))
        assert result.skyline_values == self.SKYLINE

    def test_rq_retrieves_each_skyline_tuple_exactly_once(self):
        """§4.1: with mutually exclusive branches 'every skyline tuple is
        returned by exactly one node in the tree'."""
        table = make_table(self.DATA, kinds=K.RQ, domain=10)
        interface = TopKInterface(table, k=1, record_log=True)
        result = discover_rq(interface)
        returns = [row.rid for answer in interface.log for row in answer.rows]
        for row in result.skyline:
            assert returns.count(row.rid) == 1


class TestSection3TreeExpansion:
    """§3.1: the root's children append A_i < t1[A_i] for each attribute."""

    def test_root_children_queries(self):
        table = make_table([(5, 1, 9), (4, 4, 8), (1, 3, 7), (3, 2, 3)],
                           kinds=K.SQ, domain=10)
        # Force t1 = (5, 1, 9) to be the root answer via a matching ranker.
        ranker = LinearRanker([0.1, 10.0, 0.1])
        interface = TopKInterface(table, ranker=ranker, k=1, record_log=True)
        discover_sq(interface)
        log = interface.log
        assert log[0].query == Query.select_all()
        assert log[0].top.values == (5, 1, 9)
        # The next three queries are exactly q2, q3, q4 of §3.1.
        expected = {
            Query.select_all().and_upper(0, 4),   # A1 < 5
            Query.select_all().and_upper(1, 0),   # A2 < 1
            Query.select_all().and_upper(2, 8),   # A3 < 9
        }
        assert {log[1].query, log[2].query, log[3].query} == expected


class TestSection52NegativeExample:
    """§5.2 / Figure 8: the 3-D, k = 2 instance showing 2-D queries can hide
    skyline tuples.  The database contains (1,1,1), (2,2,2), (2,0,0),
    (0,2,0), (0,0,2); its skyline is the four tuples besides (2,2,2)."""

    DATA = [(1, 1, 1), (2, 2, 2), (2, 0, 0), (0, 2, 0), (0, 0, 2)]
    SKYLINE = {(1, 1, 1), (2, 0, 0), (0, 2, 0), (0, 0, 2)}

    def test_ground_truth(self):
        table = make_table(self.DATA, kinds=K.PQ, domain=3)
        values = {
            tuple(int(v) for v in row)
            for row in table.matrix[table.skyline_indices()]
        }
        assert values == self.SKYLINE

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_pq_discovery_complete_despite_hidden_tuples(self, k):
        table = make_table(self.DATA, kinds=K.PQ, domain=3)
        result = discover_pq(TopKInterface(table, k=k))
        assert result.skyline_values == self.SKYLINE

    def test_three_query_oracle_plan_exists(self):
        """The paper's optimal plan: SELECT *, z = 0, and x = 0 AND y = 0
        retrieve every skyline tuple when k = 2.  The paper's assumed
        answers rely on per-query ranking functions (which §5.2 explicitly
        allows); under a single global order (2,2,2) can never outrank its
        dominators, so this test uses the closest consistent fixed-priority
        ranking -- implemented as a custom Ranker, the extension point real
        reproductions of quirky site rankings would use."""
        import numpy as np

        from repro.hiddendb.ranking import BoundRanker, Ranker
        from repro.hiddendb.ranking import is_domination_consistent_order

        class FixedPriorityRanker(Ranker):
            """Rank rows by an explicit rid priority list."""

            def __init__(self, priority):
                self._rank = {rid: pos for pos, rid in enumerate(priority)}

            def bind(self, table):
                rank = self._rank

                class Bound(BoundRanker):
                    def top(self, indices, k):
                        ordered = sorted(indices, key=lambda r: rank[int(r)])
                        return np.asarray(ordered[:k], dtype=np.int64)

                return Bound()

        table = make_table(self.DATA, kinds=K.PQ, domain=3)
        ranker = FixedPriorityRanker([0, 2, 3, 4, 1])
        order = ranker.bind(table).top(np.arange(table.n), table.n)
        assert is_domination_consistent_order(table.matrix, order)
        interface = TopKInterface(table, ranker=ranker, k=2)
        assert interface.query(Query.select_all()).rows[0].values == (1, 1, 1)
        retrieved = set()
        for query in (
            Query.select_all(),
            Query.from_point({2: 0}),
            Query.from_point({0: 0, 1: 0}),
        ):
            for row in interface.query(query).rows:
                retrieved.add(row.values)
        assert self.SKYLINE <= retrieved


class TestSection2InterfaceTaxonomy:
    """§2.2: the laptop-store motivation — memory as SQ, price as RQ."""

    def test_memory_rejects_lower_bound_price_accepts(self):
        table = make_table([(1, 1)], kinds=[K.SQ, K.RQ], domain=10)
        interface = TopKInterface(table, k=1)
        from repro.hiddendb import UnsupportedQueryError

        price_band = Query.select_all().and_lower(1, 3, 10)
        interface.query(price_band)  # two-ended: fine
        memory_floor = Query.select_all().and_lower(0, 3, 10)
        with pytest.raises(UnsupportedQueryError):
            interface.query(memory_floor)

    def test_le_and_lt_reducible(self):
        """§2.2: A <= v and A < v are interchangeable on integer domains."""
        table = make_table([(3,), (4,), (5,)], kinds=K.SQ, domain=10)
        interface = TopKInterface(table, k=5)
        le_4 = interface.query(Query.select_all().and_upper(0, 4))
        lt_5 = interface.query(Query.select_all().and_upper(0, 5 - 1))
        assert [r.rid for r in le_4.rows] == [r.rid for r in lt_5.rows]


class TestSection6MixedExample:
    """§6.1: discovering with ranges only misses range-dominated tuples;
    MQ's pruned point phase recovers them."""

    def test_mixed_discovery_recovers_range_dominated_tuple(self):
        # Range attribute A, point attribute B.  u = (2, 0) is dominated on
        # A by t0 = (1, 3) but beats it on B, so u is on the skyline.
        table = make_table([(1, 3), (2, 0), (4, 4)], kinds=[K.RQ, K.PQ],
                           domain=5)
        result = discover(TopKInterface(table, k=1))
        assert result.skyline_values == {(1, 3), (2, 0)}
        assert result.algorithm == "MQ-DB-SKY"
