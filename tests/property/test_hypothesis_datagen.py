"""Property-based tests for the dataset transforms."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datagen import rediscretize_domains, truncate_domains
from repro.hiddendb import Attribute, InterfaceKind, Schema, Table

tables = st.integers(min_value=1, max_value=3).flatmap(
    lambda m: st.lists(
        st.tuples(*([st.integers(min_value=0, max_value=9)] * m)),
        min_size=1,
        max_size=60,
    )
)


def _table(values) -> Table:
    m = len(values[0])
    schema = Schema(
        [Attribute(f"a{i}", 10, InterfaceKind.PQ) for i in range(m)]
    )
    return Table(schema, np.asarray(values, dtype=np.int64))


@settings(max_examples=60, deadline=None)
@given(values=tables, domain=st.integers(1, 12))
def test_truncate_keeps_only_best_values_and_preserves_order(values, domain):
    table = _table(values)
    truncated = truncate_domains(table, domain)
    # Domains shrink to at most `domain` and all values fit.
    for attribute in truncated.schema.ranking_attributes:
        assert attribute.domain_size <= max(domain, 1)
    if truncated.n:
        assert truncated.matrix.max() < domain
    # Surviving tuples correspond to original tuples whose values were all
    # among each column's `domain` most-preferred occupied values.
    kept_value_sets = []
    for column in range(table.m):
        occupied = np.unique(table.matrix[:, column])
        kept_value_sets.append(set(occupied[:domain].tolist()))
    expected_survivors = sum(
        1
        for row in table.matrix
        if all(int(row[c]) in kept_value_sets[c] for c in range(table.m))
    )
    assert truncated.n == expected_survivors


@settings(max_examples=60, deadline=None)
@given(values=tables, domain=st.integers(1, 12))
def test_rediscretize_preserves_tuples_and_order(values, domain):
    table = _table(values)
    bucketed = rediscretize_domains(table, domain)
    assert bucketed.n == table.n
    for column in range(table.m):
        original = table.matrix[:, column]
        new = bucketed.matrix[:, column]
        assert new.min() >= 0
        assert new.max() < domain
        # Order preservation: larger original value -> >= bucket.
        order = np.argsort(original, kind="stable")
        assert (np.diff(new[order]) >= 0).all()


@settings(max_examples=40, deadline=None)
@given(values=tables, domain=st.integers(1, 12))
def test_rediscretize_never_merges_across_dominance(values, domain):
    """Bucketing is monotone, so dominance can only be gained, not lost:
    the bucketed skyline size never exceeds the original's."""
    table = _table(values)
    bucketed = rediscretize_domains(table, domain)
    original_sky = len(
        {tuple(map(int, row))
         for row in table.matrix[table.skyline_indices()]}
    )
    bucketed_sky = len(
        {tuple(map(int, row))
         for row in bucketed.matrix[bucketed.skyline_indices()]}
    )
    assert bucketed_sky <= original_sky
