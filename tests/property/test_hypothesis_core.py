"""Property-based tests (hypothesis) for the core discovery invariants.

The central property of the whole paper: for *any* database, any
domination-consistent ranking function, any ``k`` and any interface
taxonomy, the matching discovery algorithm retrieves exactly the skyline
(as value vectors).  Hypothesis searches the instance space for
counterexamples far more adversarially than fixed seeds.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    baseline_skyline,
    discover,
    pq_db_skyband,
    rq_db_skyband,
)
from repro.core.dominance import dominates, skyline_indices
from repro.hiddendb import (
    InterfaceKind,
    LexicographicRanker,
    LinearRanker,
    RandomSkylineRanker,
    TopKInterface,
)

from ..conftest import make_table, truth_band_values, truth_values

K = InterfaceKind

# Small instances explore the combinatorics; the fixed-seed tests cover bulk.
matrices = st.integers(min_value=1, max_value=4).flatmap(
    lambda m: st.lists(
        st.tuples(*([st.integers(min_value=0, max_value=5)] * m)),
        min_size=0,
        max_size=40,
    )
)

kinds_for = {
    "sq": lambda m: [K.SQ] * m,
    "rq": lambda m: [K.RQ] * m,
    "pq": lambda m: [K.PQ] * m,
    "mixed": lambda m: [(K.RQ, K.PQ, K.SQ)[i % 3] for i in range(m)],
}


def _run_discovery(values, taxonomy, k, ranker):
    if not values:
        return None
    table = make_table(values, kinds=kinds_for[taxonomy](len(values[0])),
                       domain=6)
    interface = TopKInterface(table, ranker=ranker, k=k)
    result = discover(interface)
    assert result.complete
    assert result.skyline_values == truth_values(table)
    return result


@settings(max_examples=60, deadline=None)
@given(values=matrices, k=st.integers(1, 4),
       taxonomy=st.sampled_from(["sq", "rq", "pq", "mixed"]))
def test_discovery_finds_exactly_the_skyline(values, k, taxonomy):
    _run_discovery(values, taxonomy, k, LinearRanker())


@settings(max_examples=40, deadline=None)
@given(values=matrices, taxonomy=st.sampled_from(["sq", "rq", "pq", "mixed"]),
       seed=st.integers(0, 1000))
def test_discovery_under_random_skyline_ranker(values, taxonomy, seed):
    _run_discovery(values, taxonomy, 1, RandomSkylineRanker(seed=seed))


@settings(max_examples=40, deadline=None)
@given(values=matrices, taxonomy=st.sampled_from(["sq", "rq", "pq", "mixed"]))
def test_discovery_under_lexicographic_ranker(values, taxonomy):
    if values:
        m = len(values[0])
        ranker = LexicographicRanker(list(reversed(range(m))))
        _run_discovery(values, taxonomy, 2, ranker)


@settings(max_examples=50, deadline=None)
@given(values=matrices, k=st.integers(1, 4))
def test_anytime_trace_is_monotone_and_sound(values, k):
    if not values:
        return
    table = make_table(values, kinds=K.RQ, domain=6)
    result = discover(TopKInterface(table, k=k))
    truth = truth_values(table)
    costs = [entry.cost for entry in result.trace]
    assert costs == sorted(costs)
    for entry in result.trace:
        assert entry.row.values in truth


@settings(max_examples=40, deadline=None)
@given(values=matrices, k=st.integers(2, 5))
def test_baseline_crawl_retrieves_skyline(values, k):
    if not values:
        return
    table = make_table(values, kinds=K.RQ, domain=6)
    result = baseline_skyline(TopKInterface(table, k=k))
    assert result.skyline_values == truth_values(table)


@settings(max_examples=40, deadline=None)
@given(values=matrices)
def test_skyline_oracle_members_are_mutually_non_dominating(values):
    if not values:
        return
    matrix = np.asarray(values)
    indices = skyline_indices(matrix)
    sky = matrix[indices]
    for i in range(len(sky)):
        for j in range(len(sky)):
            if i != j:
                assert not dominates(sky[i], sky[j])


@settings(max_examples=40, deadline=None)
@given(values=matrices)
def test_every_non_skyline_tuple_is_dominated_by_a_skyline_tuple(values):
    if not values:
        return
    matrix = np.asarray(values)
    indices = set(skyline_indices(matrix).tolist())
    sky = matrix[sorted(indices)]
    for position in range(len(matrix)):
        if position not in indices:
            assert any(dominates(s, matrix[position]) for s in sky)


# Distinct-vector instances for skyband (duplicates make band membership
# unobservable through a top-k interface; see DESIGN.md).
distinct_matrices = st.integers(min_value=2, max_value=3).flatmap(
    lambda m: st.sets(
        st.tuples(*([st.integers(min_value=0, max_value=4)] * m)),
        min_size=1,
        max_size=25,
    ).map(sorted)
)


@settings(max_examples=40, deadline=None)
@given(values=distinct_matrices, band=st.integers(1, 3), k=st.integers(1, 4))
def test_rq_skyband_matches_ground_truth(values, band, k):
    table = make_table(values, kinds=K.RQ, domain=5)
    result = rq_db_skyband(TopKInterface(table, k=k), band)
    assert result.skyband_values == truth_band_values(table, band)


@settings(max_examples=40, deadline=None)
@given(values=distinct_matrices, band=st.integers(1, 3), k=st.integers(1, 4))
def test_pq_skyband_matches_ground_truth(values, band, k):
    table = make_table(values, kinds=K.PQ, domain=5)
    result = pq_db_skyband(TopKInterface(table, k=k), band)
    assert result.skyband_values == truth_band_values(table, band)
