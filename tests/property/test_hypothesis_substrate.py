"""Property-based tests for the hidden-database substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.analysis import (
    binomial_cost_bound,
    expected_cost_closed_form,
    expected_cost_recurrence,
    pq_2d_cost,
)
from repro.hiddendb import Interval, LinearRanker, Query, TopKInterface
from repro.hiddendb.ranking import is_domination_consistent_order

from ..conftest import make_table

intervals = st.tuples(
    st.integers(0, 9), st.integers(0, 9)
).map(lambda pair: Interval(min(pair), max(pair)))


@settings(max_examples=100, deadline=None)
@given(a=intervals, b=intervals)
def test_interval_intersection_is_commutative_and_tight(a, b):
    left = a.intersect(b)
    right = b.intersect(a)
    assert left == right
    for value in range(10):
        expected = a.contains(value) and b.contains(value)
        got = left is not None and left.contains(value)
        assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    bounds=st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from(["upper", "lower", "point"]),
                  st.integers(0, 5)),
        max_size=6,
    ),
    value=st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
)
def test_query_refinement_matches_predicate_semantics(bounds, value):
    """A refined query matches a vector iff every applied predicate holds."""
    query: Query | None = Query.select_all()
    applied: list[tuple[int, str, int]] = []
    for attribute, op, v in bounds:
        if query is None:
            break
        if op == "upper":
            refined = query.and_upper(attribute, v)
        elif op == "lower":
            refined = query.and_lower(attribute, v, 6)
        else:
            refined = query.and_point(attribute, v)
        if refined is not None:
            query = refined
            applied.append((attribute, op, v))
        # Unsatisfiable refinements are skipped: the prior query stands.
    assert query is not None
    expected = all(
        (value[a] <= v if op == "upper" else
         value[a] >= v if op == "lower" else value[a] == v)
        for a, op, v in applied
    )
    assert query.matches_values(value) == expected


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=30
    ),
    weights=st.tuples(st.floats(0, 5), st.floats(0, 5)),
)
def test_linear_ranker_is_domination_consistent(values, weights):
    table = make_table(values, domain=6)
    order = LinearRanker(list(weights)).bind(table).top(
        np.arange(table.n), table.n
    )
    assert is_domination_consistent_order(table.matrix, order)


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=30
    ),
    k=st.integers(1, 5),
)
def test_interface_answer_is_a_top_k_prefix(values, k):
    """The answer to a query equals the first k of the full ranking."""
    table = make_table(values, domain=6) if values else None
    if table is None:
        return
    interface = TopKInterface(table, k=k)
    answer = interface.query(Query.select_all())
    full_order = LinearRanker().bind(table).top(np.arange(table.n), table.n)
    assert [row.rid for row in answer.rows] == full_order[:k].tolist()
    assert answer.overflow == (len(answer.rows) == k)


@settings(max_examples=60, deadline=None)
@given(m=st.integers(2, 6), s=st.integers(0, 40))
def test_analysis_identities(m, s):
    recurrence = expected_cost_recurrence(m, s)
    if s > 0:
        assert recurrence == expected_cost_closed_form(m, s) + 1
    assert recurrence <= binomial_cost_bound(m, s) + 1


@settings(max_examples=50, deadline=None)
@given(
    xs=st.sets(st.integers(0, 9), min_size=0, max_size=8).map(sorted),
    dom=st.just(10),
)
def test_pq_2d_cost_nonnegative_and_bounded(xs, dom):
    """Eq. (11) over anti-diagonal skylines stays within min-side bounds."""
    skyline = [(x, dom - 1 - x) for x in xs]
    cost = pq_2d_cost(skyline, dom, dom)
    assert cost >= 0
    if skyline:
        assert cost <= min(x + y for x, y in skyline)
    else:
        assert cost == dom - 1
