"""Crash/resume parity: the durable crawl acceptance suite.

Every registered algorithm, in-process and over the wire, serial and
pipelined, is killed after N answers and resumed from the store.  The
resumed run must reproduce the uninterrupted run's skyline at no more
than its billed cost (exactly its cost in the serial case), and a warm
re-run over an unchanged endpoint must bill zero queries.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import CrawlStore, Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface

from ..conftest import parity_run_params

K = 5

#: Materialised once: the same parameter list feeds both the in-process
#: and the remote variant of the parity class below.
ALGORITHM_PARAMS = list(parity_run_params())

#: Execution shapes the crash/resume contract is pinned under: the serial
#: reference, the thread-pool plane and the asyncio plane.
EXECUTION_PARAMS = [
    pytest.param(dict(strategy="serial", workers=1), id="serial"),
    pytest.param(dict(strategy="pipelined", workers=4), id="pipelined"),
    pytest.param(dict(strategy="async", workers=4), id="async"),
]


class SimulatedCrash(Exception):
    """Stand-in for a mid-run process death (raised from on_query)."""


def _crash_config(store, execution: dict, crash_after: int) -> DiscoveryConfig:
    state = {"seen": 0}

    def bomb(_result) -> None:
        state["seen"] += 1
        if state["seen"] >= crash_after:
            raise SimulatedCrash

    return DiscoveryConfig(store=store, on_query=bomb, **execution)


def _assert_crash_resume_parity(make_interface, algorithm, execution):
    """The shared body: uninterrupted vs crash+resume vs warm re-run."""
    reference = Discoverer(
        DiscoveryConfig(store=CrawlStore.memory(), **execution)
    ).run(make_interface(), algorithm)

    store = CrawlStore.memory()
    crash_after = max(1, reference.total_cost // 2)
    with pytest.raises(SimulatedCrash):
        Discoverer(_crash_config(store, execution, crash_after)).run(
            make_interface(), algorithm
        )
    crashed = store.sessions()[0]
    assert crashed.status == "running"
    assert 0 < crashed.billed

    resumed = Discoverer(
        DiscoveryConfig(store=store, resume=True, **execution)
    ).run(make_interface(), algorithm)
    assert resumed.skyline_values == reference.skyline_values
    assert resumed.complete == reference.complete
    assert resumed.stats.ledger_hits > 0  # the paid-for prefix replayed free
    # The crawl never pays more than an uninterrupted run; serially the
    # replay is exact, so the cumulative billed cost is identical.
    assert resumed.total_cost <= reference.total_cost
    if execution.get("workers", 1) == 1:
        assert resumed.total_cost == reference.total_cost
    assert store.sessions()[0].status == "finished"

    warm = Discoverer(DiscoveryConfig(store=store, **execution)).run(
        make_interface(), algorithm
    )
    assert warm.total_cost == 0
    assert warm.stats.issued == 0
    assert warm.skyline_values == reference.skyline_values


@pytest.mark.parametrize("execution", EXECUTION_PARAMS)
@pytest.mark.parametrize("algorithm,table", ALGORITHM_PARAMS)
class TestCrashResumeParity:
    def test_in_process(self, algorithm, table, execution):
        _assert_crash_resume_parity(
            lambda: TopKInterface(table, k=K, name=f"parity-{algorithm}"),
            algorithm,
            execution,
        )

    def test_remote(self, algorithm, table, execution):
        with HiddenDBServer(table, k=K, name=f"parity-{algorithm}") as server:
            _assert_crash_resume_parity(
                lambda: _remote_for(server, execution),
                algorithm,
                execution,
            )


def _remote_for(server, execution: dict):
    """The client flavour each execution shape is meant to drive."""
    if execution.get("strategy") == "async":
        from repro.service import AsyncRemoteTopKInterface

        return AsyncRemoteTopKInterface(server.url)
    return RemoteTopKInterface(server.url)


class TestSkybandResume:
    def test_skyband_warm_rerun_is_free(self):
        table = diamonds_table(300, seed=4)
        store = CrawlStore.memory()
        cold = Discoverer(DiscoveryConfig(store=store)).skyband(
            TopKInterface(table, k=K, name="d300"), 2
        )
        warm = Discoverer(DiscoveryConfig(store=store)).skyband(
            TopKInterface(table, k=K, name="d300"), 2
        )
        assert warm.skyband_values == cold.skyband_values
        assert warm.total_cost == 0
        assert warm.stats.ledger_hits > 0
        catalog = store.catalog()
        assert {entry.algorithm for entry in catalog} == {"rq:skyband"}
        assert catalog[0].result["band"] == 2


class TestLedgerBilling:
    def test_in_window_duplicates_bill_once(self):
        """Dedup off + ledger mounted: an identical query dispatched while
        its twin is still in flight must resolve from the ledger at merge
        time -- pipelined and async exactly like serial (the shared drain
        core owns this rule for every strategy)."""
        from repro.core.base import DiscoverySession
        from repro.core.engine import (
            AsyncStrategy,
            PipelinedStrategy,
            SerialStrategy,
        )
        from repro.hiddendb import Query

        table = diamonds_table(200, seed=1)
        query = Query.select_all().and_upper(0, 3)
        for strategy in (
            SerialStrategy(),
            PipelinedStrategy(workers=4),
            AsyncStrategy(workers=4),
        ):
            store = CrawlStore.memory()
            session = DiscoverySession(
                TopKInterface(table, k=K, name="dup"),
                strategy=strategy,
                dedup=False,
            )
            session.attach_store(store, algorithm="dup")
            frontier = session.frontier()
            frontier.add(query)
            frontier.add(query)
            frontier.drain()
            stats = session.engine_stats
            assert stats.issued == 1, strategy.name
            assert stats.ledger_hits == 1, strategy.name
            assert store.sessions()[0].billed == 1, strategy.name

    def test_skyline_tracker_stays_distinct_under_ties(self):
        """Rows tying an existing skyline vector must not bloat the
        incremental tracker (one copy represents them all)."""
        from repro.core.base import DiscoverySession
        from repro.hiddendb import Row

        from ..conftest import make_table

        table = make_table([(1, 2), (1, 2), (1, 2), (2, 1)], domain=5)
        session = DiscoverySession(TopKInterface(table, k=4, name="ties"))
        session.attach_store(CrawlStore.memory(), algorithm="ties")
        for rid in range(8):
            session._track_skyline(Row(rid, (1, 2)))
        session._track_skyline(Row(99, (2, 1)))
        assert session._sky_values.shape[0] == 2
        assert {tuple(v) for v in session._skyline_snapshot()} == {
            (1, 2), (2, 1)
        }

    def test_different_rankers_never_share_a_ledger(self):
        """The endpoint fingerprint pins the ranking function: same table,
        different ranker, same store -> refusal, not a stale replay."""
        from repro import LinearRanker, StoreMismatchError

        table = diamonds_table(100, seed=1)
        store = CrawlStore.memory()
        Discoverer(DiscoveryConfig(store=store)).run(
            TopKInterface(table, k=K, name="d100")
        )
        price = LinearRanker.single_attribute(0, table.schema.m)
        with pytest.raises(StoreMismatchError):
            Discoverer(DiscoveryConfig(store=store)).run(
                TopKInterface(table, ranker=price, k=K, name="d100")
            )

    def test_replay_nonce_cleared_after_durable_run(self):
        """A finished durable run must not leave its deterministic request
        ids on the shared client: later plain runs have to bill repeats."""
        table = diamonds_table(100, seed=2)
        with HiddenDBServer(table, k=K, name="d100") as server:
            client = RemoteTopKInterface(server.url, api_key="shared")
            Discoverer(DiscoveryConfig(store=CrawlStore.memory())).run(client)
            assert client._replay_nonce is None
            # A repeated query on the plain client is billed again (random
            # ids), keeping parity/benchmark accounting honest.
            from repro.hiddendb import Query

            before = server.stats().usage("shared").issued
            client.query(Query.select_all())
            client.query(Query.select_all())
            assert server.stats().usage("shared").issued == before + 2

    def test_replay_nonce_cleared_when_durable_run_crashes(self):
        """The nonce is dropped even when the run dies with an arbitrary
        exception (not just budget exhaustion)."""
        table = diamonds_table(100, seed=2)
        with HiddenDBServer(table, k=K, name="d100") as server:
            client = RemoteTopKInterface(server.url)
            with pytest.raises(SimulatedCrash):
                Discoverer(
                    _crash_config(CrawlStore.memory(), {"workers": 1}, 2)
                ).run(client)
            assert client._replay_nonce is None


class TestClientLedger:
    """The remote client's durable never-billed cache (ledger mount)."""

    def test_ledger_survives_client_restarts(self):
        table = diamonds_table(250, seed=2)
        with HiddenDBServer(table, k=K, name="d250") as server:
            store = CrawlStore.memory()
            probe = RemoteTopKInterface(server.url)
            fingerprint = store.register_endpoint(
                probe.schema, probe.k, probe.service_name
            )
            ledger = store.ledger(fingerprint)

            first = RemoteTopKInterface(server.url, ledger=ledger)
            cold = Discoverer().run(first)
            billed = server.stats().queries_total
            assert billed == cold.total_cost > 0

            # A brand-new client (fresh process, RAM cache empty) answers
            # everything from the ledger: nothing billed anywhere.
            second = RemoteTopKInterface(server.url, ledger=ledger)
            warm = Discoverer().run(second)
            assert warm.skyline_values == cold.skyline_values
            assert warm.total_cost == 0
            assert second.queries_issued == 0
            assert second.ledger_hits == cold.total_cost
            assert second.cache_hits == cold.total_cost
            assert server.stats().queries_total == billed

    def test_replay_nonce_makes_reissues_free(self):
        from repro.hiddendb import Query

        table = diamonds_table(100, seed=2)
        with HiddenDBServer(table, k=K) as server:
            client = RemoteTopKInterface(
                server.url, api_key="nonced", replay_nonce="resume-nonce"
            )
            first = client.query(Query.select_all())
            again = client.query(Query.select_all())
            assert again.rows == first.rows
            # Same nonce + same canonical key -> same X-Request-Id: the
            # server replays the billed answer instead of charging twice.
            assert server.stats().usage("nonced").issued == 1


class TestSigkillAcceptance:
    """Acceptance: SIGKILL a pipelined remote crawl, resume, pay <= once."""

    def test_sigkill_mid_crawl_then_resume(self, tmp_path):
        table = diamonds_table(1200, seed=2)
        reference = Discoverer().run(TopKInterface(table, k=10), "baseline")

        db = tmp_path / "crawl.db"
        faults = FaultConfig(latency=(0.002, 0.004), seed=7)
        with HiddenDBServer(
            table, k=10, name="diamonds-sigkill", faults=faults
        ) as server:
            repo_root = Path(__file__).resolve().parents[2]
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                str(repo_root / "src")
                + os.pathsep
                + env.get("PYTHONPATH", "")
            ).rstrip(os.pathsep)
            child = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "crawl",
                    "--url", server.url, "--store", str(db),
                    "--algorithm", "baseline",
                    "--workers", "4", "--batch-size", "8",
                    "--checkpoint-every", "16",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                # Wait for real progress (ledgered answers), then kill -9.
                deadline = time.time() + 60
                store = CrawlStore(db)
                while time.time() < deadline:
                    if store.ledger_size() >= 40:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("crawl subprocess made no ledger progress")
                os.kill(child.pid, signal.SIGKILL)
            finally:
                child.wait(timeout=30)
            store.close()

            store = CrawlStore(db)
            prefix = store.ledger_size()
            assert 0 < prefix < reference.total_cost
            assert store.sessions()[0].status == "running"

            resumed = Discoverer(
                DiscoveryConfig(
                    store=store, resume=True, workers=4, batch_size=8
                )
            ).run(RemoteTopKInterface(server.url), "baseline")

            assert resumed.complete
            assert resumed.skyline_values == reference.skyline_values
            assert resumed.stats.ledger_hits >= prefix
            # Zero double billing: everything the dead crawl paid for was
            # either ledgered (replayed from the store) or replayed free
            # by the server under the session's deterministic request ids,
            # so the total server-side bill across both incarnations never
            # exceeds the uninterrupted cost.
            assert server.stats().queries_total <= reference.total_cost
            assert resumed.total_cost <= reference.total_cost

            # Warm re-run over the unchanged endpoint: zero new billing.
            billed_before = server.stats().queries_total
            warm = Discoverer(DiscoveryConfig(store=store, workers=4)).run(
                RemoteTopKInterface(server.url), "baseline"
            )
            assert warm.total_cost == 0
            assert warm.skyline_values == reference.skyline_values
            assert server.stats().queries_total == billed_before
