"""Versioned-ledger semantics of the durable crawl store.

The freshness plane stamps every ledger entry with the endpoint data
version (epoch) it was billed at, plus an optional TTL.  These tests pin
the store-level contract: epoch-pinned reads miss on stale entries,
revalidation re-stamps without re-billing, the stale accounting that
``repro store show`` surfaces, the gc sweeps (and their ``--dry-run``),
and the in-place migration of a version-1 store file.
"""

import sqlite3
import time

import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    Query,
    QueryResult,
    Row,
    Schema,
)
from repro.store import CrawlStore, StoreError


def _schema(m: int = 2, domain: int = 10) -> Schema:
    return Schema(
        [Attribute(f"a{i}", domain, InterfaceKind.RQ) for i in range(m)]
    )


def _answer(query: Query, *rows) -> QueryResult:
    return QueryResult(
        query=query,
        rows=tuple(Row(rid, values) for rid, values in rows),
        overflow=len(rows) >= 2,
        sequence=1,
    )


def _q(hi: int) -> Query:
    return Query({0: Interval(0, hi)})


class TestEpochStamps:
    def test_epoch_pinned_get_misses_on_stale_entries(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        store.ledger(fp, epoch=0).put(_q(3), _answer(_q(3), (1, (1, 1))))
        # Unpinned read still serves it; pinned to the new epoch it is
        # a miss, never a wrong answer.
        assert store.ledger_get(fp, _q(3)) is not None
        assert store.ledger_get(fp, _q(3), epoch=0) is not None
        assert store.ledger_get(fp, _q(3), epoch=1) is None

    def test_view_defaults_to_registered_data_version(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d", data_version=2)
        assert store.endpoint_data_version(fp) == 2
        view = store.ledger(fp)
        view.put(_q(3), _answer(_q(3), (1, (1, 1))))
        assert [e.epoch for e in store.ledger_entries(fp)] == [2]
        assert view.get(_q(3)) is not None
        # A later view at epoch 3 must not see the epoch-2 answer.
        assert store.ledger(fp, epoch=3).get(_q(3)) is None

    def test_data_version_is_monotonic(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d", data_version=4)
        store.set_endpoint_data_version(fp, 6)
        assert store.endpoint_data_version(fp) == 6
        store.set_endpoint_data_version(fp, 2)  # regressions ignored
        assert store.endpoint_data_version(fp) == 6
        assert store.endpoint_data_version("deadbeef") == 0

    def test_histogram_and_stale_count(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        for hi in range(3):
            store.ledger(fp, epoch=0).put(_q(hi), _answer(_q(hi)))
        store.ledger(fp, epoch=2).put(_q(5), _answer(_q(5)))
        assert store.ledger_epoch_histogram(fp) == {0: 3, 2: 1}
        store.set_endpoint_data_version(fp, 2)
        assert store.ledger_stale_count(fp) == 3
        assert store.ledger_stale_count(fp, epoch=0) == 1

    def test_bump_epoch_restamps_without_rebilling(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        record = store.begin_session(fp, "rq")
        ledger = store.ledger(fp, record.session_id, epoch=0)
        for hi in range(3):
            ledger.put(_q(hi), _answer(_q(hi)))
        store.set_endpoint_data_version(fp, 1)
        promoted = store.ledger_bump_epoch(
            fp, [_q(0).canonical_key(), _q(2).canonical_key()], 1
        )
        assert promoted == 2
        assert store.ledger_epoch_histogram(fp) == {0: 1, 1: 2}
        assert store.ledger_stale_count(fp) == 1
        # Re-stamping is not billing: the session paid for 3 queries.
        assert store.session(record.session_id).billed == 3
        assert store.ledger_bump_epoch(fp, [], 1) == 0

    def test_ledger_entries_filter_by_epoch(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        store.ledger(fp, epoch=0).put(_q(1), _answer(_q(1)))
        store.ledger(fp, epoch=1).put(_q(2), _answer(_q(2)))
        assert len(store.ledger_entries(fp)) == 2
        only = store.ledger_entries(fp, epoch=1)
        assert [e.qkey for e in only] == [_q(2).canonical_key()]


class TestTtl:
    def test_expired_entry_reads_as_a_miss(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        store.ledger(fp, ttl_s=1000.0).put(_q(3), _answer(_q(3)))
        assert store.ledger_get(fp, _q(3)) is not None
        store._conn.execute(
            "UPDATE ledger SET expires_at=?", (time.time() - 1,)
        )
        assert store.ledger_get(fp, _q(3)) is None
        assert store.ledger_stale_count(fp) == 1

    def test_no_ttl_never_expires(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        store.ledger(fp).put(_q(3), _answer(_q(3)))
        entry = store.ledger_entries(fp)[0]
        assert entry.expires_at is None
        assert store.ledger_stale_count(fp) == 0


class TestGcFreshnessSweeps:
    def seeded(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        store.ledger(fp, epoch=0).put(_q(1), _answer(_q(1)))
        store.ledger(fp, epoch=1).put(_q(2), _answer(_q(2)))
        store.ledger(fp, epoch=1, ttl_s=1000.0).put(_q(3), _answer(_q(3)))
        store._conn.execute(
            "UPDATE ledger SET expires_at=? WHERE qkey=?",
            (time.time() - 1, _q(3).canonical_key()),
        )
        store.set_endpoint_data_version(fp, 1)
        return store, fp

    def test_gc_splits_stale_and_expired(self):
        store, fp = self.seeded()
        report = store.gc()
        assert report.stale_pruned == 1
        assert report.expired_pruned == 1
        assert report.ledger_pruned == 0  # no orphans involved
        assert report.total == 2
        assert not report.dry_run
        assert store.ledger_size(fp) == 1
        assert store.ledger_stale_count(fp) == 0

    def test_dry_run_reports_without_deleting(self):
        store, fp = self.seeded()
        report = store.gc(dry_run=True)
        assert report.dry_run
        assert report.stale_pruned == 1 and report.expired_pruned == 1
        assert store.ledger_size(fp) == 3
        # The real sweep afterwards removes exactly what was predicted.
        assert store.gc().total == report.total

    def test_current_epoch_entries_survive(self):
        store, fp = self.seeded()
        store.gc()
        kept = store.ledger_entries(fp)
        assert [e.qkey for e in kept] == [_q(2).canonical_key()]
        assert kept[0].epoch == 1


class TestMigration:
    V1_DOWNGRADE = (
        "ALTER TABLE endpoints DROP COLUMN data_version",
        "ALTER TABLE ledger DROP COLUMN epoch",
        "ALTER TABLE ledger DROP COLUMN expires_at",
        "PRAGMA user_version=1",
    )

    def downgraded(self, tmp_path):
        """A populated version-1 store file, as an old build wrote it."""
        path = tmp_path / "old.db"
        with CrawlStore(path) as store:
            fp = store.register_endpoint(_schema(), 5, "d")
            store.ledger(fp).put(_q(3), _answer(_q(3), (1, (1, 1))))
        conn = sqlite3.connect(path)
        for statement in self.V1_DOWNGRADE:
            conn.execute(statement)
        conn.execute(
            "DELETE FROM store_meta WHERE key IN "
            "('schema_version', 'migrated_from')"
        )
        conn.commit()
        conn.close()
        return path, fp

    def test_v1_store_migrates_in_place(self, tmp_path):
        path, fp = self.downgraded(tmp_path)
        with CrawlStore(path) as store:
            assert store.schema_version() == 2
            row = store._conn.execute(
                "SELECT value FROM store_meta WHERE key='migrated_from'"
            ).fetchone()
            assert row == ("1",)
            # Old entries surface at epoch 0 with no TTL: servable, and
            # counted stale as soon as the endpoint reports a version.
            entry = store.ledger_entries(fp)[0]
            assert entry.epoch == 0 and entry.expires_at is None
            assert store.ledger_get(fp, _q(3)).rows[0].values == (1, 1)
            assert store.endpoint_data_version(fp) == 0

    def test_migrated_store_reopens_quietly(self, tmp_path):
        path, fp = self.downgraded(tmp_path)
        CrawlStore(path).close()
        with CrawlStore(path) as store:
            assert store.schema_version() == 2
            assert store.ledger_size(fp) == 1

    def test_future_version_still_refused(self, tmp_path):
        path = tmp_path / "future.db"
        CrawlStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.close()
        with pytest.raises(StoreError, match="layout version 99"):
            CrawlStore(path)
