"""Unit tests for the durable crawl store (repro.store.crawlstore)."""

import numpy as np
import pytest

from repro.hiddendb import (
    Attribute,
    InterfaceKind,
    Interval,
    Query,
    QueryResult,
    Row,
    Schema,
    query_fingerprint,
    query_key,
)
from repro.store import (
    CrawlStore,
    StoreMismatchError,
    endpoint_fingerprint,
)


def _schema(m: int = 2, domain: int = 10) -> Schema:
    return Schema(
        [Attribute(f"a{i}", domain, InterfaceKind.RQ) for i in range(m)]
    )


def _answer(query: Query, *rows) -> QueryResult:
    return QueryResult(
        query=query,
        rows=tuple(Row(rid, values) for rid, values in rows),
        overflow=len(rows) >= 2,
        sequence=1,
    )


class TestCanonicalKey:
    """Satellite: one canonical query-key scheme for every layer."""

    def test_identical_queries_share_a_key(self):
        a = Query({0: Interval(1, 5), 2: Interval(3, 3)}, {"make": 2})
        b = Query({2: Interval(3, 3), 0: Interval(1, 5)}, {"make": 2})
        assert a.canonical_key() == b.canonical_key()
        assert query_key(a) == query_key(b)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_numpy_and_float_normalisation(self):
        # The historical failure mode: three layers each stringifying
        # values their own way, disagreeing on np.int64 vs int vs 3.0.
        plain = Query({0: Interval(1, 5)}, {"make": 2})
        numpy_built = Query(
            {int(np.int64(0)): Interval(np.int64(1), np.int64(5))},
            {"make": np.int64(2)},
        )
        floaty = Query({0: Interval(1.0, 5.0)}, {"make": 2.0})
        assert plain.canonical_key() == numpy_built.canonical_key()
        assert plain.canonical_key() == floaty.canonical_key()

    def test_different_queries_differ(self):
        assert (
            Query({0: Interval(0, 4)}).canonical_key()
            != Query({0: Interval(0, 5)}).canonical_key()
        )
        assert (
            Query({0: Interval(1, 1)}).canonical_key()
            != Query({1: Interval(1, 1)}).canonical_key()
        )

    def test_select_all_key(self):
        assert Query.select_all().canonical_key() == "*"


class TestEndpointRegistration:
    def test_fingerprint_pins_schema_k_and_name(self):
        schema = _schema()
        base = endpoint_fingerprint(schema, 5, "d")
        assert endpoint_fingerprint(schema, 5, "d") == base
        assert endpoint_fingerprint(schema, 6, "d") != base
        assert endpoint_fingerprint(schema, 5, "other") != base
        assert endpoint_fingerprint(_schema(3), 5, "d") != base

    def test_reregistration_is_idempotent(self):
        store = CrawlStore.memory()
        fp1 = store.register_endpoint(_schema(), 5, "d")
        fp2 = store.register_endpoint(_schema(), 5, "d")
        assert fp1 == fp2
        assert len(store.endpoints()) == 1

    def test_second_endpoint_refused_without_allow_new(self):
        # Satellite: --store refuses a ledger built against a different
        # dataset/k with a clear error.
        store = CrawlStore.memory()
        store.register_endpoint(_schema(), 5, "diamonds-n500")
        with pytest.raises(StoreMismatchError) as err:
            store.register_endpoint(_schema(), 9, "diamonds-n500")
        assert "diamonds-n500" in str(err.value)
        assert "does not match" in str(err.value)
        with pytest.raises(StoreMismatchError):
            store.register_endpoint(_schema(3), 5, "autos")

    def test_allow_new_permits_multi_endpoint_stores(self):
        store = CrawlStore.memory()
        fp1 = store.register_endpoint(_schema(), 5, "a")
        fp2 = store.register_endpoint(_schema(3), 5, "b", allow_new=True)
        assert fp1 != fp2
        assert len(store.endpoints()) == 2


class TestLedger:
    def test_round_trip(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        ledger = store.ledger(fp)
        query = Query({0: Interval(0, 3)})
        answer = _answer(query, (7, (1, 2)), (9, (0, 4)))
        assert ledger.get(query) is None
        ledger.put(query, answer)
        back = ledger.get(query)
        assert back is not None
        assert back.rows == answer.rows
        assert back.overflow == answer.overflow
        assert back.sequence == answer.sequence
        assert back.query == query
        assert len(ledger) == 1

    def test_lookup_is_by_canonical_key(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        ledger = store.ledger(fp)
        ledger.put(Query({0: Interval(0, 3)}), _answer(Query({0: Interval(0, 3)})))
        # A differently-built but canonically identical query hits.
        twin = Query({np.int64(0): Interval(np.int64(0), np.int64(3))})
        assert ledger.get(twin) is not None

    def test_put_is_idempotent_per_key(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        ledger = store.ledger(fp)
        query = Query({0: Interval(0, 3)})
        ledger.put(query, _answer(query, (1, (1, 1))))
        ledger.put(query, _answer(query, (2, (2, 2))))
        assert len(ledger) == 1

    def test_endpoints_do_not_share_entries(self):
        store = CrawlStore.memory()
        fp1 = store.register_endpoint(_schema(), 5, "a")
        fp2 = store.register_endpoint(_schema(), 9, "a", allow_new=True)
        query = Query.select_all()
        store.ledger(fp1).put(query, _answer(query, (1, (1, 1))))
        assert store.ledger(fp2).get(query) is None

    def test_incompatible_store_version_refused(self, tmp_path):
        import sqlite3

        from repro.store import StoreError

        path = tmp_path / "future.db"
        CrawlStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version=99")
        conn.close()
        with pytest.raises(StoreError, match="layout version 99"):
            CrawlStore(path)

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "crawl.db"
        query = Query({0: Interval(2, 4)})
        with CrawlStore(path) as store:
            fp = store.register_endpoint(_schema(), 5, "d")
            store.ledger(fp).put(query, _answer(query, (3, (2, 3))))
        with CrawlStore(path) as store:
            assert store.ledger_size() == 1
            fp = store.register_endpoint(_schema(), 5, "d")
            back = store.ledger(fp).get(query)
            assert back is not None and back.rows[0].values == (2, 3)

    def test_session_bound_puts_count_billing_exactly(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        record = store.begin_session(fp, "rq")
        ledger = store.ledger(fp, record.session_id)
        for hi in range(4):
            query = Query({0: Interval(0, hi)})
            ledger.put(query, _answer(query))
        assert store.session(record.session_id).billed == 4


class TestSessions:
    def test_begin_checkpoint_finish(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        record = store.begin_session(fp, "rq")
        assert record.status == "running" and not record.resumed
        store.save_checkpoint(record.session_id, {"billed": 12, "skyline_size": 3})
        store.finish_session(record.session_id, {"total_cost": 20})
        final = store.session(record.session_id)
        assert final.status == "finished"
        assert final.checkpoint["billed"] == 12
        assert final.result == {"total_cost": 20}
        assert store.catalog()[0].session_id == record.session_id

    def test_resume_picks_up_latest_running_session(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        crashed = store.begin_session(fp, "rq")
        store.save_checkpoint(crashed.session_id, {"billed": 7})
        resumed = store.begin_session(fp, "rq", resume=True)
        assert resumed.resumed
        assert resumed.session_id == crashed.session_id
        assert resumed.nonce == crashed.nonce
        assert resumed.checkpoint == {"billed": 7}

    def test_resume_matches_algorithm_and_skips_finished(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        done = store.begin_session(fp, "rq")
        store.finish_session(done.session_id, {})
        other_algo = store.begin_session(fp, "sq")
        fresh = store.begin_session(fp, "rq", resume=True)
        assert not fresh.resumed
        assert fresh.session_id not in (done.session_id, other_algo.session_id)


class TestGc:
    def test_gc_keeps_a_healthy_store_intact(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        query = Query.select_all()
        store.ledger(fp).put(query, _answer(query))
        report = store.gc()
        assert report.total == 0
        assert store.ledger_size() == 1

    def test_gc_prunes_superseded_named_endpoints(self):
        # The served dataset behind a name changed (new k): the old
        # registration's schema hash no longer matches what the name
        # serves, so its ledger must go.
        store = CrawlStore.memory()
        old = store.register_endpoint(_schema(), 5, "diamonds")
        query = Query.select_all()
        store.ledger(old).put(query, _answer(query))
        store.begin_session(old, "rq")
        new = store.register_endpoint(_schema(), 9, "diamonds", allow_new=True)
        report = store.gc()
        assert report.endpoints_pruned == 1
        assert report.ledger_pruned == 1
        assert report.sessions_pruned == 1
        remaining = store.endpoints()
        assert [e.fingerprint for e in remaining] == [new]
        assert store.ledger_size() == 0

    def test_gc_prunes_tampered_registrations(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        query = Query.select_all()
        store.ledger(fp).put(query, _answer(query))
        # Corrupt the stored descriptor so it no longer hashes to fp.
        store._conn.execute(
            "UPDATE endpoints SET descriptor='{\"k\":99}' WHERE fingerprint=?",
            (fp,),
        )
        report = store.gc()
        assert report.endpoints_pruned == 1
        assert report.ledger_pruned == 1
        assert store.ledger_size() == 0

    def test_gc_prunes_orphaned_ledger_rows(self):
        store = CrawlStore.memory()
        fp = store.register_endpoint(_schema(), 5, "d")
        query = Query.select_all()
        store.ledger("deadbeef").put(query, _answer(query))
        report = store.gc()
        assert report.ledger_pruned == 1
        assert store.ledger_size(fp) == 0
