"""Unit tests for the crawl store's job catalog and pinned sessions.

The catalog is the coordinator's durable spine: jobs are filed before
they run, own a pre-assigned crawl session id, survive the daemon dying,
and are swept by ``gc`` together with the endpoint whose ledger they
billed against.
"""

import pytest

from repro.hiddendb import Attribute, InterfaceKind, Schema
from repro.store import CrawlStore, StoreError


def _schema(m: int = 2, domain: int = 10) -> Schema:
    return Schema(
        [Attribute(f"a{i}", domain, InterfaceKind.RQ) for i in range(m)]
    )


@pytest.fixture
def store():
    with CrawlStore.memory() as s:
        yield s


@pytest.fixture
def fp(store):
    return store.register_endpoint(_schema(), 5, name="jobs-db")


class TestJobCatalog:
    def test_create_files_a_queued_job_with_its_own_session(self, store, fp):
        job = store.create_job(
            fp, tenant="alice", algorithm="rq",
            spec={"budget": 100}, backends=2,
        )
        assert job.status == "queued"
        assert job.tenant == "alice"
        assert job.algorithm == "rq"
        assert job.backends == 2
        assert job.spec == {"budget": 100}
        assert job.session_id
        fetched = store.job(job.job_id)
        assert fetched is not None
        assert fetched.session_id == job.session_id
        assert store.job("missing") is None

    def test_update_lifecycle_progress_result_error(self, store, fp):
        job = store.create_job(fp, tenant="bob")
        store.update_job(job.job_id, status="running",
                         progress={"billed": 7})
        mid = store.job(job.job_id)
        assert mid.status == "running"
        assert mid.progress == {"billed": 7}
        store.update_job(
            job.job_id, status="finished",
            result={"total_cost": 42, "skyline_size": 3},
        )
        done = store.job(job.job_id)
        assert done.status == "finished"
        assert done.result == {"total_cost": 42, "skyline_size": 3}
        failed = store.create_job(fp)
        store.update_job(failed.job_id, status="failed", error="boom")
        assert store.job(failed.job_id).error == "boom"

    def test_unknown_status_rejected(self, store, fp):
        job = store.create_job(fp)
        with pytest.raises(StoreError, match="unknown job status"):
            store.update_job(job.job_id, status="paused")

    def test_jobs_filter_by_status_newest_first(self, store, fp):
        first = store.create_job(fp, tenant="t1")
        second = store.create_job(fp, tenant="t2")
        store.update_job(second.job_id, status="running")
        third = store.create_job(fp, tenant="t3")
        assert [j.tenant for j in store.jobs()] == ["t3", "t2", "t1"]
        assert [j.job_id for j in store.jobs(status="queued")] == [
            third.job_id, first.job_id,
        ]
        resumable = store.jobs(status=("queued", "running"))
        assert {j.job_id for j in resumable} == {
            first.job_id, second.job_id, third.job_id,
        }

    def test_gc_sweeps_jobs_of_pruned_endpoints(self, store, fp):
        kept = store.create_job(fp)
        orphan = store.create_job("feedfacefeedface", tenant="ghost")
        report = store.gc()
        assert report.jobs_pruned == 1
        assert store.job(kept.job_id) is not None
        assert store.job(orphan.job_id) is None


class TestPinnedSessions:
    def test_pinned_id_creates_then_picks_back_up(self, store, fp):
        fresh = store.begin_session(fp, "rq", session_id="job-session-1")
        assert fresh.session_id == "job-session-1"
        assert not fresh.resumed
        store.save_checkpoint("job-session-1", {"billed": 5})
        again = store.begin_session(fp, "rq", session_id="job-session-1")
        assert again.resumed
        assert again.nonce == fresh.nonce
        assert again.checkpoint == {"billed": 5}
        assert again.status == "running"

    def test_pinned_id_revives_a_finished_session(self, store, fp):
        record = store.begin_session(fp, "rq", session_id="job-session-2")
        store.finish_session(record.session_id, {"total_cost": 9})
        revived = store.begin_session(fp, "rq", session_id="job-session-2")
        assert revived.resumed
        assert store.session("job-session-2").status == "running"

    def test_pinned_id_cannot_hijack_another_endpoint(self, store, fp):
        store.begin_session(fp, "rq", session_id="job-session-3")
        other = store.register_endpoint(
            _schema(3), 5, name="someone-else", allow_new=True
        )
        assert other != fp
        with pytest.raises(StoreError, match="already exists"):
            store.begin_session(other, "rq", session_id="job-session-3")

    def test_pinned_sessions_of_one_endpoint_stay_separate(self, store, fp):
        a = store.begin_session(fp, "rq", session_id="tenant-a")
        b = store.begin_session(fp, "rq", session_id="tenant-b")
        # Same endpoint + algorithm, distinct identities: the coordinator
        # seam keeping two tenants off each other's checkpoints.
        assert a.session_id != b.session_id
        assert a.nonce != b.nonce
