"""JSONL trace schema, writer lifecycle, and traced-run parity."""

from __future__ import annotations

import io
import json

import pytest

from repro import Discoverer
from repro.core import DiscoveryConfig
from repro.hiddendb import InterfaceKind, TopKInterface
from repro.hiddendb.query import Query, query_fingerprint
from repro.obs import MetricsRegistry, RunObserver, TraceWriter

from ..conftest import (
    PARITY_TABLES,
    make_table,
    parity_strategy_params,
    truth_values,
)


def spans_of(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


# ----------------------------------------------------------------------
# TraceWriter
# ----------------------------------------------------------------------
class TestTraceWriter:
    def test_emit_writes_one_json_line_per_span(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.emit("billed", trace_id="run-abc", key="*")
        writer.emit("merged", trace_id="run", key="*", transported=True)
        writer.flush()  # spans surface at drain points
        spans = spans_of(buffer)
        assert [s["phase"] for s in spans] == ["billed", "merged"]
        assert spans[0]["trace_id"] == "run-abc"
        assert spans[1]["transported"] is True
        assert writer.spans_written == 2

    def test_schema_fields_always_present(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.emit("attempt", trace_id="t", path="/api/query")
        writer.flush()
        (span,) = spans_of(buffer)
        for field in ("seq", "t", "trace_id", "key", "phase"):
            assert field in span
        assert span["key"] is None  # key is explicit, even when unknown

    def test_seq_and_t_are_monotone(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        for _ in range(50):
            writer.emit("x", trace_id="t")
        writer.flush()
        spans = spans_of(buffer)
        assert len(spans) == 50
        seqs = [s["seq"] for s in spans]
        times = [s["t"] for s in spans]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert times == sorted(times)

    def test_path_sink_appends_and_is_owned(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        writer = TraceWriter(target)
        writer.emit("a", trace_id="t")
        writer.close()
        writer2 = TraceWriter(str(target))
        writer2.emit("b", trace_id="t")
        writer2.close()
        phases = [
            json.loads(line)["phase"]
            for line in target.read_text().splitlines()
        ]
        assert phases == ["a", "b"]

    def test_borrowed_file_like_is_never_closed(self):
        buffer = io.StringIO()
        with TraceWriter(buffer) as writer:
            writer.emit("a", trace_id="t")
        assert not buffer.closed

    def test_buffer_auto_drains_at_threshold(self):
        from repro.obs.trace import _DRAIN_EVERY

        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        for _ in range(_DRAIN_EVERY - 1):
            writer.emit("x", trace_id="t")
        assert spans_of(buffer) == []  # still buffered
        writer.emit("x", trace_id="t")
        assert len(spans_of(buffer)) == _DRAIN_EVERY

    def test_emit_after_close_is_dropped(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.close()
        writer.emit("late", trace_id="t")
        assert spans_of(buffer) == []


# ----------------------------------------------------------------------
# RunObserver
# ----------------------------------------------------------------------
class TestRunObserver:
    def test_trace_ids_are_deterministic(self):
        query = Query.select_all()
        a = RunObserver(run_id="runx")
        b = RunObserver(run_id="runx")
        assert a.trace_id(query) == b.trace_id(query)
        assert a.trace_id(query) == f"runx-{query_fingerprint(query)}"

    def test_events_feed_both_metrics_and_spans(self):
        buffer = io.StringIO()
        reg = MetricsRegistry()
        obs = RunObserver(trace=buffer, registry=reg, run_id="r")
        query = Query.select_all()
        obs.classified(query, query.canonical_key(), "dispatched")
        obs.billed(query)
        obs.merged(query.canonical_key(), transported=True)
        obs.client_event("attempt", trace_id="r-x", path="/api/query")
        obs.store_event("ledger_put", key="*")
        obs.shard_event("http://b0", stolen=True)
        obs.close()
        phases = [s["phase"] for s in spans_of(buffer)]
        assert phases == [
            "dispatched", "billed", "merged", "attempt", "ledger_put"
        ]
        assert reg.counter(
            "repro_query_classifications_total", "", ("phase",)
        ).value(phase="dispatched") == 1.0
        assert reg.counter("repro_queries_billed_total").value() == 1.0
        assert reg.counter(
            "repro_work_steals_total", "", ("backend",)
        ).value(backend="http://b0") == 1.0

    def test_checkpoint_events_record_session_timestamps(self):
        obs = RunObserver()
        assert obs.checkpoint_at == {}
        obs.store_event("checkpoint", session_id="s1")
        assert "s1" in obs.checkpoint_at

    def test_metrics_only_observer_needs_no_writer(self):
        obs = RunObserver()
        obs.billed(Query.select_all())
        obs.flush()
        obs.close()


# ----------------------------------------------------------------------
# traced-run parity: tracing must never change skyline or billed cost
# ----------------------------------------------------------------------
def _crawl_table():
    return PARITY_TABLES["rq3"]


@pytest.mark.parametrize(
    "strategy,config", parity_strategy_params(), ids=None
)
def test_traced_crawl_parity_and_span_coverage(strategy, config):
    table = _crawl_table()
    plain = Discoverer(config).run(
        TopKInterface(table, k=5), "baseline"
    )
    buffer = io.StringIO()
    traced = Discoverer(config.replace(trace=buffer)).run(
        TopKInterface(table, k=5), "baseline"
    )
    assert traced.skyline_values == plain.skyline_values
    assert traced.total_cost == plain.total_cost
    spans = spans_of(buffer)
    assert spans, "traced run wrote no spans"
    billed = [s for s in spans if s["phase"] == "billed"]
    # Every billed query produced exactly one billed span...
    assert len(billed) == traced.total_cost
    # ...carrying a trace id, its canonical key, and monotone seq/t.
    for span in billed:
        assert span["trace_id"] and "-" in span["trace_id"]
        assert isinstance(span["key"], str) and span["key"]
    seqs = [s["seq"] for s in spans]
    times = [s["t"] for s in spans]
    assert seqs == sorted(seqs)
    assert times == sorted(times)
    # The drain core classified every dispatched query exactly once.
    dispatched = [s for s in spans if s["phase"] == "dispatched"]
    assert len(dispatched) == traced.total_cost
    merged = [s for s in spans if s["phase"] == "merged"]
    assert len(merged) == traced.total_cost


def test_traced_run_matches_ground_truth_on_auto_dispatch():
    table = make_table(
        [(5, 1), (4, 4), (1, 3), (3, 2), (2, 2)],
        kinds=InterfaceKind.RQ,
        domain=8,
    )
    buffer = io.StringIO()
    result = Discoverer(DiscoveryConfig(trace=buffer)).run(
        TopKInterface(table, k=2)
    )
    assert result.skyline_values == truth_values(table)
    billed = [s for s in spans_of(buffer) if s["phase"] == "billed"]
    assert len(billed) == result.total_cost


def test_observer_detached_after_run():
    table = _crawl_table()
    interface = TopKInterface(table, k=5)
    buffer = io.StringIO()
    Discoverer(DiscoveryConfig(trace=buffer)).run(interface, "baseline")
    before = len(spans_of(buffer))
    Discoverer(DiscoveryConfig()).run(interface, "baseline")
    assert len(spans_of(buffer)) == before, "observer leaked into next run"


def test_config_rejects_nonsense_trace():
    with pytest.raises(ValueError):
        DiscoveryConfig(trace=123)
