"""Metrics registry semantics and Prometheus exposition well-formedness."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    global_registry,
    render_prometheus,
)
from repro.obs.exposition import CONTENT_TYPE

from ..conftest import parse_prometheus


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "help", ("op",))
        c.inc(op="read")
        c.inc(2.5, op="read")
        c.inc(op="write")
        assert c.value(op="read") == 3.5
        assert c.value(op="write") == 1.0
        assert c.value(op="never") == 0.0

    def test_counters_reject_negative(self):
        c = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_set_is_strict(self):
        c = MetricsRegistry().counter("t_total", "", ("op",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(op="read", extra="nope")

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("t_total", "", ("op",)) is reg.counter(
            "t_total", "", ("op",)
        )

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("t_total")
        with pytest.raises(ValueError):
            reg.gauge("t_total")
        with pytest.raises(ValueError):
            reg.counter("t_total", "", ("op",))  # label mismatch too

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "", ("0bad",))
        with pytest.raises(ValueError):
            reg.counter("ok_total", "", ("__reserved",))


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("t")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value() == 4.0


class TestHistograms:
    def test_observe_snapshot(self):
        h = MetricsRegistry().histogram("t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        cumulative, total, count = h.snapshot()
        assert cumulative == [1, 3]  # <=0.1: one, <=1.0: three; 5.0 beyond
        assert count == 4
        assert total == pytest.approx(6.05)

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("t_seconds", buckets=(1.0, 0.1))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("t_seconds", buckets=())

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert not math.isinf(DEFAULT_BUCKETS[-1])


class TestScoping:
    def test_child_mutations_mirror_into_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("t_total", "", ("op",)).inc(3, op="read")
        child.gauge("g").set(7)
        child.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        assert parent.counter("t_total", "", ("op",)).value(op="read") == 3.0
        assert parent.gauge("g").value() == 7.0
        assert parent.histogram("h_seconds", buckets=(1.0,)).snapshot()[2] == 1

    def test_two_children_aggregate_in_parent(self):
        parent = MetricsRegistry()
        MetricsRegistry(parent=parent).counter("t_total").inc(2)
        MetricsRegistry(parent=parent).counter("t_total").inc(5)
        assert parent.counter("t_total").value() == 7.0

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        c = MetricsRegistry().counter("t_total", "", ("op",))

        def spin():
            for _ in range(1000):
                c.inc(op="x")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(op="x") == 8000.0


# ----------------------------------------------------------------------
# exposition well-formedness (every line parsed and validated)
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("demo_requests_total", "Requests served.", ("route", "key"))
    c.inc(route="/api/query", key="alice")
    c.inc(3, route="/api/query", key='bo"b\\with\nnasties')
    g = reg.gauge("demo_in_flight", "In-flight requests.")
    g.set(2)
    h = reg.histogram(
        "demo_latency_seconds", "Latency.", ("route",), buckets=(0.01, 0.1, 1.0)
    )
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v, route="/api/query")
    reg.counter("demo_untouched_total", "Declared but never incremented.")
    return reg


class TestExposition:
    def test_content_type_pins_the_text_format(self):
        assert "text/plain" in CONTENT_TYPE and "0.0.4" in CONTENT_TYPE

    def test_every_line_parses(self):
        families = parse_prometheus(render_prometheus(_populated_registry()))
        assert families["demo_requests_total"]["type"] == "counter"
        assert families["demo_in_flight"]["type"] == "gauge"
        assert families["demo_latency_seconds"]["type"] == "histogram"

    def test_counter_samples_and_label_escaping(self):
        families = parse_prometheus(render_prometheus(_populated_registry()))
        samples = families["demo_requests_total"]["samples"]
        plain = (
            "demo_requests_total",
            (("route", "/api/query"), ("key", "alice")),
        )
        assert samples[plain] == 1.0
        escaped = [
            value
            for (name, labels), value in samples.items()
            if dict(labels)["key"] == 'bo\\"b\\\\with\\nnasties'
        ]
        assert escaped == [3.0]

    def test_histogram_invariants(self):
        families = parse_prometheus(render_prometheus(_populated_registry()))
        samples = families["demo_latency_seconds"]["samples"]
        rest = (("route", "/api/query"),)
        # parse_prometheus already asserted monotone cumulative buckets,
        # the +Inf terminal and _sum/_count presence; pin exact values.
        assert samples[("demo_latency_seconds_count", rest)] == 4.0
        assert samples[("demo_latency_seconds_sum", rest)] == pytest.approx(
            5.555
        )
        inf_bucket = (
            "demo_latency_seconds_bucket",
            (("route", "/api/query"), ("le", "+Inf")),
        )
        assert samples[inf_bucket] == 4.0

    def test_families_without_samples_still_declared(self):
        families = parse_prometheus(render_prometheus(_populated_registry()))
        assert families["demo_untouched_total"]["type"] == "counter"
        assert families["demo_untouched_total"]["samples"] == {}

    def test_help_text_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", "line one\nline two \\ done")
        text = render_prometheus(reg)
        assert "# HELP demo_total line one\\nline two \\\\ done" in text
        parse_prometheus(text)
