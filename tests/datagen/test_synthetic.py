"""Tests for the synthetic micro-benchmark generators."""

import numpy as np
import pytest

from repro.datagen.synthetic import (
    anticorrelated,
    correlated,
    correlation_sweep_table,
    exact_skyline_table,
    independent,
)
from repro.hiddendb import InterfaceKind


class TestIndependent:
    def test_shape_and_domain(self):
        table = independent(100, 3, domain=10, seed=1)
        assert table.n == 100
        assert table.m == 3
        assert table.matrix.max() < 10
        assert table.matrix.min() >= 0

    def test_deterministic_per_seed(self):
        a = independent(50, 2, seed=7)
        b = independent(50, 2, seed=7)
        assert np.array_equal(a.matrix, b.matrix)

    def test_kind_applies_to_all_attributes(self):
        table = independent(10, 2, kind=InterfaceKind.PQ, seed=0)
        assert all(a.kind is InterfaceKind.PQ
                   for a in table.schema.ranking_attributes)


class TestCorrelated:
    def test_positive_correlation_shrinks_skyline(self):
        strong = correlated(1000, 3, domain=50, rho=0.9, seed=0)
        weak = correlated(1000, 3, domain=50, rho=-0.9, seed=0)
        assert len(strong.skyline_indices()) < len(weak.skyline_indices())

    def test_rho_bounds_validated(self):
        with pytest.raises(ValueError):
            correlated(10, 2, rho=1.5)

    def test_marginals_stay_in_domain(self):
        table = correlated(500, 4, domain=20, rho=-0.5, seed=3)
        assert table.matrix.min() >= 0
        assert table.matrix.max() < 20

    def test_sweep_monotone_in_rho(self):
        sizes = [
            len(correlation_sweep_table(1000, 4, rho, seed=0).skyline_indices())
            for rho in (0.9, 0.0, -0.9)
        ]
        assert sizes[0] < sizes[-1]


class TestAnticorrelated:
    def test_larger_skyline_than_independent(self):
        anti = anticorrelated(1000, 2, domain=50, seed=0)
        indep = independent(1000, 2, domain=50, seed=0)
        assert len(anti.skyline_indices()) > len(indep.skyline_indices())

    def test_domain_respected(self):
        table = anticorrelated(300, 3, domain=30, seed=2)
        assert table.matrix.max() < 30


class TestExactSkylineTable:
    def test_skyline_is_exactly_the_given_points(self):
        points = [(1, 4), (2, 3), (4, 1)]
        table = exact_skyline_table(points, filler=50, domain=10, seed=0)
        got = {tuple(int(v) for v in row)
               for row in table.matrix[table.skyline_indices()]}
        assert got == set(points)
        assert table.n == 53

    def test_rejects_dominating_points(self):
        with pytest.raises(ValueError):
            exact_skyline_table([(0, 0), (1, 1)], filler=5, domain=4)

    def test_rejects_cornered_anchor(self):
        with pytest.raises(ValueError):
            exact_skyline_table([(9, 9)], filler=5, domain=10)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            exact_skyline_table([1, 2], filler=0, domain=4)
        with pytest.raises(ValueError):
            exact_skyline_table(np.empty((0, 2)), filler=0, domain=4)
