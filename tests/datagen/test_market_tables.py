"""Tests for the live-website stand-ins (Blue Nile, Google Flights, Yahoo! Autos)."""

import numpy as np

from repro.datagen.autos import autos_table
from repro.datagen.diamonds import diamonds_table
from repro.datagen.gflights import (
    DAILY_QUERY_LIMIT,
    flight_instance,
    flight_instances,
    flight_schema,
)
from repro.hiddendb import InterfaceKind


class TestDiamonds:
    def test_schema_matches_site(self):
        table = diamonds_table(500, seed=0)
        names = [a.name for a in table.schema.ranking_attributes]
        assert names == ["price", "carat", "cut", "color", "clarity"]
        assert all(a.kind is InterfaceKind.RQ
                   for a in table.schema.ranking_attributes)
        assert table.schema["shape"].kind is InterfaceKind.FILTER

    def test_price_carat_anticorrelated_in_preference_space(self):
        # Heavier stones (carat preference 0) cost more (price preference
        # high): the trade-off behind the large diamond skyline.
        table = diamonds_table(5000, seed=1)
        price = table.matrix[:, 0]
        carat = table.matrix[:, 1]
        assert np.corrcoef(price, carat)[0, 1] < -0.5

    def test_skyline_scale_matches_paper(self):
        """The paper found 2,149 skyline diamonds in 209,666 listings; at our
        default scale the skyline should be the same order of magnitude."""
        table = diamonds_table(20_000, seed=0)
        size = len(table.skyline_indices())
        assert 500 <= size <= 6000

    def test_grade_labels(self):
        table = diamonds_table(10, seed=0)
        assert table.schema["cut"].label(0) == "Astor Ideal"
        assert table.schema["clarity"].label(0) == "FL"


class TestAutos:
    def test_schema_matches_site(self):
        table = autos_table(100, seed=0)
        names = [a.name for a in table.schema.ranking_attributes]
        assert names == ["price", "mileage", "year"]
        assert all(a.kind is InterfaceKind.RQ
                   for a in table.schema.ranking_attributes)

    def test_mileage_tracks_age(self):
        table = autos_table(5000, seed=0)
        mileage = table.matrix[:, 1]
        year = table.matrix[:, 2]  # preference 0 = newest
        assert np.corrcoef(mileage, year)[0, 1] > 0.5

    def test_skyline_scale_matches_paper(self):
        """The paper found 1,601 skyline cars in 125,149 listings."""
        table = autos_table(50_000, seed=0)
        size = len(table.skyline_indices())
        assert 200 <= size <= 4000


class TestGoogleFlights:
    def test_interface_taxonomy(self):
        schema = flight_schema()
        assert schema["stops"].kind is InterfaceKind.SQ
        assert schema["price"].kind is InterfaceKind.SQ
        assert schema["connection"].kind is InterfaceKind.SQ
        assert schema["departure"].kind is InterfaceKind.RQ
        assert schema["origin"].kind is InterfaceKind.FILTER

    def test_nonstop_flights_have_no_connection(self):
        table = flight_instance(seed=0, n=200)
        stops = table.matrix[:, 0]
        connection = table.matrix[:, 2]
        assert (connection[stops == 0] == 0).all()

    def test_skyline_size_matches_paper_range(self):
        """The paper reports 4-11 skyline flights per route/date."""
        sizes = [
            len(table.skyline_indices())
            for table in flight_instances(10, seed=0)
        ]
        assert min(sizes) >= 2
        assert max(sizes) <= 30

    def test_instances_differ(self):
        tables = list(flight_instances(2, seed=0))
        assert tables[0].n != tables[1].n or not np.array_equal(
            tables[0].matrix[: min(tables[0].n, tables[1].n)],
            tables[1].matrix[: min(tables[0].n, tables[1].n)],
        )

    def test_quota_constant(self):
        assert DAILY_QUERY_LIMIT == 50
