"""Tests for the adversarial constructions from the paper's proofs."""

import numpy as np
import pytest

from repro.core import discover_pq, discover_sq
from repro.datagen.adversarial import (
    priority_case_study_table,
    theorem1_skyline_size,
    theorem1_table,
)
from repro.hiddendb import InterfaceKind, TopKInterface

from ..conftest import truth_values


class TestTheorem1Construction:
    def test_blockers_do_not_join_the_skyline_count(self):
        table = theorem1_table(m=3, s=4)
        assert theorem1_skyline_size(table) == 4

    def test_blockers_are_skyline_but_harmless(self):
        """Each blocker holds the best value on m-1 attributes, so it is on
        the skyline, but it dominates no permutation tuple (the proof's
        second observation)."""
        table = theorem1_table(m=3, s=4)
        assert len(table.skyline_indices()) == 3 + 4

    def test_any_short_query_returns_a_blocker(self):
        """The proof's first observation: a query with fewer than m
        predicates always matches some blocker, which then outranks every
        permutation tuple under a sum ranking restricted to it."""
        table = theorem1_table(m=3, s=3)
        matrix = table.matrix
        blockers = matrix[:3]
        # Every single-attribute restriction keeps at least one blocker.
        for attribute in range(3):
            for bound in range(1, int(matrix[:, attribute].max()) + 1):
                matching = blockers[blockers[:, attribute] < bound]
                if bound > 1:
                    assert len(matching) >= 2

    def test_all_values_unique_per_attribute_among_skyline(self):
        table = theorem1_table(m=3, s=6)
        permutation_rows = table.matrix[3:]
        for column in range(3):
            values = permutation_rows[:, column]
            assert len(np.unique(values)) == len(values)

    def test_sq_discovery_is_complete_and_lower_bounded(self):
        """SQ-DB-SKY stays correct on the adversarial family, and its cost
        respects the Theorem-1 lower bound C(s, m) for every skyline size."""
        from repro.core.analysis import sq_lower_bound_order
        from repro.hiddendb import LexicographicRanker

        previous = 0
        for s in (2, 4, 6):
            table = theorem1_table(m=3, s=s)
            interface = TopKInterface(
                table, ranker=LexicographicRanker(), k=1
            )
            result = discover_sq(interface)
            assert result.skyline_values == truth_values(table)
            assert result.total_cost >= sq_lower_bound_order(3, s)
            assert result.total_cost > previous
            previous = result.total_cost

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_table(m=1, s=1)
        with pytest.raises(ValueError):
            theorem1_table(m=2, s=0)
        with pytest.raises(ValueError):
            theorem1_table(m=2, s=3)  # only 2 permutations exist

    def test_kind_override(self):
        table = theorem1_table(m=2, s=2, kind=InterfaceKind.RQ)
        assert all(a.kind is InterfaceKind.RQ
                   for a in table.schema.ranking_attributes)


class TestPriorityCaseStudy:
    def test_every_x_and_y_value_occupied_at_z0(self):
        table, _ = priority_case_study_table(dom_x=5, dom_y=5, seed=2)
        z0 = table.matrix[table.matrix[:, 2] == 0]
        assert set(z0[:, 0]) == set(range(5))
        assert set(z0[:, 1]) == set(range(5))

    def test_ranker_prioritises_z(self):
        table, ranker = priority_case_study_table(seed=3)
        interface = TopKInterface(table, ranker=ranker, k=1)
        from repro.hiddendb import Query

        answer = interface.query(Query.select_all())
        assert answer.top.values[2] == 0

    def test_pq_discovery_complete_under_priority_ranking(self):
        table, ranker = priority_case_study_table(seed=4)
        interface = TopKInterface(table, ranker=ranker, k=2)
        result = discover_pq(interface)
        assert result.skyline_values == truth_values(table)
