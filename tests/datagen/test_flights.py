"""Tests for the DOT-flights stand-in generator."""

import numpy as np
import pytest

from repro.datagen import truncate_domains
from repro.datagen.flights import (
    DEFAULT_PQ,
    RANKING_ATTRIBUTES,
    flights_mixed_table,
    flights_pq_table,
    flights_range_table,
    flights_table,
)
from repro.hiddendb import InterfaceKind


class TestFlightsTable:
    def test_schema_matches_paper(self):
        table = flights_table(1000, seed=0)
        names = [a.name for a in table.schema.ranking_attributes]
        assert names == [name for name, _ in RANKING_ATTRIBUTES]
        assert table.schema.m == 9

    def test_domain_size_range_matches_paper(self):
        """The paper reports ranking domains from 11 to 4,983."""
        sizes = dict(RANKING_ATTRIBUTES)
        assert min(sizes.values()) == 11
        assert max(sizes.values()) == 4983

    def test_default_pq_attributes(self):
        table = flights_table(100, seed=0)
        for name in DEFAULT_PQ:
            assert table.schema[name].kind is InterfaceKind.PQ
        assert table.schema["dep_delay"].kind is InterfaceKind.RQ

    def test_structural_correlations(self):
        table = flights_table(5000, seed=1)
        names = [a.name for a in table.schema.ranking_attributes]
        matrix = table.matrix
        air = matrix[:, names.index("air_time")]
        elapsed = matrix[:, names.index("actual_elapsed")]
        # Elapsed time includes air time (both in preference space).
        corr = np.corrcoef(air, elapsed)[0, 1]
        assert corr > 0.8
        dep = matrix[:, names.index("dep_delay")]
        arrival = matrix[:, names.index("arrival_delay")]
        assert np.corrcoef(dep, arrival)[0, 1] > 0.8

    def test_group_attributes_coarsen_parents(self):
        table = flights_table(2000, seed=2)
        names = [a.name for a in table.schema.ranking_attributes]
        arrival = table.matrix[:, names.index("arrival_delay")]
        group = table.matrix[:, names.index("delay_group")]
        assert group.max() < 11
        # Same order: a much larger delay never lands in a smaller group.
        order = np.argsort(arrival)
        assert (np.diff(group[order]) >= 0).all()

    def test_carrier_filter_column(self):
        table = flights_table(100, seed=0)
        assert table.schema["carrier"].kind is InterfaceKind.FILTER
        assert 0 <= table.filter_value("carrier", 0) < 14

    def test_unknown_derived_group_rejected(self):
        with pytest.raises(ValueError):
            flights_table(10, derived_groups=("bogus",))


class TestDerivedTables:
    def test_range_table_prefix(self):
        table = flights_range_table(500, 4, seed=0)
        assert table.schema.m == 4
        assert all(a.kind is InterfaceKind.RQ
                   for a in table.schema.ranking_attributes)

    def test_range_table_sq_kind(self):
        table = flights_range_table(100, 3, kind=InterfaceKind.SQ)
        assert all(a.kind is InterfaceKind.SQ
                   for a in table.schema.ranking_attributes)

    def test_range_table_bounds(self):
        with pytest.raises(ValueError):
            flights_range_table(10, 0)
        with pytest.raises(ValueError):
            flights_range_table(10, 10)

    def test_pq_table(self):
        table = flights_pq_table(500, 4, seed=0)
        assert table.schema.m == 4
        assert all(a.kind is InterfaceKind.PQ
                   for a in table.schema.ranking_attributes)
        assert max(a.domain_size for a in table.schema.ranking_attributes) <= 15

    def test_pq_table_bounds(self):
        with pytest.raises(ValueError):
            flights_pq_table(10, 1)
        with pytest.raises(ValueError):
            flights_pq_table(10, 9)

    def test_mixed_table_composition(self):
        table = flights_mixed_table(500, 3, 2, seed=0)
        kinds = [a.kind for a in table.schema.ranking_attributes]
        assert kinds.count(InterfaceKind.RQ) == 3
        assert kinds.count(InterfaceKind.PQ) == 2

    def test_mixed_table_bounds(self):
        with pytest.raises(ValueError):
            flights_mixed_table(10, 8, 1)
        with pytest.raises(ValueError):
            flights_mixed_table(10, 1, 7)


class TestTruncateDomains:
    def test_values_and_domains_shrink(self):
        table = flights_pq_table(2000, 3, seed=0)
        truncated = truncate_domains(table, 5)
        assert truncated.matrix.max() < 5
        assert all(a.domain_size <= 5
                   for a in truncated.schema.ranking_attributes)
        assert truncated.n < table.n

    def test_kept_values_are_the_most_preferred_occupied(self):
        table = flights_pq_table(2000, 3, seed=0)
        truncated = truncate_domains(table, 4)
        # Remapped values are contiguous from 0 in every non-empty column.
        if truncated.n:
            assert truncated.matrix.min() == 0

    def test_validation(self):
        table = flights_pq_table(100, 3, seed=0)
        with pytest.raises(ValueError):
            truncate_domains(table, 0)


class TestRediscretizeDomains:
    def test_keeps_all_tuples(self):
        from repro.datagen import rediscretize_domains

        table = flights_pq_table(2000, 3, seed=0)
        smaller = rediscretize_domains(table, 5)
        assert smaller.n == table.n
        assert smaller.matrix.max() < 5

    def test_order_preserving(self):
        from repro.datagen import rediscretize_domains

        table = flights_pq_table(2000, 3, seed=0)
        smaller = rediscretize_domains(table, 5)
        original = table.matrix[:, 0]
        bucketed = smaller.matrix[:, 0]
        order = np.argsort(original, kind="stable")
        assert (np.diff(bucketed[order]) >= 0).all()

    def test_validation(self):
        from repro.datagen import rediscretize_domains

        with pytest.raises(ValueError):
            rediscretize_domains(flights_pq_table(50, 3), 0)
