"""Tests for the algorithm registry and the Discoverer facade."""

import warnings

import numpy as np
import pytest

from repro import (
    Discoverer,
    DiscoveryConfig,
    discover,
    discover_mq,
    discover_pq,
    discover_pq2d,
    discover_rq,
    discover_sq,
)
from repro.core import (
    AlgorithmNotFoundError,
    DuplicateAlgorithmError,
    algorithm_names,
    applicable_algorithms,
    get_algorithm,
    register_algorithm,
    resolve_algorithm,
)
from repro.core.mq import legacy_discover
from repro.core.registry import unregister_algorithm
from repro.hiddendb import InterfaceKind, TopKInterface

from ..conftest import make_table, random_table, truth_band_values, truth_values

SQ = InterfaceKind.SQ
RQ = InterfaceKind.RQ
PQ = InterfaceKind.PQ


def interface_for(rng, kinds, n=200, domain=12, k=5) -> TopKInterface:
    return TopKInterface(random_table(rng, kinds, n, domain), k=k)


class TestRegistry:
    def test_builtin_algorithms_registered(self):
        names = algorithm_names()
        for expected in ("sq", "rq", "pq", "pq2d", "mq", "baseline"):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("RQ") is get_algorithm("rq")

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(AlgorithmNotFoundError) as excinfo:
            get_algorithm("nope")
        assert "rq" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        @register_algorithm(
            "tmp-dup-test", display_name="TMP", kinds=(RQ,)
        )
        def runner(session, config):  # pragma: no cover - never run
            pass

        try:
            with pytest.raises(DuplicateAlgorithmError):
                register_algorithm(
                    "TMP-DUP-TEST", display_name="TMP2", kinds=(RQ,)
                )(runner)
        finally:
            unregister_algorithm("tmp-dup-test")

    def test_registered_algorithm_is_runnable_through_facade(self):
        from repro.core.sq import sq_db_sky

        @register_algorithm(
            "tmp-run-test",
            display_name="TMP-DB-SKY",
            kinds=(SQ, RQ),
            capabilities=("anytime",),
        )
        def runner(session, config):
            sq_db_sky(session)

        try:
            table = make_table([(5, 1), (1, 5), (3, 3)], kinds=RQ, domain=6)
            result = Discoverer().run(
                TopKInterface(table, k=1), "tmp-run-test"
            )
            assert result.algorithm == "TMP-DB-SKY"
            assert result.skyline_values == truth_values(table)
            assert result.info.name == "tmp-run-test"
            assert result.info.capabilities == ("anytime",)
        finally:
            unregister_algorithm("tmp-run-test")

    def test_spec_taxonomy_and_capabilities(self):
        rq = get_algorithm("rq")
        assert rq.taxonomy == ("SQ", "RQ")
        assert "anytime" in rq.capabilities
        assert "skyband" in rq.capabilities  # attached by repro.core.skyband
        assert get_algorithm("baseline").skyband is None

    def test_applicable_algorithms_mixed_schema(self):
        schema = make_table(
            [(1, 2, 3)], kinds=[SQ, RQ, PQ], domain=5
        ).schema
        names = {spec.name for spec in applicable_algorithms(schema)}
        assert names == {"mq", "baseline"}


class TestAutoDispatchParity:
    """Registry auto-dispatch reproduces the legacy discover() dispatch."""

    CASES = [
        ("pure sq", [SQ, SQ, SQ]),
        ("pure rq", [RQ, RQ, RQ]),
        ("mixed ranges", [SQ, RQ, SQ]),
        ("pure pq", [PQ, PQ, PQ]),
        ("pure pq 2d", [PQ, PQ]),
        ("mixed all", [SQ, RQ, PQ]),
        ("rq + pq", [RQ, RQ, PQ]),
    ]

    @pytest.mark.parametrize("label,kinds", CASES)
    def test_same_algorithm_same_cost_same_skyline(self, label, kinds):
        rng = np.random.default_rng(7)
        facade_iface = interface_for(rng, kinds)
        rng = np.random.default_rng(7)
        legacy_iface = interface_for(rng, kinds)

        facade = Discoverer().run(facade_iface)
        legacy = legacy_discover(legacy_iface)

        assert facade.algorithm == legacy.algorithm, label
        assert facade.total_cost == legacy.total_cost, label
        assert facade.skyline_values == legacy.skyline_values, label

    def test_resolver_targets(self):
        def resolved(kinds):
            schema = make_table(
                [tuple(range(len(kinds)))], kinds=kinds, domain=9
            ).schema
            return resolve_algorithm(schema).name

        assert resolved([SQ, SQ]) == "sq"
        assert resolved([RQ, SQ]) == "rq"
        assert resolved([RQ, RQ]) == "rq"
        assert resolved([PQ, PQ, PQ]) == "pq"
        assert resolved([SQ, RQ, PQ]) == "mq"


class TestDiscovererRun:
    def test_unsupported_algorithm_rejected(self):
        table = make_table([(1, 2)], kinds=PQ, domain=4)
        with pytest.raises(ValueError, match="does not support"):
            Discoverer().run(TopKInterface(table, k=1), "rq")

    def test_result_carries_config_and_info(self):
        table = make_table([(5, 1), (1, 5)], kinds=RQ, domain=6)
        config = DiscoveryConfig(budget=500)
        result = Discoverer(config).run(TopKInterface(table, k=1))
        assert result.config == config
        assert result.info.name == "rq"
        assert result.info.display_name == "RQ-DB-SKY"

    def test_budget_yields_partial_result(self):
        rng = np.random.default_rng(3)
        interface = interface_for(rng, [RQ, RQ, RQ], n=400, k=1)
        full = Discoverer().run(interface)
        assert full.total_cost > 2
        partial = Discoverer().run(interface, budget=2)
        assert not partial.complete
        assert partial.total_cost <= 2

    def test_progress_hooks_fire(self):
        rng = np.random.default_rng(5)
        interface = interface_for(rng, [RQ, RQ], n=300, domain=20, k=3)
        queries, tuples = [], []
        result = Discoverer().run(
            interface,
            on_query=queries.append,
            on_tuple=tuples.append,
        )
        assert len(queries) == result.total_cost
        assert len(tuples) == len(result.retrieved)
        # The hook entries reproduce the anytime trace for skyline tuples.
        skyline_rids = {row.rid for row in result.skyline}
        hook_trace = tuple(
            entry for entry in tuples if entry.row.rid in skyline_rids
        )
        assert sorted(hook_trace, key=lambda e: (e.cost, e.row.rid)) == list(
            result.trace
        )

    def test_record_log_attaches_query_log(self):
        table = make_table([(5, 1), (1, 5), (3, 3)], kinds=RQ, domain=6)
        result = Discoverer().run(
            TopKInterface(table, k=1), record_log=True
        )
        assert len(result.query_log) == result.total_cost
        bare = Discoverer().run(TopKInterface(table, k=1))
        assert bare.query_log == ()

    def test_options_forwarded_to_runner(self):
        rng = np.random.default_rng(11)
        plain_iface = interface_for(rng, [RQ, RQ, RQ], n=300, k=1)
        rng = np.random.default_rng(11)
        ablated_iface = interface_for(rng, [RQ, RQ, RQ], n=300, k=1)
        plain = Discoverer().run(plain_iface, "rq")
        ablated = Discoverer().run(
            ablated_iface, "rq", options={"early_termination": False}
        )
        assert plain.skyline_values == ablated.skyline_values
        assert plain.total_cost <= ablated.total_cost

    def test_run_all_mixed_schema(self):
        rng = np.random.default_rng(2)
        interface = interface_for(rng, [SQ, RQ, PQ], n=150, domain=8)
        results = Discoverer().run_all(interface)
        assert set(results) == {"mq", "baseline"}
        truth = results["mq"].skyline_values
        for name, result in results.items():
            assert result.info.name == name
            assert result.skyline_values == truth, name

    def test_run_all_pure_range_schema(self):
        rng = np.random.default_rng(4)
        interface = interface_for(rng, [RQ, RQ], n=150, domain=15)
        results = Discoverer().run_all(interface)
        assert set(results) == {"sq", "rq", "pq2d", "mq", "baseline"}


class TestDiscovererSkyband:
    def test_auto_dispatch_rq(self):
        rng = np.random.default_rng(9)
        table = random_table(rng, [RQ, RQ], 200, 15)
        result = Discoverer().skyband(TopKInterface(table, k=10), band=2)
        assert result.algorithm == "RQ-DB-SKYBAND"
        assert result.band == 2
        assert result.complete
        assert result.skyband_values == truth_band_values(table, 2)
        assert result.info.name == "rq"
        assert result.config.band == 2

    def test_auto_dispatch_pq(self):
        rng = np.random.default_rng(10)
        table = random_table(rng, [PQ, PQ], 150, 10)
        result = Discoverer().skyband(TopKInterface(table, k=10), band=2)
        assert result.algorithm == "PQ-DB-SKYBAND"
        assert result.skyband_values == truth_band_values(table, 2)

    def test_explicit_algorithm_without_skyband_rejected(self):
        rng = np.random.default_rng(12)
        table = random_table(rng, [RQ, RQ], 50, 8)
        with pytest.raises(ValueError, match="no skyband extension"):
            Discoverer().skyband(TopKInterface(table, k=5), 2, "baseline")

    def test_band_default_from_config(self):
        rng = np.random.default_rng(13)
        table = random_table(rng, [RQ, RQ], 100, 10)
        disc = Discoverer(DiscoveryConfig(band=3))
        result = disc.skyband(TopKInterface(table, k=10))
        assert result.band == 3


class TestDeprecationShims:
    def shim_cases(self):
        rng = np.random.default_rng(1)
        range_iface = lambda: interface_for(rng, [RQ, RQ], n=60, domain=8)
        pq_iface = lambda: interface_for(rng, [PQ, PQ], n=60, domain=8)
        return [
            (discover_sq, range_iface),
            (discover_rq, range_iface),
            (discover_pq, pq_iface),
            (discover_pq2d, pq_iface),
            (discover_mq, range_iface),
        ]

    def test_shims_warn_and_still_work(self):
        for shim, build in self.shim_cases():
            with pytest.warns(DeprecationWarning, match=shim.__name__):
                result = shim(build())
            assert result.total_cost > 0, shim.__name__

    def test_discover_convenience_does_not_warn(self):
        rng = np.random.default_rng(6)
        interface = interface_for(rng, [RQ, RQ], n=60, domain=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = discover(interface)
        assert result.algorithm == "RQ-DB-SKY"


class TestDiscoveryConfig:
    def test_frozen_and_validated(self):
        config = DiscoveryConfig()
        with pytest.raises(AttributeError):
            config.budget = 3
        with pytest.raises(ValueError):
            DiscoveryConfig(budget=-1)
        with pytest.raises(ValueError):
            DiscoveryConfig(band=0)

    def test_replace_and_options(self):
        config = DiscoveryConfig(budget=10).with_options(plane_limit=99)
        assert config.budget == 10
        assert config.option("plane_limit") == 99
        assert config.replace(band=2).band == 2
        assert config.option("missing", "fallback") == "fallback"
