"""Tests for PQ-2D-SKY (instance-optimal 2-D point interfaces)."""

import numpy as np
import pytest

from repro.core import discover_pq2d
from repro.core.analysis import pq_2d_cost
from repro.hiddendb import (
    InterfaceKind,
    LexicographicRanker,
    LinearRanker,
    TopKInterface,
)

from ..conftest import make_table, random_table, truth_values


def _pq_table(values, domain):
    return make_table(values, kinds=InterfaceKind.PQ, domain=domain)


class TestCorrectness:
    def test_staircase(self):
        table = _pq_table([(0, 4), (1, 3), (2, 2), (3, 1), (4, 0), (3, 3)], 5)
        result = discover_pq2d(TopKInterface(table, k=1))
        assert result.skyline_values == {(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)}

    def test_requires_two_attributes(self):
        table = make_table([(1, 1, 1)], kinds=InterfaceKind.PQ, domain=5)
        with pytest.raises(ValueError):
            discover_pq2d(TopKInterface(table, k=1))

    def test_empty_database(self):
        table = _pq_table(np.empty((0, 2), dtype=np.int64), 5)
        result = discover_pq2d(TopKInterface(table, k=1))
        assert result.skyline_values == frozenset()
        assert result.total_cost == 1

    def test_corner_tuple_dominates_everything(self):
        table = _pq_table([(0, 0), (3, 4), (2, 2)], 5)
        result = discover_pq2d(TopKInterface(table, k=1))
        assert result.skyline_values == {(0, 0)}
        assert result.total_cost == 1  # both residual rectangles are empty

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3])
    def test_random_instances(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, [InterfaceKind.PQ] * 2, n=80, domain=9)
        result = discover_pq2d(TopKInterface(table, k=k))
        assert result.skyline_values == truth_values(table)

    def test_ill_behaved_ranker(self):
        rng = np.random.default_rng(40)
        table = random_table(rng, [InterfaceKind.PQ] * 2, n=60, domain=8)
        interface = TopKInterface(table, ranker=LexicographicRanker([1, 0]), k=1)
        result = discover_pq2d(interface)
        assert result.skyline_values == truth_values(table)


class TestInstanceOptimalCost:
    """PQ-2D-SKY's cost must equal Eq. (11) plus the initial SELECT *."""

    def _check_cost(self, values, domain, expect_cheap=False):
        table = _pq_table(values, domain)
        result = discover_pq2d(TopKInterface(table, k=1))
        skyline = sorted(
            {tuple(int(v) for v in row) for row in
             table.matrix[table.skyline_indices()]}
        )
        formula = pq_2d_cost(skyline, domain, domain)
        assert result.total_cost == formula + 1
        if expect_cheap:
            assert result.total_cost <= 2 * len(skyline) + 1

    def test_cost_formula_staircase(self):
        self._check_cost([(0, 4), (2, 2), (4, 0)], 5)

    def test_cost_formula_single_point(self):
        self._check_cost([(2, 3)], 6)

    @pytest.mark.parametrize("seed", range(10))
    def test_cost_formula_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        values = [tuple(rng.integers(0, 10, 2)) for _ in range(n)]
        self._check_cost(values, 10)

    def test_cost_bounds_from_paper(self):
        """C <= t1[A2], C <= t_S[A1], C <= min_i (t_i[A1] + t_i[A2])."""
        rng = np.random.default_rng(50)
        for _ in range(5):
            table = random_table(rng, [InterfaceKind.PQ] * 2, n=50, domain=12)
            if table.skyline_indices().size == 0:
                continue
            result = discover_pq2d(TopKInterface(table, k=1))
            skyline = sorted(result.skyline_values)
            bound = min(x + y for x, y in skyline)
            assert result.total_cost - 1 <= bound


class TestDenseDomains:
    def test_fully_occupied_domains_are_cheap(self):
        """With every domain value occupied the cost stays near 2|S| -- the
        practical argument of §5.1 for real PQ attributes."""
        domain = 8
        values = [(x, y) for x in range(domain) for y in range(domain)]
        table = _pq_table(values, domain)
        result = discover_pq2d(TopKInterface(table, k=1))
        assert result.skyline_values == {(0, 0)}
        assert result.total_cost == 1
