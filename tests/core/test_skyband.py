"""Tests for the K-skyband discovery extensions (§7.2)."""

import numpy as np
import pytest

from repro.core import pq_db_skyband, rq_db_skyband, sq_db_skyband
from repro.core.skyband import _domination_subspace_roots
from repro.hiddendb import InterfaceKind, Row, TopKInterface

from ..conftest import make_table, random_table, truth_band_values

K = InterfaceKind


class TestDominationSubspaceRoots:
    def test_roots_partition_dominated_region(self):
        domain_sizes = (4, 4)
        row = Row(0, (1, 2))
        roots = _domination_subspace_roots(row, domain_sizes)
        covered = set()
        for x in range(4):
            for y in range(4):
                matches = [r for r in roots if r.matches_values((x, y))]
                dominated = (x >= 1 and y >= 2) and (x, y) != (1, 2)
                assert len(matches) == (1 if dominated else 0), (x, y)
                if matches:
                    covered.add((x, y))
        assert (1, 2) not in covered

    def test_worst_corner_has_no_roots(self):
        roots = _domination_subspace_roots(Row(0, (3, 3)), (4, 4))
        assert roots == []


class TestRQSkyband:
    @pytest.mark.parametrize("band", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_ground_truth(self, band, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng, [K.RQ] * 3, n=120, domain=7, distinct=True)
        result = rq_db_skyband(TopKInterface(table, k=2), band)
        assert result.complete
        assert result.skyband_values == truth_band_values(table, band)

    def test_band_one_equals_skyline(self):
        rng = np.random.default_rng(4)
        table = random_table(rng, [K.RQ] * 2, n=60, domain=9, distinct=True)
        result = rq_db_skyband(TopKInterface(table, k=1), 1)
        assert result.skyband_values == truth_band_values(table, 1)

    def test_band_must_be_positive(self):
        table = make_table([(1, 1)], domain=3)
        with pytest.raises(ValueError):
            rq_db_skyband(TopKInterface(table, k=1), 0)

    def test_result_metadata(self):
        table = make_table([(0, 1), (1, 0)], domain=3)
        result = rq_db_skyband(TopKInterface(table, k=1), 2)
        assert result.algorithm == "RQ-DB-SKYBAND"
        assert result.band == 2
        assert "RQ-DB-SKYBAND" in repr(result)

    def test_budget_partial_is_flagged(self):
        """A budget-cut skyband run is flagged incomplete.  Unlike skyline
        discovery, partial skybands carry no subset guarantee: a tuple's
        dominators may be among the unretrieved tuples, so its band level
        can be underestimated."""
        rng = np.random.default_rng(5)
        table = random_table(rng, [K.RQ] * 3, n=200, domain=7, distinct=True)
        full = rq_db_skyband(TopKInterface(table, k=1), 2)
        assert full.total_cost > 2
        partial = rq_db_skyband(
            TopKInterface(table, k=1, budget=full.total_cost // 2), 2
        )
        assert not partial.complete
        assert partial.skyband_values  # still returns a best-effort band


class TestPQSkyband:
    @pytest.mark.parametrize("band,k", [(1, 1), (2, 2), (2, 1), (3, 2), (3, 4)])
    def test_matches_ground_truth(self, band, k):
        rng = np.random.default_rng(band * 10 + k)
        table = random_table(rng, [K.PQ] * 3, n=100, domain=6, distinct=True)
        result = pq_db_skyband(TopKInterface(table, k=k), band)
        assert result.complete
        assert result.skyband_values == truth_band_values(table, band)

    def test_band_larger_than_k_uses_point_queries(self):
        """band > k exercises the 0-D drain of §7.2."""
        rng = np.random.default_rng(40)
        table = random_table(rng, [K.PQ] * 2, n=60, domain=8, distinct=True)
        result = pq_db_skyband(TopKInterface(table, k=1), 3)
        assert result.skyband_values == truth_band_values(table, 3)

    def test_band_validation(self):
        table = make_table([(1, 1)], kinds=K.PQ, domain=3)
        with pytest.raises(ValueError):
            pq_db_skyband(TopKInterface(table, k=1), 0)


class TestSQSkyband:
    def test_complete_with_generous_k(self):
        rng = np.random.default_rng(50)
        table = random_table(rng, [K.SQ] * 2, n=80, domain=8, distinct=True)
        result = sq_db_skyband(TopKInterface(table, k=40), 2)
        if result.complete:
            assert result.skyband_values == truth_band_values(table, 2)

    def test_partial_results_are_sound(self):
        rng = np.random.default_rng(51)
        table = random_table(rng, [K.SQ] * 2, n=100, domain=8, distinct=True)
        result = sq_db_skyband(TopKInterface(table, k=2), 3)
        assert result.skyband_values <= truth_band_values(table, 3)

    def test_band_one_reduces_to_sq_db_sky(self):
        rng = np.random.default_rng(52)
        table = random_table(rng, [K.SQ] * 2, n=80, domain=8, distinct=True)
        result = sq_db_skyband(TopKInterface(table, k=1), 1)
        assert result.complete
        assert result.skyband_values == truth_band_values(table, 1)

    def test_band_validation(self):
        table = make_table([(1, 1)], kinds=K.SQ, domain=3)
        with pytest.raises(ValueError):
            sq_db_skyband(TopKInterface(table, k=1), 0)


class TestBandNesting:
    def test_bands_nest_across_levels(self):
        rng = np.random.default_rng(60)
        table = random_table(rng, [K.RQ] * 2, n=100, domain=9, distinct=True)
        previous: frozenset = frozenset()
        for band in (1, 2, 3):
            result = rq_db_skyband(TopKInterface(table, k=2), band)
            assert previous <= result.skyband_values
            previous = result.skyband_values
