"""Tests for the query-log analytics."""

from repro.core.base import DiscoverySession
from repro.core.rq import rq_db_sky
from repro.core.sq import sq_db_sky
from repro.core.stats import summarize_session
from repro.hiddendb import Query, TopKInterface

from ..conftest import make_table


def _session(values=((0, 9), (5, 5), (9, 0), (6, 6)), k=2):
    return DiscoverySession(TopKInterface(make_table(values, domain=10), k=k))


class TestSummarize:
    def test_empty_session(self):
        summary = summarize_session(_session())
        assert summary.total_queries == 0
        assert summary.empty_fraction == 0.0
        assert summary.redundancy == 0.0

    def test_counts_answer_categories(self):
        session = _session(k=2)
        session.issue(Query.select_all())  # overflow (4 rows > k)
        session.issue(Query.select_all().and_upper(0, 0))  # 1 row: underflow
        empty = Query.select_all().and_upper(0, 0).and_upper(1, 0)
        session.issue(empty)  # no (0, 0) tuple exists
        summary = summarize_session(session)
        assert summary.total_queries == 3
        assert summary.overflowing_answers == 1
        assert summary.underflowing_answers == 1
        assert summary.empty_answers == 1
        assert abs(summary.empty_fraction - 1 / 3) < 1e-9

    def test_redundancy_counts_repeats(self):
        session = _session(k=2)
        session.issue(Query.select_all())
        session.issue(Query.select_all())  # same two rows again
        summary = summarize_session(session)
        assert summary.rows_returned == 4
        assert summary.distinct_rows == 2
        assert summary.redundant_rows == 2
        assert summary.redundancy == 0.5

    def test_predicate_histogram(self):
        session = _session()
        session.issue(Query.select_all())
        session.issue(Query.select_all().and_upper(0, 5))
        session.issue(Query.select_all().and_upper(0, 5).and_upper(1, 5))
        summary = summarize_session(session)
        assert summary.predicate_histogram == {0: 1, 1: 1, 2: 1}
        assert summary.max_predicates == 2

    def test_as_rows_is_reportable(self):
        session = _session()
        session.issue(Query.select_all())
        rows = summarize_session(session).as_rows()
        assert any(row["metric"] == "total queries" for row in rows)


class TestAlgorithmSignatures:
    def test_sq_more_redundant_than_rq_on_anticorrelated_data(self):
        """The §4 story, quantified: SQ's overlapping branches return known
        tuples again and again; RQ's exclusive queries do not."""
        from repro.datagen.synthetic import correlated

        table = correlated(400, 3, domain=12, rho=-0.8, seed=2)
        sq_session = DiscoverySession(TopKInterface(table, k=1))
        sq_db_sky(sq_session)
        rq_session = DiscoverySession(TopKInterface(table, k=1))
        rq_db_sky(rq_session)
        sq_summary = summarize_session(sq_session)
        rq_summary = summarize_session(rq_session)
        assert sq_summary.redundancy > rq_summary.redundancy
        # Both runs nevertheless confirm the same skyline.
        sq_sky = {row.values for row in sq_session.confirmed_skyline()}
        rq_sky = {row.values for row in rq_session.confirmed_skyline()}
        assert sq_sky == rq_sky
