"""Tests for the plane-state machinery behind PQ-2DSUB-SKY."""

import numpy as np

from repro.core.pqsub import PlaneState, _block_rectangles, choose_line


class TestPlaneState:
    def test_everything_alive_initially(self):
        state = PlaneState(4, 5)
        assert state.any_alive()
        assert state.alive_mask().sum() == 20

    def test_close_witness_rect(self):
        state = PlaneState(4, 4)
        state.close_witness_rect(1, 2)
        alive = state.alive_mask()
        assert not alive[0, 0] and not alive[1, 2]
        assert alive[2, 0] and alive[0, 3]

    def test_add_dominator_kills_worse_cells(self):
        state = PlaneState(4, 4)
        state.add_dominator(1, 1, in_plane=False)
        alive = state.alive_mask()
        assert not alive[1, 1] and not alive[3, 3]
        assert alive[0, 3] and alive[3, 0]

    def test_in_plane_dominator_spares_then_closes_own_cell(self):
        state = PlaneState(4, 4)
        state.add_dominator(1, 1, in_plane=True)
        assert state.dominator_count(1, 1) == 0
        assert not state.alive_mask()[1, 1]  # closed as retrieved

    def test_rid_deduplication(self):
        state = PlaneState(4, 4, band=2)
        state.add_dominator(0, 0, in_plane=False, rid=7)
        state.add_dominator(0, 0, in_plane=False, rid=7)
        assert state.dominator_count(3, 3) == 1

    def test_distinct_rids_accumulate(self):
        state = PlaneState(4, 4, band=3)
        state.add_dominator(0, 0, in_plane=False, rid=1)
        state.add_dominator(0, 0, in_plane=False, rid=2)
        assert state.dominator_count(3, 3) == 2
        assert state.alive_mask()[3, 3]  # two dominators < band of three

    def test_band_controls_death_threshold(self):
        one = PlaneState(3, 3, band=1)
        two = PlaneState(3, 3, band=2)
        for state, rid in ((one, 1), (two, 1)):
            state.add_dominator(0, 0, in_plane=False, rid=rid)
        assert not one.alive_mask()[2, 2]
        assert two.alive_mask()[2, 2]

    def test_close_column_and_row(self):
        state = PlaneState(3, 3)
        state.close_column(1)
        state.close_row(2, x_lo=0, x_hi=0)
        alive = state.alive_mask()
        assert not alive[1].any()
        assert not alive[0, 2]
        assert alive[2, 2]

    def test_band_validation(self):
        import pytest

        with pytest.raises(ValueError):
            PlaneState(2, 2, band=0)


class TestBlockRectangles:
    def test_single_rectangle_for_uniform_region(self):
        alive = np.ones((3, 4), dtype=bool)
        rects = _block_rectangles(alive)
        assert len(rects) == 1
        assert rects[0].width == 3
        assert rects[0].height == 4

    def test_staircase_splits_into_blocks(self):
        # Columns 0-1 have floor row 2; columns 2-3 have floor row 0.
        alive = np.zeros((4, 4), dtype=bool)
        alive[0:2, 2:] = True
        alive[2:4, 0:2] = True
        rects = _block_rectangles(alive)
        assert len(rects) == 2
        assert rects[0].columns.tolist() == [0, 1]
        assert rects[1].columns.tolist() == [2, 3]

    def test_dead_columns_skipped(self):
        alive = np.zeros((4, 3), dtype=bool)
        alive[0, :] = True
        alive[3, :] = True
        rects = _block_rectangles(alive)
        spanned = sorted(c for rect in rects for c in rect.columns.tolist())
        assert spanned == [0, 3]


class TestChooseLine:
    def test_none_when_everything_dead(self):
        state = PlaneState(2, 2)
        state.close_witness_rect(1, 1)
        assert choose_line(state) is None

    def test_prefers_narrow_dimension(self):
        state = PlaneState(2, 6)
        axis, value = choose_line(state)
        assert axis == "x"
        assert value == 0

    def test_row_query_on_wide_region(self):
        state = PlaneState(6, 2)
        axis, value = choose_line(state)
        assert axis == "y"
        assert value == 0

    def test_skips_dead_lines(self):
        state = PlaneState(3, 9)
        state.close_column(0)
        axis, value = choose_line(state)
        assert (axis, value) == ("x", 1)
