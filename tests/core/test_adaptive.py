"""Units for the AIMD adaptive-window controller and its wiring.

The controller is pure control flow over an injectable clock, so every
behaviour -- slow-start ramp, epoch-guarded multiplicative decrease,
floor/ceiling clamps, the ``Retry-After`` hold-off -- is tested
deterministically, without a server or threads.  Wiring tests cover
``resolve_workers``, ``make_strategy(workers="auto")`` and the
``DiscoveryConfig`` validation surface.
"""

import pytest

from repro.core import DiscoveryConfig, EngineStats, make_strategy
from repro.core.adaptive import (
    DEFAULT_MAX_WORKERS,
    DEFAULT_MIN_WORKERS,
    AdaptiveWindow,
    resolve_workers,
)
from repro.core.engine import AsyncStrategy, PipelinedStrategy


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestAdaptiveWindow:
    def test_starts_at_min_size(self):
        window = AdaptiveWindow(min_size=2, max_size=16)
        assert window.size == 2

    def test_initial_is_clamped_to_bounds(self):
        assert AdaptiveWindow(min_size=2, max_size=8, initial=64).size == 8
        assert AdaptiveWindow(min_size=2, max_size=8, initial=0).size == 2

    def test_slow_start_grows_one_per_completion(self):
        # Before any congestion the window is in slow start: +1 per
        # clean completion, so it doubles per window's worth of acks.
        window = AdaptiveWindow(min_size=1, max_size=32)
        for _ in range(7):
            window.record_success()
        assert window.size == 8

    def test_full_clean_window_grows_width_by_about_one(self):
        # After the first back-off, AIMD's congestion avoidance:
        # +increase/window per completion, so roughly one full window of
        # clean completions adds one to the width.
        window = AdaptiveWindow(min_size=1, max_size=32, initial=8,
                                decrease=0.5)
        window.record_pressure()  # exits slow start; 8 -> 4
        assert window.size == 4
        for _ in range(5):
            window.record_success()
        assert window.size == 5

    def test_ramp_is_bounded_by_ceiling(self):
        window = AdaptiveWindow(min_size=1, max_size=8)
        for _ in range(1000):
            window.record_success()
        assert window.size == 8

    def test_pressure_shrinks_multiplicatively(self):
        window = AdaptiveWindow(min_size=1, max_size=32, initial=16,
                                decrease=0.5)
        assert window.record_pressure()
        assert window.size == 8
        # Default back-off is the gentler x0.75.
        gentle = AdaptiveWindow(min_size=1, max_size=32, initial=16)
        gentle.record_pressure()
        assert gentle.size == 12

    def test_pressure_burst_collapses_once_per_epoch(self):
        # A burst of simultaneous 429s out of one 16-wide window must
        # shrink the window once, not 16 times.
        window = AdaptiveWindow(min_size=1, max_size=32, initial=16,
                                decrease=0.5)
        assert window.record_pressure()
        for _ in range(15):
            assert not window.record_pressure()
        assert window.size == 8
        assert window.decreases == 1

    def test_success_reopens_the_congestion_epoch(self):
        window = AdaptiveWindow(min_size=1, max_size=32, initial=16,
                                decrease=0.5)
        window.record_pressure()
        window.record_success()
        assert window.record_pressure()
        assert window.size == 4

    def test_decrease_clamps_at_floor(self):
        window = AdaptiveWindow(min_size=3, max_size=32, initial=4)
        window.record_pressure()
        assert window.size == 3
        window.record_success()
        window.record_pressure()
        assert window.size == 3

    def test_events_are_reported_with_sizes(self):
        events = []
        window = AdaptiveWindow(
            min_size=1,
            max_size=3,
            on_event=lambda kind, size: events.append((kind, size)),
        )
        for _ in range(10):
            window.record_success()
        window.record_pressure()
        window.record_success()
        window.record_pressure()
        kinds = [kind for kind, _ in events]
        assert "increase" in kinds
        assert "ceiling" in kinds  # reached max_size exactly once
        assert kinds.count("ceiling") == 1
        assert "decrease" in kinds
        for kind, size in events:
            assert 1 <= size <= 3

    def test_floor_event_when_backoff_clamps(self):
        events = []
        window = AdaptiveWindow(
            min_size=2,
            max_size=8,
            initial=3,
            decrease=0.5,
            on_event=lambda kind, size: events.append(kind),
        )
        window.record_pressure()
        assert events == ["floor"]

    def test_retry_after_holds_dispatch_off(self):
        clock = FakeClock()
        window = AdaptiveWindow(min_size=1, max_size=8, clock=clock)
        assert window.dispatch_allowed()
        window.record_pressure(retry_after=1.5)
        assert not window.dispatch_allowed()
        assert window.holdoff_remaining() == pytest.approx(1.5)
        clock.now = 1.0
        assert window.holdoff_remaining() == pytest.approx(0.5)
        clock.now = 1.6
        assert window.dispatch_allowed()

    def test_repeated_pressure_extends_not_shrinks_holdoff(self):
        clock = FakeClock()
        window = AdaptiveWindow(min_size=1, max_size=8, clock=clock)
        window.record_pressure(retry_after=2.0)
        window.record_pressure(retry_after=0.1)  # same epoch, shorter hint
        assert window.holdoff_remaining() == pytest.approx(2.0)

    def test_poll_drains_the_signal_source(self):
        signals = [(0, 0.0), (3, 0.25)]
        clock = FakeClock()
        window = AdaptiveWindow(
            min_size=1,
            max_size=8,
            initial=8,
            decrease=0.5,
            clock=clock,
            signal_source=lambda: signals.pop(),
        )
        window.poll()  # (3, 0.25): pressure + hold-off
        assert window.size == 4
        assert window.holdoff_remaining() == pytest.approx(0.25)
        clock.now = 1.0
        window.poll()  # (0, 0.0): no signal, no change
        assert window.size == 4
        assert window.dispatch_allowed()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(min_size=0),
            dict(min_size=4, max_size=2),
            dict(increase=0.0),
            dict(decrease=0.0),
            dict(decrease=1.0),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveWindow(**kwargs)


class TestResolveWorkers:
    def test_fixed_width(self):
        assert resolve_workers(4) == (False, 4, 4, 4)

    def test_auto_defaults(self):
        assert resolve_workers("auto") == (
            True,
            DEFAULT_MAX_WORKERS,
            DEFAULT_MIN_WORKERS,
            DEFAULT_MAX_WORKERS,
        )

    def test_auto_with_bounds(self):
        assert resolve_workers("auto", 2, 12) == (True, 12, 2, 12)

    def test_bounds_require_auto(self):
        with pytest.raises(ValueError, match="require workers='auto'"):
            resolve_workers(4, 1, 8)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="positive int or 'auto'"):
            resolve_workers("fast")
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)
        with pytest.raises(ValueError, match="min_workers"):
            resolve_workers("auto", 0, 8)
        with pytest.raises(ValueError, match="max_workers"):
            resolve_workers("auto", 8, 2)


class TestStrategyWiring:
    @pytest.mark.parametrize("name,cls", [
        ("pipelined", PipelinedStrategy),
        ("async", AsyncStrategy),
    ])
    def test_auto_builds_adaptive_strategy(self, name, cls):
        strategy = make_strategy(name, workers="auto", max_workers=8)
        assert isinstance(strategy, cls)
        assert strategy.adaptive
        assert strategy.min_workers == 1
        assert strategy.max_workers == 8
        assert strategy.workers == 8  # pool sized for the ceiling

    def test_auto_defaults_to_pipelined(self):
        strategy = make_strategy(None, workers="auto")
        assert isinstance(strategy, PipelinedStrategy)
        assert strategy.adaptive

    def test_fixed_width_is_not_adaptive(self):
        strategy = make_strategy("pipelined", workers=4)
        assert not strategy.adaptive
        assert strategy.min_workers == strategy.max_workers == 4

    def test_serial_refuses_auto(self):
        with pytest.raises(ValueError, match="single-worker"):
            make_strategy("serial", workers="auto")


class TestConfigValidation:
    def test_auto_config_accepted(self):
        config = DiscoveryConfig(workers="auto", min_workers=2, max_workers=8)
        assert config.workers == "auto"

    def test_bounds_require_auto(self):
        with pytest.raises(ValueError, match="require workers='auto'"):
            DiscoveryConfig(workers=4, max_workers=8)

    def test_serial_refuses_auto(self):
        with pytest.raises(ValueError, match="single-worker"):
            DiscoveryConfig(strategy="serial", workers="auto")

    def test_rejects_arbitrary_strings(self):
        with pytest.raises(ValueError, match="positive int or 'auto'"):
            DiscoveryConfig(workers="many")

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="max_workers"):
            DiscoveryConfig(workers="auto", min_workers=8, max_workers=2)


class TestEngineStatsSurface:
    def test_as_dict_carries_window_fields(self):
        stats = EngineStats(
            strategy="pipelined", workers=8, mean_window=3.5,
            window_decreases=2,
        )
        payload = stats.as_dict()
        assert payload["mean_window"] == 3.5
        assert payload["window_decreases"] == 2
