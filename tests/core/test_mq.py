"""Tests for MQ-DB-SKY (mixed interfaces) and the universal dispatcher."""

import numpy as np
import pytest

from repro.core import discover, discover_mq
from repro.hiddendb import InterfaceKind, LinearRanker, TopKInterface

from ..conftest import make_table, random_table, truth_values

K = InterfaceKind


class TestDispatch:
    def test_pure_sq_routes_to_sq(self):
        table = make_table([(1, 1)], kinds=K.SQ, domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "SQ-DB-SKY"

    def test_pure_rq_routes_to_rq(self):
        table = make_table([(1, 1)], kinds=K.RQ, domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "RQ-DB-SKY"

    def test_sq_rq_mixture_routes_to_rq(self):
        table = make_table([(1, 1)], kinds=[K.SQ, K.RQ], domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "RQ-DB-SKY"

    def test_pure_pq_routes_to_pq(self):
        table = make_table([(1, 1, 1)], kinds=K.PQ, domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "PQ-DB-SKY"

    def test_two_d_pq_reports_2d_name(self):
        table = make_table([(1, 1)], kinds=K.PQ, domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "PQ-2D-SKY"

    def test_true_mixture_routes_to_mq(self):
        table = make_table([(1, 1)], kinds=[K.RQ, K.PQ], domain=4)
        assert discover(TopKInterface(table, k=1)).algorithm == "MQ-DB-SKY"


class TestRangeDominationGap:
    def test_point_beating_tuple_is_found(self):
        """The §6 motivating case: a tuple range-dominated by a discovered
        skyline tuple but better on a point attribute must not be missed."""
        # (range, point): (1, 3) is on the skyline; (2, 0) is range-dominated
        # by it but beats it on the point attribute.
        table = make_table([(1, 3), (2, 0), (3, 3)], kinds=[K.RQ, K.PQ],
                           domain=5)
        result = discover_mq(TopKInterface(table, k=1))
        assert result.skyline_values == {(1, 3), (2, 0)}

    def test_range_only_phase_would_miss_it(self):
        from repro.core import discover_rq

        # Under a ranker favouring the range attribute, (2, 0) is never the
        # top answer of any range-only query, so the range phase misses it.
        table = make_table([(1, 3), (2, 0), (3, 3)], kinds=[K.RQ, K.PQ],
                           domain=5)
        ranker = LinearRanker([1.0, 0.1])
        range_only = discover_rq(
            TopKInterface(table, ranker=ranker, k=1),
            branch_attributes=(0,), two_ended=(0,)
        )
        assert (2, 0) not in range_only.skyline_values
        full = discover_mq(TopKInterface(table, ranker=ranker, k=1))
        assert (2, 0) in full.skyline_values


class TestCompleteness:
    @pytest.mark.parametrize("kinds", [
        [K.RQ, K.PQ],
        [K.SQ, K.PQ],
        [K.RQ, K.RQ, K.PQ],
        [K.SQ, K.RQ, K.PQ],
        [K.RQ, K.PQ, K.PQ],
        [K.SQ, K.SQ, K.PQ, K.PQ],
    ])
    @pytest.mark.parametrize("k", [1, 3])
    def test_random_instances(self, kinds, k):
        rng = np.random.default_rng(len(kinds) * 100 + k)
        table = random_table(rng, kinds, n=180, domain=7)
        result = discover_mq(TopKInterface(table, k=k))
        assert result.skyline_values == truth_values(table)

    def test_degenerate_no_point_attributes(self):
        rng = np.random.default_rng(5)
        table = random_table(rng, [K.RQ, K.SQ], n=100, domain=8)
        result = discover_mq(TopKInterface(table, k=2))
        assert result.skyline_values == truth_values(table)

    def test_degenerate_no_range_attributes(self):
        rng = np.random.default_rng(6)
        table = random_table(rng, [K.PQ, K.PQ, K.PQ], n=100, domain=5)
        result = discover_mq(TopKInterface(table, k=2))
        assert result.skyline_values == truth_values(table)

    def test_empty_database(self):
        table = make_table(np.empty((0, 2), dtype=np.int64),
                           kinds=[K.RQ, K.PQ], domain=4)
        result = discover_mq(TopKInterface(table, k=1))
        assert result.skyline_values == frozenset()

    def test_price_ascending_default_ranking(self):
        """The live-site configuration: single-attribute default ranking."""
        rng = np.random.default_rng(7)
        table = random_table(rng, [K.RQ, K.RQ, K.PQ], n=200, domain=7)
        interface = TopKInterface(
            table, ranker=LinearRanker.single_attribute(0, 3), k=5
        )
        result = discover_mq(interface)
        assert result.skyline_values == truth_values(table)

    def test_deep_point_recursion(self):
        """Several PQ attributes force the recursive overflow resolution."""
        rng = np.random.default_rng(8)
        table = random_table(rng, [K.RQ, K.PQ, K.PQ, K.PQ], n=300, domain=4)
        result = discover_mq(TopKInterface(table, k=1))
        assert result.skyline_values == truth_values(table)

    def test_budget_partial_is_sound(self):
        rng = np.random.default_rng(9)
        table = random_table(rng, [K.RQ, K.PQ, K.PQ], n=250, domain=6)
        full = discover_mq(TopKInterface(table, k=1))
        if full.total_cost <= 2:
            pytest.skip("instance too easy")
        partial = discover_mq(
            TopKInterface(table, k=1, budget=full.total_cost // 2)
        )
        assert not partial.complete
        assert partial.skyline_values <= full.skyline_values
