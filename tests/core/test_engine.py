"""Tests for the frontier execution engine (repro.core.engine)."""

import numpy as np
import pytest

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.core import all_algorithms
from repro.core.base import DiscoverySession
from repro.core.engine import (
    AsyncStrategy,
    EngineStats,
    PipelinedStrategy,
    SerialStrategy,
    make_strategy,
)
from repro.datagen import diamonds_table
from repro.hiddendb import InterfaceKind, Query

from ..conftest import (
    PARITY_TABLES as TABLES,
    parity_run_params as run_params,
    parity_run_strategy_params,
    parity_strategy_params,
    random_table,
    truth_band_values,
    truth_values,
)

SQ = InterfaceKind.SQ
RQ = InterfaceKind.RQ
PQ = InterfaceKind.PQ


class TestEngineStats:
    def test_serial_run_attaches_stats(self):
        table = TABLES["rq3"]
        result = Discoverer().run(TopKInterface(table, k=5))
        assert isinstance(result.stats, EngineStats)
        assert result.stats.strategy == "serial"
        assert result.stats.workers == 1
        assert result.stats.issued == result.total_cost
        assert result.stats.deduped == 0
        assert result.stats.batched == 0
        assert result.stats.max_in_flight == 1

    def test_pipelined_run_reports_strategy_and_concurrency(self):
        table = TABLES["rq3"]
        result = Discoverer(DiscoveryConfig(workers=4)).run(
            TopKInterface(table, k=5), "baseline"
        )
        assert result.stats.strategy == "pipelined"
        assert result.stats.workers == 4
        assert result.stats.issued == result.total_cost
        # The crawl's region splits are independent waves: concurrency and
        # batching (TopKInterface.batch_query) must both show up.
        assert result.stats.max_in_flight > 1
        assert result.stats.batches > 0
        assert result.stats.batched <= result.stats.issued

    def test_stats_helpers(self):
        stats = EngineStats(issued=6, deduped=2, batched=4, batches=2)
        assert stats.duplicate_queries == 2
        assert stats.dedup_rate == pytest.approx(0.25)
        assert stats.as_dict()["issued"] == 6
        assert EngineStats().dedup_rate == 0.0

    def test_wall_time_and_throughput(self):
        table = TABLES["rq3"]
        result = Discoverer().run(TopKInterface(table, k=5))
        stats = result.stats
        assert stats.wall_time_s > 0.0
        assert stats.queries_per_sec == pytest.approx(
            stats.issued / stats.wall_time_s
        )
        payload = stats.as_dict()
        assert payload["wall_time_s"] == stats.wall_time_s
        assert payload["queries_per_sec"] == stats.queries_per_sec
        # Degenerate stats never divide by zero.
        assert EngineStats().queries_per_sec == 0.0


class TestStrategyParity:
    """Satellite: every algorithm x every strategy, identical results.

    Serial, pipelined and async all run the shared drain core, so the
    skyline value set and the billable query cost must be identical under
    every strategy (the remote half lives in tests/service).
    """

    @pytest.mark.parametrize(
        "algorithm,table,strategy,config", parity_run_strategy_params()
    )
    def test_in_process_parity(self, algorithm, table, strategy, config):
        serial = Discoverer().run(TopKInterface(table, k=5), algorithm)
        result = Discoverer(config).run(TopKInterface(table, k=5), algorithm)
        assert result.stats.strategy == strategy
        assert result.skyline_values == serial.skyline_values
        assert result.total_cost == serial.total_cost
        assert result.complete == serial.complete

    @pytest.mark.parametrize("strategy,config", parity_strategy_params())
    def test_parity_with_dedup(self, strategy, config):
        table = TABLES["sq3"]
        serial = Discoverer(DiscoveryConfig(dedup=True)).run(
            TopKInterface(table, k=5), "sq"
        )
        result = Discoverer(config.replace(dedup=True)).run(
            TopKInterface(table, k=5), "sq"
        )
        assert result.skyline_values == serial.skyline_values
        assert result.total_cost == serial.total_cost
        assert result.stats.deduped == serial.stats.deduped

    @pytest.mark.parametrize("strategy,config", parity_strategy_params())
    def test_skyband_parity(self, strategy, config):
        table = TABLES["sq3"]
        serial = Discoverer().skyband(TopKInterface(table, k=5), 2, "sq")
        result = Discoverer(config).skyband(
            TopKInterface(table, k=5), 2, "sq"
        )
        assert result.skyband_values == serial.skyband_values
        assert result.total_cost == serial.total_cost


class TestDedup:
    def test_dedup_preserves_results_and_splits_cost(self):
        # SQ's overlapping tree re-derives identical queries through
        # different branch orders; with dedup on each distinct query is
        # billed once and the repeats surface as stats.deduped.
        table = diamonds_table(150, seed=3)
        plain = Discoverer().run(TopKInterface(table, k=10), "sq")
        deduped = Discoverer(DiscoveryConfig(dedup=True)).run(
            TopKInterface(table, k=10), "sq"
        )
        assert deduped.skyline_values == plain.skyline_values
        assert deduped.stats.deduped > 0
        assert (
            deduped.total_cost + deduped.stats.deduped == plain.total_cost
        )

    def test_dedup_off_by_default_for_discovery(self):
        table = TABLES["sq3"]
        result = Discoverer().run(TopKInterface(table, k=5), "sq")
        assert result.stats.deduped == 0

    def test_memo_hits_do_not_consume_budget(self):
        table = diamonds_table(150, seed=3)
        reference = Discoverer(DiscoveryConfig(dedup=True)).run(
            TopKInterface(table, k=10), "sq"
        )
        # A budget of exactly the deduped billable cost completes: memo
        # hits are free and must not trip the session allowance.
        result = Discoverer(
            DiscoveryConfig(dedup=True, budget=reference.total_cost)
        ).run(TopKInterface(table, k=10), "sq")
        assert result.complete
        assert result.total_cost == reference.total_cost


class TestSkybandSharedMemo:
    """Satellite regression: overlapping subspace roots dedupe.

    RQ-DB-SKYBAND re-runs the range tree over the domination subspace of
    every band tuple; neighbouring subspaces overlap and re-derive many
    identical queries.  The session-shared memoizer must count each
    distinct query once.
    """

    @pytest.fixture(scope="class")
    def diamonds(self):
        # Large enough that value collisions across domination subspaces
        # produce syntactically identical queries (the price/carat domains
        # are huge, so small catalogues never repeat a query).
        return diamonds_table(800, seed=3)

    def test_diamonds_band3_dedupes_cross_subspace_queries(self, diamonds):
        interface = TopKInterface(diamonds, k=10)
        result = Discoverer().skyband(interface, 3)
        assert result.algorithm == "RQ-DB-SKYBAND"
        assert result.stats.duplicate_queries > 0
        assert result.total_cost == result.stats.issued

    def test_dedup_savings_do_not_change_the_band(self, diamonds):
        deduped = Discoverer().skyband(TopKInterface(diamonds, k=10), 3)
        rebilled = Discoverer(DiscoveryConfig(dedup=False)).skyband(
            TopKInterface(diamonds, k=10), 3
        )
        assert deduped.skyband_values == rebilled.skyband_values
        assert deduped.skyband_values == truth_band_values(diamonds, 3)
        # Every absorbed duplicate is a query the un-memoized run re-bills.
        assert rebilled.stats.deduped == 0
        assert (
            deduped.total_cost + deduped.stats.duplicate_queries
            == rebilled.total_cost
        )
        assert deduped.total_cost < rebilled.total_cost


class TestFrontierOrdering:
    def test_serial_fifo_preserves_submission_order(self):
        table = TABLES["rq3"]
        session = DiscoverySession(TopKInterface(table, k=5))
        seen = []
        frontier = session.frontier()
        for value in (3, 5, 7):
            query = Query.select_all().and_upper(0, value)
            frontier.add(query, lambda r, v=value: seen.append(v))
        frontier.drain()
        assert seen == [3, 5, 7]

    def test_serial_lifo_pops_latest_first(self):
        table = TABLES["rq3"]
        session = DiscoverySession(TopKInterface(table, k=5))
        seen = []
        frontier = session.frontier(lifo=True)
        for value in (3, 5, 7):
            query = Query.select_all().and_upper(0, value)
            frontier.add(query, lambda r, v=value: seen.append(v))
        frontier.drain()
        assert seen == [7, 5, 3]

    @pytest.mark.parametrize(
        "strategy",
        [PipelinedStrategy(workers=4), AsyncStrategy(workers=4)],
        ids=["pipelined", "async"],
    )
    def test_concurrent_strategies_merge_in_dispatch_order(self, strategy):
        table = TABLES["rq3"]
        session = DiscoverySession(TopKInterface(table, k=5), strategy=strategy)
        seen = []
        frontier = session.frontier()
        for value in range(8):
            query = Query.select_all().and_upper(0, value)
            frontier.add(query, lambda r, v=value: seen.append(v))
        frontier.drain()
        assert seen == list(range(8))

    def test_callbacks_may_extend_the_frontier(self):
        table = TABLES["rq3"]
        session = DiscoverySession(
            TopKInterface(table, k=5), strategy=PipelinedStrategy(workers=2)
        )
        seen = []
        frontier = session.frontier()

        def chain(depth):
            def on_result(result):
                seen.append(depth)
                if depth < 4:
                    frontier.add(
                        Query.select_all().and_upper(0, depth + 2),
                        chain(depth + 1),
                    )

            return on_result

        frontier.add(Query.select_all().and_upper(0, 1), chain(0))
        frontier.drain()
        assert seen == [0, 1, 2, 3, 4]

    def test_fetch_routes_through_the_engine(self):
        table = TABLES["rq3"]
        session = DiscoverySession(TopKInterface(table, k=5), dedup=True)
        frontier = session.frontier()
        first = frontier.fetch(Query.select_all())
        again = frontier.fetch(Query.select_all())
        assert again is first  # memo replay
        assert session.engine_stats.deduped == 1
        assert session.cost == 1


class TestStrategyValidation:
    def test_pipelined_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PipelinedStrategy(workers=0)
        with pytest.raises(ValueError):
            PipelinedStrategy(batch_size=0)
        with pytest.raises(ValueError):
            AsyncStrategy(workers=0)
        with pytest.raises(ValueError):
            AsyncStrategy(batch_size=0)

    def test_config_validates_engine_fields(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(workers=0)
        with pytest.raises(ValueError):
            DiscoveryConfig(batch_size=0)
        with pytest.raises(ValueError):
            DiscoveryConfig(strategy="warp-drive")
        # Serial is single-worker by definition; asking for more is a
        # contradiction, not a silent downgrade.
        with pytest.raises(ValueError):
            DiscoveryConfig(strategy="serial", workers=4)

    def test_config_selects_strategy(self):
        table = TABLES["rq3"]
        serial = DiscoverySession.from_config(
            TopKInterface(table, k=5), DiscoveryConfig()
        )
        piped = DiscoverySession.from_config(
            TopKInterface(table, k=5), DiscoveryConfig(workers=3)
        )
        explicit = DiscoverySession.from_config(
            TopKInterface(table, k=5), DiscoveryConfig(strategy="async", workers=6)
        )
        assert isinstance(serial.engine.strategy, SerialStrategy)
        assert isinstance(piped.engine.strategy, PipelinedStrategy)
        assert piped.engine.strategy.workers == 3
        assert isinstance(explicit.engine.strategy, AsyncStrategy)
        assert explicit.engine.strategy.workers == 6

    def test_make_strategy_resolution(self):
        # None keeps the historical workers switch (back compat).
        assert isinstance(make_strategy(None, workers=1), SerialStrategy)
        assert isinstance(make_strategy(None, workers=2), PipelinedStrategy)
        assert isinstance(make_strategy("serial"), SerialStrategy)
        piped = make_strategy("pipelined", workers=1, batch_size=4)
        assert isinstance(piped, PipelinedStrategy) and piped.workers == 1
        asy = make_strategy("async", workers=16, batch_size=4)
        assert isinstance(asy, AsyncStrategy)
        assert asy.workers == 16 and asy.batch_size == 4
        with pytest.raises(ValueError):
            make_strategy("serial", workers=2)
        with pytest.raises(ValueError):
            make_strategy("nope")


class TestPipelinedBudgets:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_session_budget_never_overshoots(self, workers):
        rng = np.random.default_rng(3)
        table = random_table(rng, [RQ, RQ, RQ], 400, 12)
        full = Discoverer(DiscoveryConfig(workers=workers)).run(
            TopKInterface(table, k=1), "baseline"
        )
        budget = full.total_cost // 3
        partial = Discoverer(
            DiscoveryConfig(workers=workers, budget=budget)
        ).run(TopKInterface(table, k=1), "baseline")
        assert not partial.complete
        assert partial.total_cost <= budget

    def test_async_session_budget_never_overshoots(self):
        rng = np.random.default_rng(3)
        table = random_table(rng, [RQ, RQ, RQ], 400, 12)
        full = Discoverer(DiscoveryConfig(strategy="async", workers=4)).run(
            TopKInterface(table, k=1), "baseline"
        )
        budget = full.total_cost // 3
        partial = Discoverer(
            DiscoveryConfig(strategy="async", workers=4, budget=budget)
        ).run(TopKInterface(table, k=1), "baseline")
        assert not partial.complete
        assert partial.total_cost <= budget

    def test_interface_budget_yields_partial_result(self):
        table = diamonds_table(150, seed=3)
        interface = TopKInterface(table, k=10, budget=50)
        result = Discoverer(DiscoveryConfig(workers=4)).run(interface, "sq")
        assert not result.complete
        assert result.total_cost <= 50

    def test_sufficient_budget_completes_pipelined_too(self):
        # Regression: budget accounting must not double-count in-flight
        # queries -- a budget that provably suffices for the serial run
        # (it equals the serial cost) must also complete pipelined, since
        # both strategies issue the same query set.
        table = diamonds_table(150, seed=3)
        serial = Discoverer().run(TopKInterface(table, k=10), "sq")
        piped = Discoverer(
            DiscoveryConfig(workers=4, budget=serial.total_cost)
        ).run(TopKInterface(table, k=10), "sq")
        assert piped.complete
        assert piped.total_cost == serial.total_cost
        assert piped.skyline_values == serial.skyline_values

    def test_mid_batch_budget_failure_keeps_billed_answers(self):
        # Regression: when the interface budget dies inside one
        # batch_query round trip, the answers billed before the failure
        # must still be recorded (partial_results), not discarded.
        table = diamonds_table(150, seed=3)
        interface = TopKInterface(table, k=10, budget=10)
        result = Discoverer(
            DiscoveryConfig(workers=1, batch_size=16)
        ).run(interface, "sq")
        assert not result.complete
        assert interface.queries_issued == 10
        assert result.total_cost == 10
        assert len(result.retrieved) > 0

    def test_correct_skyline_found_within_partial_runs(self):
        # The pipelined partial prefix may differ from the serial one, but
        # every retrieved tuple must still come from real answers.
        rng = np.random.default_rng(7)
        table = random_table(rng, [RQ, RQ], 300, 12)
        truth = truth_values(table)
        result = Discoverer(DiscoveryConfig(workers=4, budget=5)).run(
            TopKInterface(table, k=3), "sq"
        )
        table_values = {
            tuple(int(v) for v in row) for row in table.matrix
        }
        assert set(result.skyline_values) <= table_values
        full = Discoverer(DiscoveryConfig(workers=4)).run(
            TopKInterface(table, k=3), "sq"
        )
        assert full.skyline_values == truth
