"""Tests for the BASELINE crawler."""

import numpy as np
import pytest

from repro.core import baseline_skyline, crawl_all, discover_rq
from repro.core.base import DiscoverySession
from repro.hiddendb import InterfaceKind, Query, TopKInterface

from ..conftest import make_table, random_table, truth_values

K = InterfaceKind


class TestCrawlCompleteness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 5])
    def test_crawl_retrieves_every_tuple(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, [K.RQ] * 3, n=120, domain=10,
                             distinct=True)
        interface = TopKInterface(table, k=k)
        session = DiscoverySession(interface)
        complete = crawl_all(session)
        if k > 1:
            assert complete
        # At k = 1 a fully-specified cell always *looks* overflowing (the
        # exactly-k proxy), so the crawl cannot certify completeness -- but
        # it still retrieves every tuple.
        assert len(session.retrieved_rows) == table.n

    def test_crawl_with_pq_attribute(self):
        rng = np.random.default_rng(9)
        table = random_table(rng, [K.RQ, K.PQ], n=30, domain=6,
                             distinct=True)
        session = DiscoverySession(TopKInterface(table, k=2))
        assert crawl_all(session)
        assert len(session.retrieved_rows) == table.n

    def test_crawl_pure_pq(self):
        rng = np.random.default_rng(10)
        table = random_table(rng, [K.PQ, K.PQ], n=30, domain=6,
                             distinct=True)
        session = DiscoverySession(TopKInterface(table, k=2))
        assert crawl_all(session)
        assert len(session.retrieved_rows) == table.n

    def test_crawl_scoped_to_root(self):
        table = make_table([(0, 0), (3, 3), (7, 7)], domain=10)
        session = DiscoverySession(TopKInterface(table, k=1))
        root = Query.select_all().and_upper(0, 5)
        crawl_all(session, root=root)
        assert {row.values for row in session.retrieved_rows} == {(0, 0), (3, 3)}

    def test_duplicate_pileup_reports_incomplete(self):
        # 5 identical tuples through a top-2 interface: no split can separate
        # them, so the crawl must flag incompleteness.
        table = make_table([(1, 1)] * 5, domain=3)
        session = DiscoverySession(TopKInterface(table, k=2))
        assert not crawl_all(session)

    def test_empty_database(self):
        table = make_table(np.empty((0, 2), dtype=np.int64), domain=4)
        session = DiscoverySession(TopKInterface(table, k=1))
        assert crawl_all(session)
        assert session.cost == 1


class TestBaselineSkyline:
    def test_skyline_matches_truth(self):
        rng = np.random.default_rng(11)
        table = random_table(rng, [K.RQ] * 3, n=150, domain=8)
        result = baseline_skyline(TopKInterface(table, k=5))
        assert result.skyline_values == truth_values(table)
        assert result.algorithm == "BASELINE"

    def test_cost_scales_with_n_not_skyline(self):
        rng = np.random.default_rng(12)
        small = random_table(rng, [K.RQ] * 2, n=100, domain=50)
        large = random_table(rng, [K.RQ] * 2, n=800, domain=50)
        cost_small = baseline_skyline(TopKInterface(small, k=5)).total_cost
        cost_large = baseline_skyline(TopKInterface(large, k=5)).total_cost
        assert cost_large > 3 * cost_small

    def test_baseline_loses_to_rq_discovery(self):
        """The headline comparison of Figures 13/22/24."""
        rng = np.random.default_rng(13)
        table = random_table(rng, [K.RQ] * 3, n=600, domain=12)
        k = 10
        rq_cost = discover_rq(TopKInterface(table, k=k)).total_cost
        baseline_cost = baseline_skyline(TopKInterface(table, k=k)).total_cost
        assert baseline_cost > 2 * rq_cost

    def test_budget_cutoff_yields_partial(self):
        rng = np.random.default_rng(14)
        table = random_table(rng, [K.RQ] * 3, n=400, domain=10)
        result = baseline_skyline(TopKInterface(table, k=2, budget=10))
        assert not result.complete
        assert len(result.retrieved) <= 20
