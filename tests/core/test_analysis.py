"""Tests for the closed-form cost analysis (§3.2, §5.1)."""

from fractions import Fraction

import pytest

from repro.core import analysis


class TestExpectedCost:
    def test_base_cases(self):
        assert analysis.expected_cost_recurrence(3, 0) == 1
        # C_1 = m + 1: the root plus m empty branches.
        assert analysis.expected_cost_recurrence(3, 1) == 4
        assert analysis.expected_cost_recurrence(8, 1) == 9

    def test_paper_m2_closed_form(self):
        """The paper states E(C_s) = 2s for m = 2."""
        for s in range(1, 30):
            assert analysis.expected_cost_closed_form(2, s) == 2 * s

    @pytest.mark.parametrize("m", range(2, 9))
    def test_recurrence_solves_to_closed_form_plus_one(self, m):
        """Eq. (5) is the exact solution of Eq. (4) minus 1 (see module doc)."""
        for s in range(0, 30):
            recurrence = analysis.expected_cost_recurrence(m, s)
            closed = analysis.expected_cost_closed_form(m, s)
            if s == 0:
                assert recurrence == 1
            else:
                assert recurrence == closed + 1, (m, s)

    def test_m1_special_case(self):
        # Recurrence for m = 1: E(C_1) = 2, E(C_2) = 5/2, ...; the closed
        # form keeps the uniform "recurrence minus one" convention.
        assert analysis.expected_cost_recurrence(1, 1) == 2
        assert analysis.expected_cost_recurrence(1, 2) == Fraction(5, 2)
        for s in range(1, 10):
            assert analysis.expected_cost_closed_form(1, s) == (
                analysis.expected_cost_recurrence(1, s) - 1
            )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            analysis.expected_cost_recurrence(0, 3)
        with pytest.raises(ValueError):
            analysis.expected_cost_recurrence(2, -1)
        with pytest.raises(ValueError):
            analysis.expected_cost_closed_form(0, 1)

    def test_monotone_in_s(self):
        values = [analysis.expected_cost_recurrence(4, s) for s in range(15)]
        assert values == sorted(values)


class TestBounds:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_binomial_bound_dominates_expectation(self, m):
        """Eq. (9): E(C_s) <= C(s + m, m) (+1 for the off-by-one)."""
        for s in range(0, 25):
            expected = analysis.expected_cost_recurrence(m, s)
            assert expected <= Fraction(analysis.binomial_cost_bound(m, s)) + 1

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_eq10_bound_dominates_binomial(self, m):
        """Eq. (10): C(s + m, m) <= (e + e s / m)^m."""
        for s in range(0, 25):
            assert analysis.binomial_cost_bound(m, s) <= (
                analysis.average_case_bound(m, s) + 1e-9
            )

    def test_average_far_below_worst_case(self):
        """The Figure-4 claim: orders of magnitude apart for m = 8."""
        average = float(analysis.expected_cost_closed_form(8, 19))
        worst = analysis.sq_worst_case_bound(8, 19)
        assert worst / average > 1e6

    def test_rq_bound_caps_at_n(self):
        assert analysis.rq_worst_case_bound(3, 10, n=50) == 150
        assert analysis.rq_worst_case_bound(3, 2, n=10**9) == 3 * 2 ** 4

    def test_sq_lower_bound(self):
        assert analysis.sq_lower_bound_order(3, 6) == 20  # C(6, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            analysis.average_case_bound(0, 1)
        with pytest.raises(ValueError):
            analysis.sq_worst_case_bound(2, -1)
        with pytest.raises(ValueError):
            analysis.rq_worst_case_bound(2, 1, -1)
        with pytest.raises(ValueError):
            analysis.sq_lower_bound_order(0, 1)


class TestPQ2DCost:
    def test_staircase(self):
        # Skyline {(0,4), (2,2), (4,0)} over 5x5: gaps contribute
        # min(0,0) + min(2,2) + min(2,2) + min(0,0) = 4.
        assert analysis.pq_2d_cost([(0, 4), (2, 2), (4, 0)], 5, 5) == 4

    def test_single_point(self):
        # Skyline {(2,3)} over 6x6: min(2, 2) + min(3, 3) = 5.
        assert analysis.pq_2d_cost([(2, 3)], 6, 6) == 5

    def test_empty_skyline(self):
        assert analysis.pq_2d_cost([], 4, 7) == 3

    def test_rejects_non_skyline_points(self):
        with pytest.raises(ValueError):
            analysis.pq_2d_cost([(0, 0), (1, 1)], 4, 4)

    def test_rejects_empty_domains(self):
        with pytest.raises(ValueError):
            analysis.pq_2d_cost([(0, 0)], 0, 4)


class TestPQDBBound:
    def test_additive_times_multiplicative(self):
        # Domains (11, 12, 3, 4): plane = 12 + 11, others 3 * 4.
        assert analysis.pq_db_cost_bound((11, 12, 3, 4)) == 23 * 12

    def test_two_attributes(self):
        assert analysis.pq_db_cost_bound((5, 9)) == 14

    def test_validation(self):
        with pytest.raises(ValueError):
            analysis.pq_db_cost_bound((5,))
