"""Tests for the discovery session and result machinery."""

import pytest

from repro.core.base import DiscoverySession, run_with_budget_guard
from repro.hiddendb import Query, TopKInterface

from ..conftest import make_table


def _interface(values=((0, 9), (5, 5), (9, 0), (6, 6)), k=2, **kwargs):
    return TopKInterface(make_table(values, domain=10), k=k, **kwargs)


class TestDiscoverySession:
    def test_cost_is_relative_to_session_start(self):
        interface = _interface()
        interface.query(Query.select_all())  # pre-session traffic
        session = DiscoverySession(interface)
        assert session.cost == 0
        session.issue(Query.select_all())
        assert session.cost == 1
        assert interface.queries_issued == 2

    def test_first_seen_records_earliest_cost(self):
        session = DiscoverySession(_interface())
        session.issue(Query.select_all())
        session.issue(Query.select_all())
        result = session.result("X")
        assert all(entry.cost == 1 for entry in result.trace)

    def test_retrieved_rows_deduplicated(self):
        session = DiscoverySession(_interface())
        session.issue(Query.select_all())
        session.issue(Query.select_all())
        rids = [row.rid for row in session.retrieved_rows]
        assert len(rids) == len(set(rids))

    def test_has_retrieved(self):
        session = DiscoverySession(_interface(k=4))
        assert not session.has_retrieved(0)
        session.issue(Query.select_all())
        assert session.has_retrieved(0)

    def test_base_query_applied_to_every_issue(self):
        table = make_table(
            [(1,), (2,)],
            filters={"city": [0, 1]},
            filter_domains={"city": 2},
        )
        interface = TopKInterface(table, k=5)
        base = Query.select_all().and_filter("city", 1)
        session = DiscoverySession(interface, base)
        result = session.issue(Query.select_all())
        assert [row.values for row in result.rows] == [(2,)]

    def test_contradictory_base_raises(self):
        session = DiscoverySession(_interface(), Query.select_all().and_upper(0, 2))
        with pytest.raises(ValueError):
            session.issue(Query.select_all().and_lower(0, 5, 10))

    def test_log_records_results(self):
        session = DiscoverySession(_interface())
        session.issue(Query.select_all())
        assert len(session.log) == 1

    def test_confirmed_skyline_filters_dominated(self):
        session = DiscoverySession(_interface(k=4))
        session.issue(Query.select_all())
        values = {row.values for row in session.confirmed_skyline()}
        assert values == {(0, 9), (5, 5), (9, 0)}


class TestDiscoveryResult:
    def _result(self):
        session = DiscoverySession(_interface(k=4))
        session.issue(Query.select_all())
        return session.result("TEST")

    def test_skyline_excludes_dominated_retrievals(self):
        result = self._result()
        assert result.skyline_values == {(0, 9), (5, 5), (9, 0)}
        assert result.skyline_size == 3

    def test_trace_is_sorted_and_covers_skyline(self):
        result = self._result()
        costs = [entry.cost for entry in result.trace]
        assert costs == sorted(costs)
        assert {entry.row.values for entry in result.trace} == result.skyline_values

    def test_discovery_curve_monotone(self):
        result = self._result()
        curve = result.discovery_curve()
        assert curve == [(1, 3)]

    def test_discovered_within(self):
        result = self._result()
        assert len(result.discovered_within(0)) == 0
        assert len(result.discovered_within(1)) == 3

    def test_cost_of_discovery_bounds(self):
        result = self._result()
        assert result.cost_of_discovery(1) == 1
        with pytest.raises(IndexError):
            result.cost_of_discovery(4)
        with pytest.raises(IndexError):
            result.cost_of_discovery(0)

    def test_repr_mentions_algorithm(self):
        assert "TEST" in repr(self._result())


class TestBudgetGuard:
    def test_budget_exhaustion_yields_partial_result(self):
        interface = _interface(k=1, budget=2)

        def body(session):
            for _ in range(10):
                session.issue(Query.select_all())

        result = run_with_budget_guard(interface, "X", body)
        assert not result.complete
        assert result.total_cost == 2
        assert len(result.retrieved) == 1

    def test_normal_completion(self):
        result = run_with_budget_guard(
            _interface(), "X", lambda session: session.issue(Query.select_all())
        )
        assert result.complete
