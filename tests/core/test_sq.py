"""Tests for SQ-DB-SKY (one-ended range interfaces)."""

import numpy as np
import pytest

from repro.core import discover_sq
from repro.core.analysis import expected_cost_recurrence
from repro.hiddendb import (
    InterfaceKind,
    LexicographicRanker,
    LinearRanker,
    Query,
    RandomSkylineRanker,
    TopKInterface,
)

from ..conftest import make_table, random_table, truth_values


class TestPaperExample:
    def test_figure_2_skyline(self, simple_table):
        """The running example of Figures 2-3: t1, t3, t4 are on the skyline."""
        sq = simple_table.with_kinds(
            {a.name: InterfaceKind.SQ for a in simple_table.schema.ranking_attributes}
        )
        interface = TopKInterface(sq, k=1)
        result = discover_sq(interface)
        assert result.skyline_values == {(5, 1, 9), (1, 3, 7), (3, 2, 3)}
        assert result.complete


class TestCompleteness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3])
    def test_random_instances(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, [InterfaceKind.SQ] * 3, n=150, domain=8)
        interface = TopKInterface(table, k=k)
        result = discover_sq(interface)
        assert result.skyline_values == truth_values(table)

    @pytest.mark.parametrize(
        "ranker",
        [LinearRanker(), LexicographicRanker(), RandomSkylineRanker(seed=2)],
    )
    def test_any_domination_consistent_ranker(self, ranker):
        rng = np.random.default_rng(10)
        table = random_table(rng, [InterfaceKind.SQ] * 3, n=120, domain=7)
        interface = TopKInterface(table, ranker=ranker, k=1)
        result = discover_sq(interface)
        assert result.skyline_values == truth_values(table)

    def test_empty_database(self):
        table = make_table(np.empty((0, 2), dtype=np.int64), domain=5,
                           kinds=InterfaceKind.SQ)
        result = discover_sq(TopKInterface(table, k=1))
        assert result.skyline_values == frozenset()
        assert result.total_cost == 1  # SELECT * only

    def test_single_tuple(self):
        table = make_table([(2, 3)], domain=5, kinds=InterfaceKind.SQ)
        result = discover_sq(TopKInterface(table, k=1))
        assert result.skyline_values == {(2, 3)}

    def test_duplicated_skyline_vectors(self):
        table = make_table([(1, 1), (1, 1), (2, 2)], domain=5,
                           kinds=InterfaceKind.SQ)
        result = discover_sq(TopKInterface(table, k=1))
        assert result.skyline_values == {(1, 1)}

    def test_with_base_query_filter(self):
        table = make_table(
            [(0, 5), (5, 0), (3, 3)],
            kinds=InterfaceKind.SQ,
            domain=10,
            filters={"city": [0, 1, 1]},
            filter_domains={"city": 2},
        )
        base = Query.select_all().and_filter("city", 1)
        result = discover_sq(TopKInterface(table, k=1), base_query=base)
        assert result.skyline_values == {(5, 0), (3, 3)}


class TestQueryCostProperties:
    def test_single_skyline_costs_m_plus_one(self):
        # A sole skyline tuple with non-zero values: root plus m empty
        # branches, the paper's C_1 = m + 1.
        table = make_table([(1, 1, 1), (2, 2, 2)], domain=5,
                           kinds=InterfaceKind.SQ)
        result = discover_sq(TopKInterface(table, k=1))
        assert result.total_cost == 4

    def test_larger_k_never_hurts(self):
        rng = np.random.default_rng(3)
        table = random_table(rng, [InterfaceKind.SQ] * 3, n=300, domain=10)
        costs = []
        for k in (1, 5, 20):
            result = discover_sq(TopKInterface(table, k=k))
            assert result.skyline_values == truth_values(table)
            costs.append(result.total_cost)
        assert costs[0] >= costs[1] >= costs[2]

    def test_average_case_recurrence_matches_simulation(self):
        """Monte-Carlo check of Eq. (4) under the random-skyline ranker.

        Uses an anti-chain of skyline tuples with all values >= 1 so every
        branch is issuable, matching the counting convention of the analysis.
        """
        m, s = 2, 3
        # Skyline {(1,4), (2,3), (3,2), (4,1)} restricted to s = 3 points.
        table = make_table([(1, 4), (2, 3), (3, 2)], domain=6,
                           kinds=InterfaceKind.SQ)
        expected = float(expected_cost_recurrence(m, s))
        costs = []
        for seed in range(400):
            interface = TopKInterface(
                table, ranker=RandomSkylineRanker(seed=seed), k=1
            )
            costs.append(discover_sq(interface).total_cost)
        average = sum(costs) / len(costs)
        assert abs(average - expected) / expected < 0.08

    def test_anytime_trace_prefixes_are_true_skyline(self):
        rng = np.random.default_rng(8)
        table = random_table(rng, [InterfaceKind.SQ] * 3, n=200, domain=10)
        result = discover_sq(TopKInterface(table, k=2))
        truth = truth_values(table)
        for entry in result.trace:
            assert entry.row.values in truth

    def test_budget_exhaustion_is_partial_but_sound(self):
        rng = np.random.default_rng(9)
        table = random_table(rng, [InterfaceKind.SQ] * 4, n=400, domain=12)
        full = discover_sq(TopKInterface(table, k=1))
        budget = max(full.total_cost // 3, 1)
        partial = discover_sq(TopKInterface(table, k=1, budget=budget))
        assert not partial.complete
        assert partial.skyline_values <= full.skyline_values
