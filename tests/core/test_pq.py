"""Tests for PQ-DB-SKY (higher-dimensional point interfaces)."""

import numpy as np
import pytest

from repro.core import discover_pq
from repro.core.pq import choose_plane_attributes, plane_combinations
from repro.hiddendb import (
    InterfaceKind,
    LexicographicRanker,
    TopKInterface,
)

from ..conftest import make_table, random_table, truth_values


class TestPlaneSelection:
    def test_largest_domains_chosen(self):
        assert choose_plane_attributes((3, 11, 4, 12)) == (1, 3)

    def test_tie_breaks_by_index(self):
        assert choose_plane_attributes((5, 5, 5)) == (0, 1)

    def test_requires_two_attributes(self):
        with pytest.raises(ValueError):
            choose_plane_attributes((4,))

    def test_combinations_sorted_by_dominance_sum(self):
        combos = plane_combinations((2, 9, 9, 3), others=[0, 3])
        sums = [sum(combo) for combo in combos]
        assert sums == sorted(sums)
        assert combos[0] == (0, 0)
        assert len(combos) == 6

    def test_no_other_attributes_yields_single_plane(self):
        assert plane_combinations((9, 9), others=[]) == [()]


class TestCorrectness:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 3])
    def test_random_instances(self, m, k):
        rng = np.random.default_rng(m * 10 + k)
        table = random_table(rng, [InterfaceKind.PQ] * m, n=120, domain=6)
        result = discover_pq(TopKInterface(table, k=k))
        assert result.skyline_values == truth_values(table)

    def test_single_attribute_database(self):
        table = make_table([(3,), (1,), (4,), (1,)], kinds=InterfaceKind.PQ,
                           domain=6)
        result = discover_pq(TopKInterface(table, k=1))
        assert result.skyline_values == {(1,)}
        # Probes 0 (empty) then 1 (hit): exactly two queries.
        assert result.total_cost == 2

    def test_empty_database(self):
        table = make_table(np.empty((0, 3), dtype=np.int64),
                           kinds=InterfaceKind.PQ, domain=4)
        result = discover_pq(TopKInterface(table, k=1))
        assert result.skyline_values == frozenset()

    def test_underflowing_select_star_finishes_in_one_query(self):
        table = make_table([(1, 2, 3), (3, 2, 1)], kinds=InterfaceKind.PQ,
                           domain=4)
        result = discover_pq(TopKInterface(table, k=5))
        assert result.total_cost == 1
        assert result.skyline_values == {(1, 2, 3), (3, 2, 1)}

    def test_ill_behaved_ranker(self):
        rng = np.random.default_rng(60)
        table = random_table(rng, [InterfaceKind.PQ] * 3, n=100, domain=5)
        interface = TopKInterface(table, ranker=LexicographicRanker([2, 1, 0]), k=1)
        result = discover_pq(interface)
        assert result.skyline_values == truth_values(table)

    def test_plane_attribute_override(self):
        rng = np.random.default_rng(61)
        table = random_table(rng, [InterfaceKind.PQ] * 3, n=100, domain=5)
        result = discover_pq(TopKInterface(table, k=2), plane_attributes=(0, 1))
        assert result.skyline_values == truth_values(table)

    def test_identical_plane_attributes_rejected(self):
        table = make_table([(1, 1, 1)], kinds=InterfaceKind.PQ, domain=4)
        with pytest.raises(ValueError):
            discover_pq(TopKInterface(table, k=1), plane_attributes=(1, 1))

    def test_plane_limit_guard(self):
        table = make_table([(1, 1, 1, 1)], kinds=InterfaceKind.PQ, domain=4)
        # Force overflow on SELECT * so the plane machinery engages.
        big = make_table([(i % 4, i % 3, (i * 2) % 4, i % 2) for i in range(50)],
                         kinds=InterfaceKind.PQ, domain=4)
        with pytest.raises(ValueError):
            discover_pq(TopKInterface(big, k=1), plane_limit=2)
        del table


class TestCostBehaviour:
    def test_corner_tuple_prunes_every_plane(self):
        values = [(0, 0, 0)] + [(3, 3, 3), (2, 3, 1)]
        table = make_table(values, kinds=InterfaceKind.PQ, domain=4)
        result = discover_pq(TopKInterface(table, k=1))
        assert result.skyline_values == {(0, 0, 0)}
        assert result.total_cost == 1

    def test_cost_grows_with_dimensions_not_n(self):
        rng = np.random.default_rng(62)
        costs = {}
        for m in (3, 4):
            table = random_table(rng, [InterfaceKind.PQ] * m, n=400, domain=5)
            costs[m] = discover_pq(TopKInterface(table, k=3)).total_cost
        assert costs[4] > costs[3]

    def test_cost_independent_of_duplicating_tuples(self):
        rng = np.random.default_rng(63)
        base = rng.integers(0, 5, (60, 3))
        small = make_table(base, kinds=InterfaceKind.PQ, domain=5)
        big = make_table(np.vstack([base] * 5), kinds=InterfaceKind.PQ, domain=5)
        cost_small = discover_pq(TopKInterface(small, k=3)).total_cost
        cost_big = discover_pq(TopKInterface(big, k=3)).total_cost
        assert cost_big == cost_small

    def test_anytime_trace_is_true_skyline(self):
        rng = np.random.default_rng(64)
        table = random_table(rng, [InterfaceKind.PQ] * 3, n=150, domain=6)
        result = discover_pq(TopKInterface(table, k=2))
        truth = truth_values(table)
        for entry in result.trace:
            assert entry.row.values in truth

    def test_budget_partial_is_sound(self):
        rng = np.random.default_rng(65)
        table = random_table(rng, [InterfaceKind.PQ] * 3, n=200, domain=6)
        full = discover_pq(TopKInterface(table, k=1))
        if full.total_cost <= 2:
            pytest.skip("instance too easy to test budgets")
        partial = discover_pq(
            TopKInterface(table, k=1, budget=full.total_cost // 2)
        )
        assert not partial.complete
        assert partial.skyline_values <= full.skyline_values
