"""Tests for dominance and the offline skyline / skyband oracles."""

import numpy as np
import pytest

from repro.core.dominance import (
    dominated_by_any,
    dominates,
    dominates_row,
    dominator_counts,
    skyband_indices,
    skyband_of_rows,
    skyline_indices,
    skyline_of_rows,
)
from repro.hiddendb import Row


class TestDominates:
    def test_strict_domination(self):
        assert dominates((0, 0), (1, 1))
        assert dominates((0, 1), (0, 2))

    def test_no_self_domination_on_equal_vectors(self):
        assert not dominates((1, 1), (1, 1))

    def test_incomparable(self):
        assert not dominates((0, 1), (1, 0))
        assert not dominates((1, 0), (0, 1))

    def test_antisymmetry(self):
        assert dominates((0, 0), (0, 1))
        assert not dominates((0, 1), (0, 0))

    def test_row_wrapper(self):
        assert dominates_row(Row(0, (0, 0)), Row(1, (1, 1)))

    def test_dominated_by_any(self):
        rows = [Row(0, (1, 1)), Row(1, (3, 0))]
        assert dominated_by_any((2, 2), rows)
        assert not dominated_by_any((0, 0), rows)


class TestSkylineIndices:
    def test_simple(self):
        matrix = np.array([[0, 9], [5, 5], [9, 0], [6, 6]])
        assert skyline_indices(matrix).tolist() == [0, 1, 2]

    def test_single_tuple(self):
        assert skyline_indices(np.array([[3, 3]])).tolist() == [0]

    def test_empty(self):
        assert skyline_indices(np.empty((0, 2))).size == 0

    def test_duplicates_are_all_on_the_skyline(self):
        matrix = np.array([[1, 1], [1, 1], [2, 2]])
        assert skyline_indices(matrix).tolist() == [0, 1]

    def test_one_dimension(self):
        matrix = np.array([[3], [1], [1], [2]])
        assert skyline_indices(matrix).tolist() == [1, 2]

    def test_total_dominator(self):
        matrix = np.array([[5, 5], [0, 0], [3, 9]])
        assert skyline_indices(matrix).tolist() == [1]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            skyline_indices(np.zeros((2, 2, 2)))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_naive_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        m = int(rng.integers(1, 5))
        matrix = rng.integers(0, 6, (n, m))
        naive = {
            i
            for i in range(n)
            if not any(
                dominates(matrix[j], matrix[i]) for j in range(n) if j != i
            )
        }
        assert set(skyline_indices(matrix).tolist()) == naive

    def test_large_chunked_path(self):
        # Exceed the 4096 chunk size to exercise the multi-chunk code path.
        rng = np.random.default_rng(1)
        matrix = rng.integers(0, 50, (10_000, 3))
        indices = skyline_indices(matrix)
        sky = matrix[indices]
        for candidate in sky[:20]:
            assert not any(
                dominates(other, candidate)
                for other in sky
                if not np.array_equal(other, candidate)
            )


class TestSkylineOfRows:
    def test_preserves_input_order(self):
        rows = [Row(7, (5, 5)), Row(3, (0, 9)), Row(9, (6, 6))]
        assert [r.rid for r in skyline_of_rows(rows)] == [7, 3]

    def test_empty(self):
        assert skyline_of_rows([]) == []


class TestDominatorCounts:
    def test_chain(self):
        matrix = np.array([[0, 0], [1, 1], [2, 2]])
        assert dominator_counts(matrix).tolist() == [0, 1, 2]

    def test_cap(self):
        matrix = np.array([[0, 0], [1, 1], [2, 2], [3, 3]])
        assert dominator_counts(matrix, cap=2).tolist() == [0, 1, 2, 2]

    def test_incomparable(self):
        matrix = np.array([[0, 1], [1, 0]])
        assert dominator_counts(matrix).tolist() == [0, 0]

    def test_duplicates_do_not_count(self):
        matrix = np.array([[1, 1], [1, 1]])
        assert dominator_counts(matrix).tolist() == [0, 0]


class TestSkyband:
    def test_band_one_is_skyline(self):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 8, (100, 3))
        assert skyband_indices(matrix, 1).tolist() == skyline_indices(matrix).tolist()

    def test_band_grows_monotonically(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 8, (100, 3))
        previous: set[int] = set()
        for band in (1, 2, 3, 4):
            current = set(skyband_indices(matrix, band).tolist())
            assert previous <= current
            previous = current

    def test_band_must_be_positive(self):
        with pytest.raises(ValueError):
            skyband_indices(np.array([[1]]), 0)

    def test_skyband_of_rows(self):
        rows = [Row(0, (0, 0)), Row(1, (1, 1)), Row(2, (2, 2))]
        assert [r.rid for r in skyband_of_rows(rows, 2)] == [0, 1]
        assert skyband_of_rows([], 2) == []
