"""Tests for RQ-DB-SKY (two-ended range interfaces)."""

import numpy as np
import pytest

from repro.core import discover_rq, discover_sq
from repro.hiddendb import (
    InterfaceKind,
    LexicographicRanker,
    LinearRanker,
    RandomSkylineRanker,
    TopKInterface,
)

from ..conftest import make_table, random_table, truth_values


class TestPaperExample:
    def test_figure_2_skyline(self, simple_interface, simple_table):
        result = discover_rq(simple_interface)
        assert result.skyline_values == {(5, 1, 9), (1, 3, 7), (3, 2, 3)}

    def test_each_skyline_tuple_retrieved_once_with_k1(self, simple_table):
        """With mutually exclusive branches every skyline tuple is returned
        by exactly one issued query (§4.1)."""
        interface = TopKInterface(simple_table, k=1, record_log=True)
        result = discover_rq(interface)
        returned = [row.rid for answer in interface.log for row in answer.rows]
        skyline_rids = {row.rid for row in result.skyline}
        for rid in skyline_rids:
            assert returned.count(rid) == 1


class TestCompleteness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 4])
    def test_random_instances(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, [InterfaceKind.RQ] * 3, n=200, domain=9)
        result = discover_rq(TopKInterface(table, k=k))
        assert result.skyline_values == truth_values(table)

    @pytest.mark.parametrize(
        "ranker",
        [LinearRanker(), LexicographicRanker([1, 0, 2]), RandomSkylineRanker(seed=4)],
    )
    def test_any_domination_consistent_ranker(self, ranker):
        rng = np.random.default_rng(20)
        table = random_table(rng, [InterfaceKind.RQ] * 3, n=150, domain=8)
        result = discover_rq(TopKInterface(table, ranker=ranker, k=1))
        assert result.skyline_values == truth_values(table)

    def test_empty_database(self):
        table = make_table(np.empty((0, 2), dtype=np.int64), domain=5)
        result = discover_rq(TopKInterface(table, k=1))
        assert result.skyline_values == frozenset()

    def test_mixed_sq_rq_attributes(self):
        """two_ended restricted to a subset (the MQ range phase)."""
        rng = np.random.default_rng(21)
        kinds = [InterfaceKind.SQ, InterfaceKind.RQ, InterfaceKind.SQ]
        table = random_table(rng, kinds, n=200, domain=8)
        result = discover_rq(TopKInterface(table, k=2), two_ended=(1,))
        assert result.skyline_values == truth_values(table)

    def test_two_ended_must_be_subset_of_branches(self):
        table = make_table([(1, 1)], domain=5)
        with pytest.raises(ValueError):
            discover_rq(TopKInterface(table, k=1), branch_attributes=(0,),
                        two_ended=(1,))


class TestEarlyTermination:
    def test_disabled_matches_sq_traversal(self):
        """The ablation: without the seen-tuple check RQ-DB-SKY issues the
        same one-ended queries as SQ-DB-SKY."""
        rng = np.random.default_rng(30)
        table = random_table(rng, [InterfaceKind.RQ] * 3, n=200, domain=8)
        sq = discover_sq(TopKInterface(table, k=1))
        ablated = discover_rq(TopKInterface(table, k=1), early_termination=False)
        assert ablated.skyline_values == sq.skyline_values
        assert ablated.total_cost == sq.total_cost

    def test_rq_never_much_worse_than_sq(self):
        rng = np.random.default_rng(31)
        for _ in range(5):
            table = random_table(rng, [InterfaceKind.RQ] * 3,
                                 n=int(rng.integers(50, 400)), domain=10)
            rq_cost = discover_rq(TopKInterface(table, k=1)).total_cost
            sq_cost = discover_sq(TopKInterface(table, k=1)).total_cost
            assert rq_cost <= sq_cost

    @pytest.mark.parametrize("seed", range(4))
    def test_rq_wins_on_anticorrelated_data(self, seed):
        """Large skylines are where early termination pays (Figure 6)."""
        from repro.datagen.synthetic import correlated

        table = correlated(300, 3, domain=12, rho=-0.8, seed=seed)
        rq_cost = discover_rq(TopKInterface(table, k=1)).total_cost
        sq_cost = discover_sq(TopKInterface(table, k=1)).total_cost
        assert rq_cost < sq_cost

    def test_cost_bounded_by_tree_over_tuples(self):
        """Worst case O(m * min(|S|^(m+1), n)): interior nodes are bounded by
        the number of tuples, so cost <= (m + 1) * (n + 1) always holds."""
        rng = np.random.default_rng(32)
        table = random_table(rng, [InterfaceKind.RQ] * 2, n=100, domain=50)
        result = discover_rq(TopKInterface(table, k=1))
        assert result.total_cost <= 3 * 101


class TestAnytime:
    def test_trace_prefixes_are_true_skyline(self):
        rng = np.random.default_rng(33)
        table = random_table(rng, [InterfaceKind.RQ] * 3, n=300, domain=12)
        result = discover_rq(TopKInterface(table, k=3))
        truth = truth_values(table)
        for entry in result.trace:
            assert entry.row.values in truth

    def test_budget_partial_is_subset(self):
        from repro.datagen.synthetic import correlated

        table = correlated(300, 3, domain=12, rho=-0.8, seed=1)
        full = discover_rq(TopKInterface(table, k=1))
        assert full.total_cost > 4  # the budget below must actually bite
        partial = discover_rq(
            TopKInterface(table, k=1, budget=max(full.total_cost // 2, 1))
        )
        assert not partial.complete
        assert partial.skyline_values <= full.skyline_values
