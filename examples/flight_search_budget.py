#!/usr/bin/env python
"""Skyline flight search under a daily query quota (anytime discovery).

Models the paper's Google Flights scenario: a QPX-like interface with
one-ended ranges on stops / price / connection time, a two-ended range on
departure time, a price-ascending default ranking, and a hard limit of 50
free queries per day.  The quota lives in the :class:`repro.DiscoveryConfig`
of a :class:`repro.Discoverer`, so every ``run`` is one "day": the facade
absorbs the rate limit and returns a partial, verified result (the anytime
property of §7.1), and the search simply runs again the next day.

Run with::

    python examples/flight_search_budget.py
"""

from __future__ import annotations

from repro import (
    Discoverer,
    DiscoveryConfig,
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    TopKInterface,
)
from repro.datagen.gflights import DAILY_QUERY_LIMIT, flight_instance


def main() -> None:
    table = flight_instance(seed=7)
    print(f"route instance with {table.n} flights")

    interface = TopKInterface(
        table,
        ranker=LinearRanker.single_attribute(1, table.schema.m),  # price asc
        k=1,
    )

    # The facade carries the quota: each run() issues at most 50 queries.
    disc = Discoverer(DiscoveryConfig(budget=DAILY_QUERY_LIMIT))

    result = disc.run(interface)
    print(
        f"day 1: issued {result.total_cost} queries "
        f"(quota {DAILY_QUERY_LIMIT}), complete={result.complete}, "
        f"{result.skyline_size} skyline flights so far"
    )

    day = 1
    while not result.complete:
        day += 1
        result = disc.run(interface)
        print(
            f"day {day}: issued {result.total_cost} queries, "
            f"complete={result.complete}, {result.skyline_size} skyline flights"
        )
        if day > 10:  # safety for pathological instances
            break

    print("\nskyline flights (stops, price-bucket, connection, departure):")
    for row in result.skyline:
        print(f"  {row.values}")

    print("\nanytime curve of the final run:")
    for cost, count in result.discovery_curve():
        print(f"  after {cost:3d} queries: {count} flights")

    # Demonstrate the budget exception surface for manual query issuing.
    interface.reset(budget=1)
    interface.query(Query.select_all())
    try:
        interface.query(Query.select_all())
    except QueryBudgetExceeded as exc:
        print(f"\nmanual querying past the quota raises: {exc}")


if __name__ == "__main__":
    main()
