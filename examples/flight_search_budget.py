#!/usr/bin/env python
"""Skyline flight search under a daily query quota (anytime discovery).

Models the paper's Google Flights scenario: a QPX-like interface with
one-ended ranges on stops / price / connection time, a two-ended range on
departure time, a price-ascending default ranking, and a hard limit of 50
free queries per day.  The anytime property (§7.1) means a rate-limited run
still returns a verified subset of the skyline, and the search can resume
the next "day".

Run with::

    python examples/flight_search_budget.py
"""

from __future__ import annotations

from repro import (
    LinearRanker,
    Query,
    QueryBudgetExceeded,
    TopKInterface,
    discover,
)
from repro.datagen.gflights import DAILY_QUERY_LIMIT, flight_instance


def main() -> None:
    table = flight_instance(seed=7)
    print(f"route instance with {table.n} flights")

    # Day 1: run under the 50-query quota.  discover() absorbs the rate
    # limit and returns a partial, verified result.
    interface = TopKInterface(
        table,
        ranker=LinearRanker.single_attribute(1, table.schema.m),  # price asc
        k=1,
        budget=DAILY_QUERY_LIMIT,
    )
    day_one = discover(interface)
    print(
        f"day 1: issued {day_one.total_cost} queries "
        f"(quota {DAILY_QUERY_LIMIT}), complete={day_one.complete}, "
        f"{day_one.skyline_size} skyline flights so far"
    )

    result = day_one
    day = 1
    while not result.complete:
        day += 1
        interface.reset(budget=DAILY_QUERY_LIMIT)
        result = discover(interface)
        print(
            f"day {day}: issued {result.total_cost} queries, "
            f"complete={result.complete}, {result.skyline_size} skyline flights"
        )
        if day > 10:  # safety for pathological instances
            break

    print("\nskyline flights (stops, price-bucket, connection, departure):")
    for row in result.skyline:
        print(f"  {row.values}")

    print("\nanytime curve of the final run:")
    for cost, count in result.discovery_curve():
        print(f"  after {cost:3d} queries: {count} flights")

    # Demonstrate the budget exception surface for manual query issuing.
    interface.reset(budget=1)
    interface.query(Query.select_all())
    try:
        interface.query(Query.select_all())
    except QueryBudgetExceeded as exc:
        print(f"\nmanual querying past the quota raises: {exc}")


if __name__ == "__main__":
    main()
