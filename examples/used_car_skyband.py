#!/usr/bin/env python
"""Top-K skyband discovery over a used-car listing site (§7.2).

The skyline gives the single best car for every monotone preference, but a
recommendation service usually wants a few alternatives per trade-off.  The
top-K skyband -- tuples dominated by fewer than K others -- is exactly the
candidate set from which the top-k answers of *any* monotone ranking
function can be served.  This example discovers the top-3 skyband of a
Yahoo! Autos-like site through its two-ended range interface, then answers
several user ranking functions locally without issuing further queries.

Run with::

    python examples/used_car_skyband.py
"""

from __future__ import annotations

from repro import Discoverer, LinearRanker, TopKInterface
from repro.datagen.autos import autos_table


USER_PROFILES = {
    "bargain hunter": (1.0, 0.05, 0.2),     # price above all
    "low-mileage fan": (0.2, 1.0, 0.3),     # odometer above all
    "newest possible": (0.1, 0.1, 50.0),    # model year above all
}


def main() -> None:
    table = autos_table(6000, seed=11)
    interface = TopKInterface(
        table,
        ranker=LinearRanker.single_attribute(0, table.schema.m),  # price asc
        k=50,
    )

    band = 3
    # The facade picks the RQ skyband extension: all three ranking
    # attributes are two-ended ranges.
    result = Discoverer().skyband(interface, band)
    print(f"top-{band} skyband discovery: {result.algorithm}")
    print(f"registry metadata: {result.info}")
    print(f"queries issued : {result.total_cost}")
    print(f"band tuples    : {len(result.skyband)}")
    print(f"complete       : {result.complete}")

    def describe(row) -> str:
        price = row.values[0] * 10
        mileage = row.values[1] * 100
        year = 2016 - row.values[2]  # paper-era model years
        return f"${price:6d}  {mileage:7d} mi  {year}"

    print("\ntop-3 per user profile, served from the skyband alone:")
    for profile, weights in USER_PROFILES.items():
        ranked = sorted(
            result.skyband,
            key=lambda row: sum(w * v for w, v in zip(weights, row.values)),
        )
        print(f"\n  {profile}:")
        for row in ranked[:3]:
            print(f"    {describe(row)}")

    # Sanity: the top-k of any monotone ranking over the *whole* database
    # must come from the top-k skyband (the K-skyband property, §9).
    for profile, weights in USER_PROFILES.items():
        full_order = sorted(
            table.iter_rows(),
            key=lambda row: sum(w * v for w, v in zip(weights, row.values)),
        )
        band_values = result.skyband_values
        for row in full_order[:band]:
            assert row.values in band_values, (profile, row)
    print("\nverified: the top-3 of every profile lies inside the skyband.")


if __name__ == "__main__":
    main()
