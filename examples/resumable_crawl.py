#!/usr/bin/env python
"""Kill -9 a crawl mid-run, resume it, and never pay for an answer twice.

The paper's cost model makes every answered top-k query precious: a real
hidden-web crawl runs for hours against per-key budgets, and a crash used
to throw away every answer already paid for.  This example stands a flaky
diamond service up, starts a pipelined crawl against it *in a separate
process* with a durable crawl store mounted, SIGKILLs that process the
moment the ledger shows real progress, and then resumes from the store:

* the resumed run replays the already-paid-for prefix from the query
  ledger (``ledger_hits``, billed nowhere),
* queries the dead crawl had in flight are replayed free by the server
  under the session's deterministic ``X-Request-Id`` nonce,
* the total server-side bill across both incarnations stays at (or below)
  what one uninterrupted crawl would have paid,
* and a final warm re-run costs exactly zero queries.

Run with::

    python examples/resumable_crawl.py

The same flow across real terminals::

    repro serve --dataset diamonds --n 4000 --k 10 --latency-ms 2 4
    repro crawl --url http://127.0.0.1:8080 --store crawl.db --workers 4
    # ... kill -9 the crawl, then:
    repro crawl --url http://127.0.0.1:8080 --store crawl.db --resume
    repro store ls --store crawl.db
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import CrawlStore, Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface


def main() -> None:
    table = diamonds_table(4000, seed=7)
    reference = Discoverer().run(TopKInterface(table, k=10), "baseline")
    print(f"uninterrupted cost    : {reference.total_cost} queries for "
          f"{reference.skyline_size} skyline tuples")

    workdir = Path(tempfile.mkdtemp(prefix="repro-crawl-"))
    db = workdir / "crawl.db"
    faults = FaultConfig(latency=(0.002, 0.005), seed=11)
    with HiddenDBServer(table, k=10, name="diamonds-n4000",
                        faults=faults) as server:
        print(f"serving 'diamonds' at {server.url} (2-5ms latency)")

        # Crawl in a child process so the kill is a real process death.
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "crawl",
             "--url", server.url, "--store", str(db),
             "--algorithm", "baseline", "--workers", "4"],
            env=env,
        )
        store = CrawlStore(db)
        deadline = time.time() + 60
        while store.ledger_size() < 80:
            if child.poll() is not None:
                raise SystemExit(
                    f"crawl subprocess exited early (code {child.returncode})"
                )
            if time.time() > deadline:
                child.kill()
                raise SystemExit("crawl subprocess made no ledger progress")
            time.sleep(0.05)
        os.kill(child.pid, signal.SIGKILL)
        child.wait()
        prefix = store.ledger_size()
        print(f"\nSIGKILLed the crawl with {prefix} answers ledgered "
              f"(session {store.sessions()[0].session_id} left 'running')")

        # Resume: same store, same endpoint, same algorithm.
        resumed = Discoverer(
            DiscoveryConfig(store=store, resume=True, workers=4)
        ).run(RemoteTopKInterface(server.url), "baseline")
        assert resumed.skyline_values == reference.skyline_values
        print(f"resumed crawl         : complete={resumed.complete}, "
              f"{resumed.stats.ledger_hits} answers replayed free, "
              f"{resumed.stats.issued} newly billed, "
              f"total cost {resumed.total_cost}")
        billed = server.stats().queries_total
        print(f"server-side bill      : {billed} across both incarnations "
              f"(uninterrupted would pay {reference.total_cost})")
        assert billed <= reference.total_cost

        # Warm re-run over the unchanged endpoint: the ledger owns it all.
        warm = Discoverer(DiscoveryConfig(store=store, workers=4)).run(
            RemoteTopKInterface(server.url), "baseline"
        )
        assert warm.total_cost == 0
        assert server.stats().queries_total == billed
        print(f"warm re-run           : 0 billed queries "
              f"({warm.stats.ledger_hits} ledger hits), identical skyline")


if __name__ == "__main__":
    main()
