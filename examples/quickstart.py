#!/usr/bin/env python
"""Quickstart: discover the skyline of a hidden web database.

Builds a small synthetic laptop catalogue behind a top-10 search interface
and discovers its skyline through the public :class:`repro.Discoverer`
facade -- never touching the raw data.  The facade auto-dispatches on the
schema's interface taxonomy (here: mixed RQ/SQ/PQ attributes, so MQ-DB-SKY
runs) and a progress hook streams the anytime curve live.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Attribute,
    Discoverer,
    DiscoveryConfig,
    InterfaceKind,
    LinearRanker,
    Schema,
    Table,
    TopKInterface,
)


def build_laptop_store(n: int = 5000, seed: int = 42) -> Table:
    """A laptop store: price and weight are two-ended ranges (RQ), memory is
    one-ended (SQ -- nobody filters for *less* memory), and the number of
    USB ports is a point predicate (PQ).  All values are in preference space:
    0 is the best value of each attribute."""
    rng = np.random.default_rng(seed)
    memory_tier = rng.integers(0, 6, n)       # 0 = most RAM
    ports = rng.integers(0, 4, n)             # 0 = most ports
    weight = rng.integers(0, 40, n)           # 0 = lightest
    # Better-equipped laptops cost more: the classic skyline trade-off.
    price = np.clip(
        120 - 12 * memory_tier - 4 * ports - weight
        + rng.integers(0, 25, n),
        0,
        199,
    )
    schema = Schema(
        [
            Attribute("price", 200, InterfaceKind.RQ),
            Attribute("weight", 40, InterfaceKind.RQ),
            Attribute("memory", 6, InterfaceKind.SQ),
            Attribute("usb_ports", 4, InterfaceKind.PQ),
        ]
    )
    return Table(schema, np.column_stack([price, weight, memory_tier, ports]))


def main() -> None:
    table = build_laptop_store()

    # The store ranks results by price (low to high) and returns 10 per page.
    interface = TopKInterface(
        table,
        ranker=LinearRanker.single_attribute(0, table.schema.m),
        k=10,
    )

    # A progress hook receives every newly retrieved tuple together with the
    # query cost at which it appeared -- the live anytime curve of §7.1.
    live: list[int] = []
    disc = Discoverer(
        DiscoveryConfig(on_tuple=lambda entry: live.append(entry.cost))
    )

    # Which registered algorithms could run against this interface?
    names = [spec.name for spec in disc.algorithms(interface)]
    print(f"applicable algorithms: {', '.join(names)}")

    result = disc.run(interface)  # auto-dispatch on the schema taxonomy

    print(f"algorithm dispatched : {result.algorithm}")
    print(f"registry metadata    : {result.info}")
    print(f"queries issued       : {result.total_cost}")
    print(f"skyline tuples found : {result.skyline_size}")
    print(f"queries per tuple    : {result.total_cost / result.skyline_size:.2f}")
    print(f"tuples seen live     : {len(live)} (via the on_tuple hook)")
    print()
    print("first five skyline laptops (price, weight, memory, usb_ports):")
    for row in result.skyline[:5]:
        print(f"  {row.values}")
    print()
    print("anytime curve (cost -> #discovered):")
    for cost, count in result.discovery_curve()[:10]:
        print(f"  after {cost:4d} queries: {count} tuples")

    # Verify against the ground truth (only possible because we own the data;
    # a real scraper could not do this).
    truth = {tuple(map(int, v)) for v in table.matrix[table.skyline_indices()]}
    assert result.skyline_values == truth, "discovery missed part of the skyline"
    print("\nverified against ground truth: complete skyline discovered.")


if __name__ == "__main__":
    main()
