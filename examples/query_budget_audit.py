#!/usr/bin/env python
"""Audit where a scraping campaign's query budget actually goes.

Runs SQ-DB-SKY and RQ-DB-SKY over the same anti-correlated catalogue via
the :class:`repro.Discoverer` facade with ``record_log`` enabled, and breaks
the attached query logs down with :mod:`repro.core.stats`: how many queries
came back empty, how many answer slots were wasted re-retrieving known
tuples, and how deep the conjunctions went.  This is the §4 story made
concrete — RQ's mutually exclusive queries eliminate the answer redundancy
that makes SQ expensive on large skylines.

Run with::

    python examples/query_budget_audit.py
"""

from __future__ import annotations

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.core.stats import summarize_log
from repro.datagen.synthetic import correlated
from repro.experiments.reporting import format_table


def main() -> None:
    # An anti-correlated catalogue: the large-skyline regime where the two
    # algorithms diverge (Figure 6).
    table = correlated(2000, 3, domain=24, rho=-0.8, seed=3)
    print(f"catalogue: n={table.n}, m={table.m}, "
          f"|skyline|={len(table.skyline_indices())}\n")

    disc = Discoverer(DiscoveryConfig(record_log=True))
    summaries = {}
    for name in ("sq", "rq"):
        result = disc.run(TopKInterface(table, k=1), name)
        summaries[result.algorithm] = summarize_log(result.query_log)

    rows = []
    for metric in ("total queries", "empty answers", "overflowing answers",
                   "underflowing answers", "distinct tuples",
                   "redundant answer slots", "redundancy", "max predicates"):
        row = {"metric": metric}
        for name, summary in summaries.items():
            lookup = {entry["metric"]: entry["value"]
                      for entry in summary.as_rows()}
            row[name] = lookup[metric]
        rows.append(row)
    print(format_table(rows))

    sq, rq = summaries["SQ-DB-SKY"], summaries["RQ-DB-SKY"]
    saving = 1 - rq.total_queries / sq.total_queries
    print(
        f"\nRQ-DB-SKY issues {saving:.0%} fewer queries; its answer "
        f"redundancy is {rq.redundancy:.1%} vs {sq.redundancy:.1%} for SQ."
    )


if __name__ == "__main__":
    main()
