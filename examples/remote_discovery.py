#!/usr/bin/env python
"""Discovery over the wire: serve a hidden database, crawl it remotely.

Stands a diamond catalogue up as a networked top-k search service --
complete with a per-API-key query budget and injected 429/503 faults, the
conditions a real scraper faces -- then runs the paper's discovery
algorithms against it through :class:`repro.service.RemoteTopKInterface`.
The client retries injected faults with exponential backoff and answers
repeated queries from a local LRU cache, so a second crawl is (almost)
free.  Run with::

    python examples/remote_discovery.py

The same setup works across real terminals::

    repro serve --dataset diamonds --n 5000 --k 10 --fault-rate 0.15
    repro discover --url http://127.0.0.1:8080 --cache 4096
"""

from __future__ import annotations

from repro import Discoverer, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface


def main() -> None:
    table = diamonds_table(5000, seed=7)

    # One in-process run as the reference the remote crawls must match.
    reference = Discoverer().run(TopKInterface(table, k=10))
    print(f"reference (in-process): {reference.skyline_size} skyline tuples "
          f"in {reference.total_cost} queries")

    faults = FaultConfig(error_rate=0.15, error_codes=(429, 503), seed=11)
    with HiddenDBServer(table, k=10, key_budget=10_000, faults=faults,
                        name="diamonds") as server:
        print(f"\nserving 'diamonds' at {server.url} "
              f"(budget 10000/key, 15% injected faults)")

        # Crawl 1: flaky network, no cache -- retries keep it converging.
        crawler = RemoteTopKInterface(
            server.url, api_key="crawler-1", cache_size=4096
        )
        result = Discoverer().run(crawler)
        assert result.skyline_values == reference.skyline_values
        print(f"remote crawl          : {result.skyline_size} skyline tuples "
              f"in {result.total_cost} billable queries "
              f"({crawler.retries} retries absorbed)")

        # Crawl 2: same client, warm cache -- repeated conjunctive queries
        # are answered locally and never reach the server's billing counter.
        before = crawler.queries_issued
        again = Discoverer().run(crawler)
        assert again.skyline_values == reference.skyline_values
        print(f"warm-cache recrawl    : {again.skyline_size} skyline tuples, "
              f"{crawler.queries_issued - before} billable queries "
              f"({crawler.cache_hits} cache hits)")

        usage = server.stats().usage("crawler-1")
        print(f"server-side billing   : {usage.issued} queries charged to "
              f"'crawler-1' ({usage.remaining} of budget left)")


if __name__ == "__main__":
    main()
