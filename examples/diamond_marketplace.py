#!/usr/bin/env python
"""Third-party diamond search across several jewellery stores.

The motivating application of the paper's introduction: each store hides its
catalogue behind a proprietary top-k interface with its own ranking
function, yet a third-party service wants to rank *all* diamonds from *all*
stores under a user-chosen weighting.  Discovering each store's skyline
first makes that possible -- the top-1 under any monotone ranking function
is always a skyline tuple.

Run with::

    python examples/diamond_marketplace.py
"""

from __future__ import annotations

from repro import Discoverer, LexicographicRanker, LinearRanker, TopKInterface
from repro.datagen.diamonds import diamonds_table


STORES = {
    # Each store: its catalogue seed, size, ranking function and page size.
    "BlueNile-like": dict(
        seed=1, n=8000, ranker=LinearRanker.single_attribute(0, 5), k=50
    ),
    "SparkleCo": dict(
        seed=2, n=5000, ranker=LinearRanker([0.5, 1.0, 2.0, 2.0, 2.0]), k=20
    ),
    "GemHut": dict(
        seed=3, n=3000, ranker=LexicographicRanker([1, 0, 2, 3, 4]), k=10
    ),
}


def user_score(values, weights) -> float:
    """The service's user-configurable ranking: a weighted sum over
    preference values (lower is better)."""
    return sum(weight * value for weight, value in zip(weights, values))


def main() -> None:
    disc = Discoverer()
    all_offers = []
    print("discovering per-store skylines")
    print("store           n      |S|    queries  queries/tuple")
    for store, config in STORES.items():
        table = diamonds_table(config["n"], seed=config["seed"])
        interface = TopKInterface(table, ranker=config["ranker"], k=config["k"])
        result = disc.run(interface)
        per_tuple = result.total_cost / max(result.skyline_size, 1)
        print(
            f"{store:14s}  {table.n:5d}  {result.skyline_size:5d}  "
            f"{result.total_cost:7d}  {per_tuple:13.2f}"
        )
        schema = table.schema
        for row in result.skyline:
            all_offers.append((store, row, schema))

    # The user cares mostly about price and carat, a little about clarity.
    weights = (1.0, 18.0, 2.0, 2.0, 6.0)
    ranked = sorted(
        all_offers, key=lambda offer: user_score(offer[1].values, weights)
    )

    print("\ntop five diamonds across all stores under the user's weighting:")
    print("store           price($)  carat  cut         color  clarity")
    for store, row, schema in ranked[:5]:
        price = row.values[0] * 25  # preference bucket -> dollars
        carat = (schema["carat"].domain_size - 1 - row.values[1]) / 100 + 0.2
        cut = schema["cut"].label(row.values[2])
        color = schema["color"].label(row.values[3])
        clarity = schema["clarity"].label(row.values[4])
        print(
            f"{store:14s}  {price:8d}  {carat:5.2f}  {cut:10s}  "
            f"{color:5s}  {clarity}"
        )


if __name__ == "__main__":
    main()
