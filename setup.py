"""Legacy-install shim; all real metadata lives in pyproject.toml.

Offline environments whose setuptools predates wheel-less editable builds
(no ``wheel`` package available) can still do
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
