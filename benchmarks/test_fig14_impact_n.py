"""Bench for Figure 14: query cost as the database grows (range predicates)."""

from repro.experiments import fig14_impact_n

from conftest import run_once


def test_fig14(benchmark):
    rows = run_once(
        benchmark, fig14_impact_n.run, ns=(10_000, 20_000, 40_000), m=5, k=10
    )
    # Cost tracks |S|, not n: an 4x larger database must not cost 4x more
    # per skyline tuple.
    first, last = rows[0], rows[-1]
    per_tuple_first = first["rq_cost"] / max(first["S"], 1)
    per_tuple_last = last["rq_cost"] / max(last["S"], 1)
    assert per_tuple_last < 4 * per_tuple_first
    for row in rows:
        assert row["rq_cost"] <= row["sq_cost"]
