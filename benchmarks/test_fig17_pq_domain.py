"""Bench for Figure 17: PQ-DB-SKY cost vs attribute domain size."""

from repro.experiments import fig17_pq_domain

from conftest import run_once


def test_fig17(benchmark):
    rows = run_once(
        benchmark, fig17_pq_domain.run,
        domains=(5, 9, 13), n=20_000, m=4, sample=10_000, k=10,
    )
    # Larger domains cost more ...
    costs = [row["cost"] for row in rows]
    assert costs[-1] >= costs[0]
    # ... but the growth is far below the v^m growth of the data space.
    cost_ratio = (costs[-1] + 1) / (costs[0] + 1)
    space_ratio = rows[-1]["space"] / rows[0]["space"]
    assert cost_ratio < space_ratio
