"""Bench for Figure 23: Google Flights, average cost per discovery."""

from repro.experiments import fig23_gflights

from conftest import run_once


def test_fig23(benchmark):
    rows = run_once(benchmark, fig23_gflights.run, instances=15, k=1)
    summary = rows[-1]
    # Every instance finishes within the 50-query daily quota, even at k=1.
    assert "0 instances over" in str(summary["avg_cost"])
    costs = [row["avg_cost"] for row in rows[:-1]]
    assert costs == sorted(costs)
    assert costs[-1] <= 50
