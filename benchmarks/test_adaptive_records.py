"""Adaptive-concurrency trajectory records: BENCH_adaptive.json.

Times a remote baseline crawl against a *traffic-shaped* server -- a
per-key token-bucket rate limit, a server-side concurrency cap, and
injected wide-area latency -- under a sweep of fixed window widths and
under ``workers="auto"`` (AIMD).  A fixed width is always wrong somewhere
on this server: too narrow serialises the latency, too wide harvests
429/503 storms and sits out their ``Retry-After`` holds.  The adaptive
window must find the sustainable width by itself.

Acceptance gates (the ISSUE's bar):

* parity -- every timed run reproduces the serial reference skyline and
  billed cost bit-identically (asserted per trial);
* the adaptive wall time is within 10% of the *best* fixed width's;
* the adaptive wall time is at least 2x faster than the *worst* fixed
  width's.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_adaptive_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface

N = 1_500
K = 10
SEED = 1
#: Injected per-query latency (seconds): wide-area conditions, wide
#: enough that a serial drain is clearly latency-bound.
LATENCY = (0.015, 0.025)
#: Server shaping: the binding constraint is the concurrency cap (the
#: width a window controller can actually discover); the token bucket is
#: generous so steady-state throughput is cap-bound, not rate-bound.
RATE_LIMIT = 1_000.0
BURST = 50
MAX_INFLIGHT = 6
#: Fixed widths swept against the adaptive controller.  1 serialises the
#: injected latency; 32 overruns the in-flight cap and sits out the
#: shed-retry pauses; 6 is the oracle width (= the cap).
FIXED_WIDTHS = (1, 6, 32)
AUTO_BOUNDS = dict(min_workers=1, max_workers=32)
#: Every throttled attempt must eventually be absorbed by retries.
MAX_RETRIES = 60
#: Timed runs per configuration; min is compared (client and server
#: share one interpreter here, so a loaded runner can stall either).
TRIALS = 3


def _timed_run(server, config, reference, label):
    walls = []
    result = None
    for trial in range(TRIALS):
        interface = RemoteTopKInterface(
            server.url, api_key=f"{label}-{trial}", max_retries=MAX_RETRIES
        )
        start = time.perf_counter()
        result = Discoverer(config).run(interface, "baseline")
        walls.append(time.perf_counter() - start)
        interface.close()
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
    return min(walls), walls, result


def test_record_adaptive_window_vs_fixed_widths():
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    with HiddenDBServer(
        table,
        k=K,
        faults=FaultConfig(latency=LATENCY, seed=5),
        rate_limit=RATE_LIMIT,
        burst=BURST,
        max_inflight=MAX_INFLIGHT,
    ) as server:
        fixed = {}
        for width in FIXED_WIDTHS:
            fixed[width], walls, _ = _timed_run(
                server,
                DiscoveryConfig(
                    strategy="pipelined", workers=width, batch_size=1
                ),
                reference,
                f"fixed{width}",
            )
        auto_wall, auto_walls, auto = _timed_run(
            server,
            DiscoveryConfig(
                strategy="pipelined", workers="auto", batch_size=1,
                **AUTO_BOUNDS,
            ),
            reference,
            "auto",
        )

    best_width = min(fixed, key=fixed.get)
    worst_width = max(fixed, key=fixed.get)
    best, worst = fixed[best_width], fixed[worst_width]

    # Gate 1: adaptive matches the best fixed width (within 10%).
    assert auto_wall <= best * 1.10, (
        f"adaptive {auto_wall:.3f}s misses best fixed width "
        f"{best_width} ({best:.3f}s) by more than 10%"
    )
    # Gate 2: adaptive is at least 2x faster than the worst fixed width.
    assert auto_wall * 2.0 <= worst, (
        f"adaptive {auto_wall:.3f}s not 2x faster than worst fixed "
        f"width {worst_width} ({worst:.3f}s)"
    )

    record(
        "adaptive",
        f"baseline_diamonds_n{N}_k{K}_aimd_vs_fixed",
        adaptive_wall_seconds=auto_wall,
        adaptive_walls=[round(w, 6) for w in auto_walls],
        fixed_wall_seconds={str(w): fixed[w] for w in FIXED_WIDTHS},
        best_fixed_width=best_width,
        worst_fixed_width=worst_width,
        speedup_vs_worst=worst / auto_wall,
        ratio_vs_best=auto_wall / best,
        queries=auto.total_cost,
        skyline=auto.skyline_size,
        mean_window=auto.stats.mean_window,
        window_decreases=auto.stats.window_decreases,
        max_in_flight=auto.stats.max_in_flight,
        trials=TRIALS,
        rate_limit_qps=RATE_LIMIT,
        burst=BURST,
        max_inflight=MAX_INFLIGHT,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )
