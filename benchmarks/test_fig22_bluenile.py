"""Bench for Figure 22: Blue Nile diamonds, MQ-DB-SKY vs BASELINE."""

from repro.experiments import fig22_bluenile

from conftest import run_once


def test_fig22(benchmark):
    rows = run_once(
        benchmark, fig22_bluenile.run, n=10_000, k=50, baseline_cutoff=2_000
    )
    total = rows[-1]
    # MQ discovers the whole skyline at a handful of queries per tuple
    # (the paper reports ~3.5); BASELINE hits its cutoff long before.
    per_tuple = total["mq_cost"] / total["tuples"]
    assert per_tuple < 10
    assert "found" in str(total["baseline_cost"])
