"""Performance-trajectory records: BENCH_core.json and BENCH_service.json.

Unlike the figure benchmarks (which assert query-count *shapes*), these
tests measure wall-clock throughput of the two access paths -- the
in-process simulator and the networked service -- and write the numbers to
``BENCH_core.json`` / ``BENCH_service.json`` via :mod:`_record`, so the
perf trajectory is tracked across PRs.  Run explicitly (benchmarks/ is not
in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import Discoverer, TopKInterface
from repro.datagen import independent
from repro.service import HiddenDBServer, RemoteTopKInterface

N = 5_000
K = 10
SEED = 3


def _table():
    return independent(N, 4, domain=50, seed=SEED)


def test_record_core_throughput():
    interface = TopKInterface(_table(), k=K)
    start = time.perf_counter()
    result = Discoverer().run(interface)
    wall = time.perf_counter() - start
    assert result.complete
    record(
        "core",
        f"rq_uniform_n{N}_k{K}",
        wall_seconds=wall,
        queries=result.total_cost,
        queries_per_second=result.total_cost / wall,
        skyline=result.skyline_size,
        engine_wall_time_s=result.stats.wall_time_s,
        engine_queries_per_sec=result.stats.queries_per_sec,
    )


def test_record_service_throughput_and_cache():
    table = _table()
    reference = Discoverer().run(TopKInterface(table, k=K))
    with HiddenDBServer(table, k=K) as server:
        remote = RemoteTopKInterface(server.url, cache_size=65_536)

        start = time.perf_counter()
        cold = Discoverer().run(remote)
        cold_wall = time.perf_counter() - start
        cold_billed = remote.queries_issued
        assert cold.skyline == reference.skyline

        start = time.perf_counter()
        warm = Discoverer().run(remote)
        warm_wall = time.perf_counter() - start
        warm_billed = remote.queries_issued - cold_billed
        assert warm.skyline == reference.skyline

        total_lookups = remote.queries_issued + remote.cache_hits
        record(
            "service",
            f"rq_uniform_n{N}_k{K}_remote",
            wall_seconds=cold_wall,
            queries=cold_billed,
            queries_per_second=cold_billed / cold_wall,
            warm_wall_seconds=warm_wall,
            warm_billable_queries=warm_billed,
            cache_hits=remote.cache_hits,
            cache_hit_rate=remote.cache_hits / total_lookups,
            retries=remote.retries,
            engine_wall_time_s=cold.stats.wall_time_s,
            engine_queries_per_sec=cold.stats.queries_per_sec,
        )
        assert warm_billed < cold_billed
