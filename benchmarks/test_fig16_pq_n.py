"""Bench for Figure 16: PQ-DB-SKY cost vs n for 3-D/4-D/5-D data."""

from repro.experiments import fig16_pq_n

from conftest import run_once


def test_fig16(benchmark):
    rows = run_once(
        benchmark, fig16_pq_n.run, ns=(5_000, 10_000), ms=(3, 4, 5), k=10
    )
    for row in rows:
        # Cost rises steeply with dimensionality (plane enumeration) ...
        assert row["cost_5d"] >= row["cost_4d"] >= row["cost_3d"]
    # ... but barely with n.
    assert rows[-1]["cost_4d"] < 10 * max(rows[0]["cost_4d"], 1)
