"""Bench for Figure 21: anytime discovery curve of PQ-DB-SKY."""

from repro.experiments import fig21_anytime_pq

from conftest import run_once


def test_fig21(benchmark):
    rows = run_once(benchmark, fig21_anytime_pq.run, n=20_000, m=4, k=10)
    assert rows
    costs = [row["cost"] for row in rows]
    assert costs == sorted(costs)
    # The whole skyline is found in far fewer queries than the data space
    # would suggest (the paper reports < 600 queries at full scale).
    assert costs[-1] < 5000
