"""Freshness-plane trajectory records: BENCH_freshness.json.

The acceptance bar of the delta-crawl subsystem, measured at benchmark
scale: after a churn batch mutates a live endpoint, the delta repair
must reproduce the from-scratch skyline **exactly** while billing at
most half of the from-scratch query count.  The gated case uses
delete-only churn ("listings disappear"), where repair exactness is
unconditional -- every change is observable through the probed frontier.

Mixed churn (inserts + updates + deletes) is recorded too, ungated: an
unobserved insert can hide behind answers the repair legitimately serves
stale, so exactness is an empirical ``exact`` flag in the record rather
than an assertion, and the strict mode (re-bill every emptiness
certificate not provably covered) is recorded alongside as the
higher-cost remedy.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_freshness_records.py -q
"""

from __future__ import annotations

import time

import numpy as np
from _record import record

from repro import CrawlStore, Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import churn_ops
from repro.hiddendb import Attribute, InterfaceKind, Schema, Table

#: A point-predicate catalogue at benchmark scale: 3 PQ attributes,
#: 5k tuples over domain 64, k=2.  PQ planes make the crawl pay for
#: emptiness certificates, so the stale ledger carries real value.
N = 5_000
DOMAIN = 64
M = 3
K = 2
#: Table seed.  The whole pipeline is deterministic given (seed, frac),
#: so the gated ratios are fixed numbers with generous margin below the
#: 0.5 bar (measured 0.11-0.12; other seeds stay under 0.64).
SEED = 202
DELETE_ONLY = (1.0, 0.0, 0.0)


def build_table() -> Table:
    rng = np.random.default_rng(SEED)
    schema = Schema(
        [Attribute(f"a{i}", DOMAIN, InterfaceKind.PQ) for i in range(M)]
    )
    return Table(schema, rng.integers(0, DOMAIN, size=(N, M)))


def churn_and_repair(tmp_path, frac, *, mix=DELETE_ONLY, strict=False):
    """(initial, scratch, repaired, repair wall seconds) for one case."""
    table = build_table()
    interface = TopKInterface(table, k=K, name=f"ppp-n{N}")
    store = CrawlStore(tmp_path / f"bench-{frac}-{strict}.db")
    initial = Discoverer(DiscoveryConfig(store=store)).run(interface)
    assert initial.complete
    table.apply_mutations(churn_ops(table, frac, seed=SEED + 1, mix=mix))
    scratch = Discoverer().run(TopKInterface(table, k=K, name=f"ppp-n{N}"))
    config = DiscoveryConfig(store=store, mode="delta")
    if strict:
        config = config.with_options(delta_strict=True)
    start = time.perf_counter()
    repaired = Discoverer(config).run(interface)
    wall = time.perf_counter() - start
    store.close()
    return initial, scratch, repaired, wall


def test_record_delta_vs_scratch_delete_churn(tmp_path):
    """The gated acceptance case: exact at <= 50% of the scratch cost."""
    for frac in (0.01, 0.10):
        initial, scratch, repaired, wall = churn_and_repair(tmp_path, frac)
        report = repaired.freshness
        ratio = repaired.total_cost / max(scratch.total_cost, 1)

        # Acceptance: the repaired skyline is exactly the from-scratch
        # one, and the 10% churn repair bills at most half the queries.
        assert repaired.complete
        assert repaired.skyline_values == scratch.skyline_values
        assert ratio <= 0.5, (
            f"delta repair billed {repaired.total_cost} vs scratch "
            f"{scratch.total_cost} ({ratio:.0%}) at {frac:.0%} churn"
        )

        record(
            "freshness",
            f"delta_ppp_n{N}_k{K}_delete_churn_{int(frac * 100)}pct",
            initial_billed=initial.total_cost,
            scratch_billed=scratch.total_cost,
            delta_billed=repaired.total_cost,
            billed_ratio=ratio,
            exact=True,
            stale_entries=report.stale_entries,
            probes=report.probes,
            served_stale=report.served_stale,
            revalidated=report.revalidated,
            rounds=report.rounds,
            skyline=len(repaired.skyline_values),
            skyline_added=len(report.skyline_added),
            skyline_removed=len(report.skyline_removed),
            repair_wall_seconds=wall,
            churn_frac=frac,
            churn_mix="delete_only",
        )


def test_record_delta_vs_scratch_mixed_churn(tmp_path):
    """Ungated: mixed churn, default and strict modes, exactness recorded."""
    for strict in (False, True):
        _, scratch, repaired, wall = churn_and_repair(
            tmp_path, 0.10, mix=(0.3, 0.4, 0.3), strict=strict
        )
        ratio = repaired.total_cost / max(scratch.total_cost, 1)
        exact = repaired.skyline_values == scratch.skyline_values
        assert repaired.complete
        # Still a repair, not a re-crawl: never more expensive than
        # scratch even in strict mode on this catalogue.
        assert ratio <= 1.0

        record(
            "freshness",
            f"delta_ppp_n{N}_k{K}_mixed_churn_10pct"
            + ("_strict" if strict else ""),
            scratch_billed=scratch.total_cost,
            delta_billed=repaired.total_cost,
            billed_ratio=ratio,
            exact=exact,
            rounds=repaired.freshness.rounds,
            repair_wall_seconds=wall,
            churn_frac=0.10,
            churn_mix="30_40_30",
            strict=strict,
        )
