"""Sharded-coordinator trajectory records: BENCH_coordinator.json.

Measures what a second mirror of the hidden database buys: the same
discovery crawl, over latency-injected remote backends, drained

* through ONE backend under ``PipelinedStrategy`` (a ``WORKERS``-wide
  in-flight window, per-query dispatch -- the single-deployment
  baseline), vs
* through TWO mirrored backends under ``ShardedStrategy`` with the same
  ``WORKERS`` per backend (so the aggregate window doubles, split by
  canonical-key shard with work stealing).

Because the paper's cost model bills a query identically no matter which
mirror answers it, the two runs must issue the same query set -- the
benchmark asserts identical billed cost *and* identical skyline -- while
the sharded run's wall time drops with the extra mirror's latency
budget.  The acceptance bar: >= 1.5x speedup at identical cost.  Both
variants are timed ``TRIALS`` times and compared min-to-min (client and
servers share one interpreter here, so a loaded runner can stall either
side).

The crawl-everything BASELINE algorithm is used because its frontier is
wide enough to fill both windows; RQ-DB-SKY's frontier is
dependency-limited (each answer spawns the next queries), so its
wall-clock barely moves with extra mirrors regardless of substrate.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_coordinator_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.coordinator import EndpointSet, ShardedStrategy
from repro.core.engine import PipelinedStrategy
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface

N = 2_000
K = 10
SEED = 2
#: In-flight window per backend -- the pipelined baseline gets the same
#: window over its single backend, the sharded run gets it per mirror.
WORKERS = 4
#: Timed runs per variant (min is compared -- see the module docstring).
TRIALS = 3
#: Injected per-query latency (seconds): the wide-area conditions a
#: second mirror's latency budget actually helps with.
LATENCY = (0.015, 0.025)
#: Acceptance bar for the 2-backend speedup at identical billed cost.
MIN_SPEEDUP = 1.5


def test_record_two_backends_beat_one_at_identical_cost():
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    faults = FaultConfig(latency=LATENCY, seed=3)
    servers = [
        HiddenDBServer(table, k=K, name="bench-mirror", faults=faults).start()
        for _ in range(2)
    ]
    try:
        pipelined_walls = []
        for _ in range(TRIALS):
            client = RemoteTopKInterface(servers[0].url)
            strategy = PipelinedStrategy(workers=WORKERS, batch_size=1)
            start = time.perf_counter()
            single = Discoverer(DiscoveryConfig(strategy=strategy)).run(
                client, "baseline"
            )
            pipelined_walls.append(time.perf_counter() - start)
            client.close()
            assert single.skyline_values == reference.skyline_values
            assert single.total_cost == reference.total_cost

        sharded_walls = []
        shards = None
        for _ in range(TRIALS):
            pool = EndpointSet([server.url for server in servers])
            strategy = ShardedStrategy(pool, workers_per_backend=WORKERS)
            start = time.perf_counter()
            sharded = Discoverer(DiscoveryConfig(strategy=strategy)).run(
                pool, "baseline"
            )
            sharded_walls.append(time.perf_counter() - start)
            shards = [entry["issued"] for entry in pool.stats()]
            pool.close()
            assert sharded.skyline_values == reference.skyline_values
            assert sharded.total_cost == reference.total_cost
    finally:
        for server in servers:
            server.stop()

    wall_pipelined = min(pipelined_walls)
    wall_sharded = min(sharded_walls)
    speedup = wall_pipelined / wall_sharded
    record(
        "coordinator",
        "baseline_diamonds_two_backends_vs_one",
        n=N,
        k=K,
        workers_per_backend=WORKERS,
        queries=reference.total_cost,
        skyline_size=len(reference.skyline_values),
        shard_issued=shards,
        wall_pipelined_1_backend=wall_pipelined,
        wall_sharded_2_backends=wall_sharded,
        speedup=speedup,
        trials=TRIALS,
    )
    assert all(share > 0 for share in shards)
    assert sum(shards) == reference.total_cost
    assert speedup >= MIN_SPEEDUP, (
        f"2-backend sharded crawl only {speedup:.2f}x faster than the "
        f"1-backend pipelined baseline (walls: {sharded_walls} vs "
        f"{pipelined_walls})"
    )
