"""Observability overhead records: BENCH_obs.json.

Measures what the tracing/metrics plane *costs* and writes the numbers
via :mod:`_record`:

* ``baseline_diamonds_trace_overhead`` -- wall time of the same remote
  diamonds crawl (injected wide-area latency, async data plane) with
  tracing off vs tracing on (``DiscoveryConfig(trace=...)`` writing
  JSONL spans for every dispatched/billed/merged query plus the wire
  attempts).  The acceptance bar: the traced run stays within 5% of the
  untraced wall time, at the identical skyline and billed cost -- the
  observer hooks are a ``None`` check when disabled and a buffered
  append + pre-bound counter bump when enabled, and must never become a
  second data plane.

Methodology: client and server share one interpreter here, runner load
drifts over minutes, and even back-to-back identical runs differ by
+/-10% on a busy container.  The rounds therefore run ABBA-ordered
(plain/traced order alternates each round, cancelling slot bias) and the
gate takes the *better* of two load-robust estimators -- min-to-min wall
and the median of per-round paired ratios.  A spurious failure then
needs both estimators to misfire in the same direction; the intrinsic
cost (single-threaded serial crawl, no noise) measures ~3%.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_records.py -q
"""

from __future__ import annotations

import json
import statistics
import time

from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import (
    AsyncRemoteTopKInterface,
    FaultConfig,
    HiddenDBServer,
)

N = 4_000
K = 10
SEED = 1
WORKERS = 32
#: ABBA rounds, each timing one plain and one traced run back to back.
ROUNDS = 5
#: Injected per-query latency (seconds): the realistic regime.  The crawl
#: is latency-bound, which is exactly when a per-query tracing tax would
#: be invisible; the 5% gate therefore really polices the hook overhead
#: on the dispatch path, not the file writes alone.
LATENCY = (0.002, 0.004)
#: The gate: traced wall time may exceed untraced by at most this factor.
MAX_OVERHEAD = 1.05


def _one_run(server_url, config, reference, key):
    interface = AsyncRemoteTopKInterface(server_url, api_key=key)
    start = time.perf_counter()
    result = Discoverer(config).run(interface, "baseline")
    wall = time.perf_counter() - start
    interface.close()
    assert result.skyline_values == reference.skyline_values
    assert result.total_cost == reference.total_cost
    return wall, result


def test_record_trace_overhead_under_five_percent(tmp_path):
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    trace_path = tmp_path / "crawl-trace.jsonl"
    plain_cfg = DiscoveryConfig(
        strategy="async", workers=WORKERS, batch_size=1
    )
    traced_cfg = DiscoveryConfig(
        strategy="async",
        workers=WORKERS,
        batch_size=1,
        trace=str(trace_path),
    )
    plain_walls, traced_walls = [], []
    traced = None
    with HiddenDBServer(
        table, k=K, faults=FaultConfig(latency=LATENCY, seed=5)
    ) as server:
        # One untimed warmup so caches and thread pools are settled.
        _one_run(server.url, plain_cfg, reference, "warmup")
        for round_no in range(ROUNDS):
            # ABBA: alternate which variant runs first each round.
            plain_first = round_no % 2 == 0
            for variant in (
                ("plain", "traced") if plain_first else ("traced", "plain")
            ):
                if variant == "plain":
                    wall, _ = _one_run(
                        server.url, plain_cfg, reference,
                        f"plain-{round_no}",
                    )
                    plain_walls.append(wall)
                else:
                    wall, traced = _one_run(
                        server.url, traced_cfg, reference,
                        f"traced-{round_no}",
                    )
                    traced_walls.append(wall)

    plain_wall = min(plain_walls)
    traced_wall = min(traced_walls)
    min_ratio = traced_wall / plain_wall
    paired = [t / p for p, t in zip(plain_walls, traced_walls)]
    median_ratio = statistics.median(paired)
    overhead = min(min_ratio, median_ratio)

    # The trace really was written: every billed query left a span, for
    # each of the ROUNDS appended runs.
    spans = [
        json.loads(line) for line in trace_path.read_text().splitlines()
    ]
    billed_spans = sum(1 for s in spans if s["phase"] == "billed")
    assert billed_spans == ROUNDS * reference.total_cost

    assert overhead <= MAX_OVERHEAD, (
        f"tracing overhead exceeds the {MAX_OVERHEAD:.2f}x gate by both "
        f"estimators: min-to-min {min_ratio:.3f}x "
        f"(untraced {plain_wall:.3f}s vs traced {traced_wall:.3f}s), "
        f"paired median {median_ratio:.3f}x"
    )

    record(
        "obs",
        f"baseline_diamonds_n{N}_k{K}_trace_overhead",
        untraced_wall_seconds=plain_wall,
        traced_wall_seconds=traced_wall,
        overhead_factor=overhead,
        min_to_min_ratio=min_ratio,
        paired_median_ratio=median_ratio,
        untraced_walls=[round(w, 6) for w in plain_walls],
        traced_walls=[round(w, 6) for w in traced_walls],
        queries=traced.total_cost,
        skyline=traced.skyline_size,
        spans_per_run=len(spans) // ROUNDS,
        billed_spans_per_run=billed_spans // ROUNDS,
        workers=WORKERS,
        rounds=ROUNDS,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )
