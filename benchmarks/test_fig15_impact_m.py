"""Bench for Figure 15: query cost as dimensionality grows (range predicates)."""

from repro.experiments import fig15_impact_m

from conftest import run_once


def test_fig15(benchmark):
    rows = run_once(
        benchmark, fig15_impact_m.run, ms=(2, 3, 4, 5), n=10_000, k=10,
        sq_budget=100_000,
    )
    # Skyline size and RQ cost both grow with m, and the measured cost stays
    # far below the average-case bound of Eq. (10).
    sizes = [row["S"] for row in rows]
    assert sizes == sorted(sizes)
    costs = [row["rq_cost"] for row in rows]
    assert costs[-1] >= costs[0]
    for row in rows:
        assert row["rq_cost"] <= row["avg_case_bound"] + row["S"] + 10
