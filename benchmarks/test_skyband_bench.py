"""Bench for the §7.2 extension: K-skyband discovery costs.

The paper predicts the number of range-tree executions for RQ skyband
discovery to be ``|top-(K-1) band| + 1``; this bench measures the actual
query cost across band depths on used-car data.
"""

from repro.core import Discoverer
from repro.datagen.autos import autos_table
from repro.hiddendb import LinearRanker, TopKInterface

from conftest import run_once


def _measure(n: int, bands: tuple[int, ...], seed: int) -> list[dict]:
    table = autos_table(n, seed=seed)
    rows = []
    for band in bands:
        interface = TopKInterface(
            table, ranker=LinearRanker.single_attribute(0, 3), k=50
        )
        result = Discoverer().skyband(interface, band, "rq")
        rows.append(
            {
                "band": band,
                "band_size": len(result.skyband),
                "cost": result.total_cost,
            }
        )
    return rows


def test_skyband_cost_growth(benchmark):
    rows = run_once(benchmark, _measure, n=3_000, bands=(1, 2, 3), seed=0)
    sizes = [row["band_size"] for row in rows]
    costs = [row["cost"] for row in rows]
    # Deeper bands contain more tuples and cost more queries.
    assert sizes == sorted(sizes)
    assert costs == sorted(costs)
