"""Bench for Figure 20: anytime discovery curves of SQ- and RQ-DB-SKY."""

from repro.experiments import fig20_anytime_range

from conftest import run_once


def test_fig20(benchmark):
    rows = run_once(benchmark, fig20_anytime_range.run, n=20_000, m=5, k=10)
    assert rows
    sq = [row["sq_cost"] for row in rows]
    rq = [row["rq_cost"] for row in rows]
    # Both curves are monotone.  RQ's win is asymptotic in |S| (Figure 6);
    # on a per-instance basis at bench scale it must merely stay in the same
    # ballpark as SQ by the final discovery.
    assert sq == sorted(sq)
    assert rq == sorted(rq)
    assert rq[-1] <= 2 * sq[-1]
