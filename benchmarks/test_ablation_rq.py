"""Ablation: RQ-DB-SKY's early termination (the Seen-tuple check of §4.1).

With the check disabled the traversal issues the same one-ended queries as
SQ-DB-SKY; with it enabled, redundant subtrees are pruned through R(q).
This bench quantifies the saving on anti-correlated data, where the skyline
is large and revisits dominate SQ's cost.
"""

from repro.core import Discoverer
from repro.datagen.synthetic import correlated
from repro.hiddendb import TopKInterface

from conftest import run_once


def _measure(n: int, m: int, rho: float, seed: int) -> list[dict]:
    rows = []
    for early in (True, False):
        total = 0
        for s in range(seed, seed + 3):
            table = correlated(n, m, domain=12, rho=rho, seed=s)
            result = Discoverer().run(
                TopKInterface(table, k=1), "rq",
                options={"early_termination": early},
            )
            total += result.total_cost
        rows.append({"early_termination": early, "total_cost": total})
    return rows


def test_ablation_early_termination(benchmark):
    rows = run_once(benchmark, _measure, n=1000, m=4, rho=-0.8, seed=0)
    with_check, without_check = rows[0], rows[1]
    assert with_check["early_termination"] is True
    # Early termination must save a substantial fraction of the queries.
    assert with_check["total_cost"] < 0.8 * without_check["total_cost"]
