"""Bench for Figure 13: impact of k, RQ-DB-SKY vs BASELINE."""

from repro.experiments import fig13_impact_k

from conftest import run_once


def test_fig13(benchmark):
    rows = run_once(
        benchmark, fig13_impact_k.run, n=10_000, m=4, ks=(1, 10, 50)
    )
    for row in rows:
        # The headline result: discovery beats crawling at every k.
        assert row["baseline_cost"] > 3 * row["rq_cost"]
    # Both methods get cheaper as k grows.
    assert rows[0]["rq_cost"] >= rows[-1]["rq_cost"]
    assert rows[0]["baseline_cost"] >= rows[-1]["baseline_cost"]
