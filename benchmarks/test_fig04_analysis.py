"""Bench for Figure 4: analytic average- vs worst-case SQ-DB-SKY cost."""

from repro.experiments import fig04_analysis

from conftest import run_once


def test_fig04(benchmark):
    rows = run_once(benchmark, fig04_analysis.run)
    for row in rows:
        if row["S"] >= 5:
            # The average case sits orders of magnitude below the worst case.
            assert row["worst_case"] / row["average_cost"] > 10
        # Eq. (10) upper-bounds the closed form.
        assert row["average_cost"] <= row["eq10_bound"] + 1
