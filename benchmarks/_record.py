"""Machine-readable benchmark records: ``BENCH_<group>.json`` files.

The figure benchmarks assert qualitative shapes; this helper tracks the
*performance trajectory* across PRs in a form CI can archive and diff:
each call merges one named entry into ``BENCH_<group>.json`` at the repo
root (override the directory with ``$BENCH_DIR``), e.g.::

    from _record import record
    record("core", "rq_uniform_n10k",
           wall_seconds=1.92, queries=4811, queries_per_second=2505.7)

Entries are plain metric dicts; re-recording a name overwrites it, so the
file always holds the latest run per benchmark.  CI uploads the
``BENCH_*.json`` files as workflow artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

_REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_path(group: str) -> Path:
    """Location of the ``BENCH_<group>.json`` record file."""
    base = os.environ.get("BENCH_DIR")
    root = Path(base) if base else _REPO_ROOT
    return root / f"BENCH_{group}.json"


def record(group: str, name: str, **metrics: Any) -> Path:
    """Merge one benchmark entry into ``BENCH_<group>.json``.

    ``metrics`` must be JSON-representable (numbers, strings, bools);
    floats are rounded to 6 digits to keep diffs readable.
    """
    path = bench_path(group)
    existing: dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (ValueError, OSError):
            existing = {}
    rounded = {
        key: round(value, 6) if isinstance(value, float) else value
        for key, value in metrics.items()
    }
    existing[name] = rounded
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path
