"""Durable crawl-store trajectory records: BENCH_store.json.

Measures what the persistent query ledger buys on the diamonds catalogue
and writes the numbers via :mod:`_record`:

* ``baseline_diamonds_cold_vs_warm`` -- wall time and billed queries of a
  cold remote crawl (fresh store) vs a warm-ledger re-crawl of the same
  endpoint (acceptance bar: the warm crawl bills **zero** queries and,
  with injected wide-area latency, runs far faster than the cold one);
* ``resume_after_partial_crawl`` -- a budget-truncated crawl resumed from
  the store must complete at exactly the uninterrupted cost (no answer
  ever billed twice).

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_store_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import CrawlStore, Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface

N = 2_000
K = 10
SEED = 1
WORKERS = 4
BATCH_SIZE = 16
#: Injected per-query latency (seconds): wide-area conditions under which
#: every ledger hit saves a real round trip.  Deliberately generous so the
#: cold/warm ratio is latency-dominated (the warm crawl never touches the
#: network) and the >= 2x assertion stays far from flaking on loaded CI
#: runners (measured locally: ~3-5x).
LATENCY = (0.004, 0.008)


def test_record_cold_vs_warm_ledger_crawl(tmp_path):
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    store = CrawlStore(tmp_path / "bench.db")
    with HiddenDBServer(
        table, k=K, name=f"diamonds-n{N}", faults=FaultConfig(latency=LATENCY, seed=5)
    ) as server:
        config = DiscoveryConfig(
            store=store, workers=WORKERS, batch_size=BATCH_SIZE
        )
        start = time.perf_counter()
        cold = Discoverer(config).run(
            RemoteTopKInterface(server.url, api_key="cold"), "baseline"
        )
        cold_wall = time.perf_counter() - start

        start = time.perf_counter()
        warm = Discoverer(config).run(
            RemoteTopKInterface(server.url, api_key="warm"), "baseline"
        )
        warm_wall = time.perf_counter() - start

    # Acceptance: identical skyline; the warm crawl is entirely pre-paid.
    assert cold.skyline_values == reference.skyline_values
    assert warm.skyline_values == reference.skyline_values
    assert cold.total_cost == reference.total_cost
    assert warm.total_cost == 0
    assert warm.stats.ledger_hits == cold.total_cost
    speedup = cold_wall / warm_wall
    assert speedup >= 2.0, f"warm-ledger speedup only {speedup:.2f}x"

    record(
        "store",
        f"baseline_diamonds_n{N}_k{K}_cold_vs_warm",
        cold_wall_seconds=cold_wall,
        warm_wall_seconds=warm_wall,
        speedup=speedup,
        cold_billed_queries=cold.total_cost,
        warm_billed_queries=warm.total_cost,
        warm_ledger_hits=warm.stats.ledger_hits,
        skyline=cold.skyline_size,
        workers=WORKERS,
        batch_size=BATCH_SIZE,
        engine_wall_time_s=cold.stats.wall_time_s,
        engine_queries_per_sec=cold.stats.queries_per_sec,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )


def test_record_resume_after_partial_crawl(tmp_path):
    table = diamonds_table(N, seed=SEED)
    interface = TopKInterface(table, k=K, name=f"diamonds-n{N}")
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    store = CrawlStore(tmp_path / "resume.db")
    truncated_budget = reference.total_cost // 3
    partial = Discoverer(
        DiscoveryConfig(store=store, budget=truncated_budget)
    ).run(interface, "baseline")
    assert not partial.complete
    assert partial.total_cost == truncated_budget

    resumed = Discoverer(DiscoveryConfig(store=store, resume=True)).run(
        TopKInterface(table, k=K, name=f"diamonds-n{N}"), "baseline"
    )
    assert resumed.complete
    assert resumed.skyline_values == reference.skyline_values
    # The exact durability contract: resuming costs precisely what was
    # still unpaid, never re-billing the truncated run's answers.
    assert resumed.total_cost == reference.total_cost
    assert resumed.stats.ledger_hits == truncated_budget

    record(
        "store",
        f"baseline_diamonds_n{N}_k{K}_resume",
        uninterrupted_cost=reference.total_cost,
        budget_truncated_at=truncated_budget,
        resumed_total_cost=resumed.total_cost,
        resumed_new_billed=resumed.stats.issued,
        replayed_from_ledger=resumed.stats.ledger_hits,
        skyline=resumed.skyline_size,
        engine_wall_time_s=resumed.stats.wall_time_s,
        engine_queries_per_sec=resumed.stats.queries_per_sec,
    )
