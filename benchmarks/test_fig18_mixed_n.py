"""Bench for Figure 18: MQ-DB-SKY cost vs n (3 RQ + 2 PQ attributes)."""

from repro.experiments import fig18_mixed_n

from conftest import run_once


def test_fig18(benchmark):
    rows = run_once(
        benchmark, fig18_mixed_n.run, ns=(5_000, 10_000, 20_000), k=10
    )
    # Tuple count has minimal impact: per-skyline-tuple cost stays flat.
    per_tuple = [row["cost"] / max(row["S"], 1) for row in rows]
    assert max(per_tuple) < 6 * min(per_tuple)
