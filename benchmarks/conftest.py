"""Shared helpers for the figure benchmarks.

Every benchmark regenerates one figure of the paper at laptop scale: it runs
the experiment once (``benchmark.pedantic`` with a single round -- the
metric of interest is the *query count*, not wall time), attaches the series
to ``extra_info`` so it lands in the benchmark report, and asserts the
qualitative shape the paper reports.  Full-scale series are recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and record rows."""
    rows = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    benchmark.extra_info["rows"] = [
        {key: str(value) for key, value in row.items()} for row in rows
    ]
    return rows
