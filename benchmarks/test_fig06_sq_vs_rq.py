"""Bench for Figure 6: SQ vs RQ query cost as the skyline size grows."""

from repro.experiments import fig06_sq_vs_rq

from conftest import run_once


def test_fig06(benchmark):
    rows = run_once(
        benchmark,
        fig06_sq_vs_rq.run,
        ms=(4,),
        n=2000,
        rhos=(0.8, 0.2, -0.3, -0.9),
        k=1,
        sq_budget=50_000,
    )
    # Skyline size grows as correlation falls ...
    sizes = [row["S"] for row in rows]
    assert sizes == sorted(sizes)
    # ... and RQ-DB-SKY's advantage widens with it.
    last = rows[-1]
    assert isinstance(last["sq_cost"], str) or (
        last["sq_cost"] >= 2 * last["rq_cost"]
    )
