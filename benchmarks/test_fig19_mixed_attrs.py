"""Bench for Figure 19: varying range vs point attributes in MQ-DB-SKY."""

from repro.experiments import fig19_mixed_attrs

from conftest import run_once


def test_fig19(benchmark):
    rows = run_once(
        benchmark, fig19_mixed_attrs.run, totals=(3, 4, 5), n=10_000, k=10
    )
    # Adding PQ attributes hurts much more than adding RQ attributes.
    last = rows[-1]
    assert last["cost_varying_point"] > last["cost_varying_range"]
    point_costs = [row["cost_varying_point"] for row in rows]
    assert point_costs[-1] >= point_costs[0]
