"""Data-plane throughput records: BENCH_dataplane.json.

Measures the serving throughput of the three engines behind
:class:`~repro.hiddendb.interface.TopKInterface` -- the O(n) ``scan``
reference, the rank-ordered in-memory ``rank`` path and the SQL-native
``sqlite`` path -- at n = 20k and n = 1M, plus a budgeted million-tuple
crawl, and writes every cell to ``BENCH_dataplane.json``.

Serving latency is ``engine.top_rows`` -- exactly the quantity the
``hiddendb_table_scan_seconds`` histogram tracks per engine in the
service plane -- over two answerable workload classes:

* ``broad``  -- one attribute constrained to half the domain: the root /
  early-refinement queries every crawl issues, whose answers sit near
  the top of the rank order (bounded walk depth);
* ``narrow`` -- two attributes constrained to a small window around a
  sampled row: deep refinements whose k-th answer can sit far down the
  rank order (heavy-tailed walk depth -- the fast paths' worst class).

Every engine must answer every workload cell **bit-identically** to the
scan reference before any clock is read.

Reference for the headline gate: the *recorded scan path*.  What every
prior BENCH artifact records for the pre-change data plane is the
crawl-level ``engine_queries_per_sec`` of discovery runs over the O(n)
scan (~1-3k qps; the motivation for this subsystem cites the ~3k cap).
The 20k test reproduces that recorded number in-run -- a budgeted
discovery crawl on the scan engine -- and gates the new plane against
**10x** it.  The same-methodology serving qps of the scan engine is also
recorded and gated (the honest apples-to-apples cells): the rank path
must clear several multiples of it at 20k and a flat 10x at 1M, where
O(n) dominates; sqlite -- whose design point is hosting millions of
tuples with instant start and restart survival, not beating SIMD scans
over 20k in-memory rows -- must beat scan serving at 20k and clear 10x
on its bounded-depth class at 1M.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_dataplane_records.py -q
"""

from __future__ import annotations

import time

import numpy as np
from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import independent, table_to_sqlite
from repro.hiddendb import Interval, Query, SQLTable
from repro.hiddendb.dataplane import default_ranker, make_engine

N_SMALL = 20_000
N_LARGE = 1_000_000
K = 10
SEED = 3
DOMAIN = 50
WINDOW = 12  # narrow class: ~6.8% selectivity over two attributes
RECORDED_PATH_FLOOR = 10.0  # the ISSUE-8 bar vs. the recorded scan path
LARGE_N_FLOOR = 10.0  # same-methodology bar where O(n) dominates
SMALL_N_RANK_FLOOR = 3.0  # same-methodology bar for rank at n=20k

ENGINES = ("scan", "rank", "sqlite")


def _table(n):
    return independent(n, 4, domain=DOMAIN, seed=SEED)


def _workloads(table, count, seed=11):
    """Answerable ``broad`` and ``narrow`` query classes (see module doc)."""
    rng = np.random.default_rng(seed)
    picks = table.matrix[rng.integers(0, table.n, size=count)]
    broad, narrow = [], []
    for row in picks:
        lo = max(0, min(int(row[0]) - DOMAIN // 4, DOMAIN // 2 - 1))
        broad.append(Query(ranges={0: Interval(lo, lo + DOMAIN // 2)}))
        ranges = {}
        for index in (0, 1):
            low = max(0, int(row[index]) - WINDOW // 2)
            ranges[index] = Interval(low, min(DOMAIN - 1, low + WINDOW))
        narrow.append(Query(ranges=ranges))
    return {"broad": broad, "narrow": narrow}


def _engines(table, tmp_path, n):
    ranker = default_ranker(table)
    path = tmp_path / f"bench{n}.sqlite"
    table_to_sqlite(path, table)
    sql = SQLTable(path)
    return {
        "scan": make_engine(table, ranker, "scan"),
        "rank": make_engine(table, ranker, "rank"),
        "sqlite": make_engine(sql, default_ranker(sql), "sqlite"),
    }


def _measure_serving(table, tmp_path, n, count, rounds):
    """Per-class, per-engine serving qps; bit-parity asserted first."""
    engines = _engines(table, tmp_path, n)
    workloads = _workloads(table, count)
    qps = {}
    for cls, queries in workloads.items():
        reference = None
        for name in ENGINES:
            engine = engines[name]
            engine.top_rows(queries[0], K)  # warm (rank build / page cache)
            answers = [engine.top_rows(query, K) for query in queries]
            assert all(answers), f"{cls} workload must be answerable"
            if reference is None:
                reference = answers
            else:
                assert answers == reference, (
                    f"{name} broke bit-parity with scan on {cls}"
                )
            start = time.perf_counter()
            for _ in range(rounds):
                for query in queries:
                    engine.top_rows(query, K)
            wall = time.perf_counter() - start
            qps[f"{cls}_{name}"] = rounds * len(queries) / wall
    for name in ENGINES:  # the mixed number: one broad + one narrow each
        broad, narrow = qps[f"broad_{name}"], qps[f"narrow_{name}"]
        qps[f"mixed_{name}"] = 2.0 / (1.0 / broad + 1.0 / narrow)
    return qps


def _record_cells(n, qps, extra=None):
    cells = dict(qps)
    for cls in ("broad", "narrow", "mixed"):
        scan = qps[f"{cls}_scan"]
        cells[f"{cls}_rank_speedup"] = qps[f"{cls}_rank"] / scan
        cells[f"{cls}_sqlite_speedup"] = qps[f"{cls}_sqlite"] / scan
    if extra:
        cells.update(extra)
    record("dataplane", f"serving_n{n}_k{K}", **cells)
    return cells


def test_record_dataplane_20k(tmp_path):
    table = _table(N_SMALL)
    qps = _measure_serving(table, tmp_path, N_SMALL, count=300, rounds=5)

    # The recorded scan path: crawl-level engine qps over the O(n) scan,
    # the number every earlier BENCH artifact records for this plane
    # (several rounds -- a single crawl is short enough to be noisy).
    issued = 0
    wall = 0.0
    for _ in range(5):
        interface = TopKInterface(table, k=K, engine="scan")
        result = Discoverer(DiscoveryConfig()).run(interface)
        issued += result.total_cost
        wall += result.stats.wall_time_s
    recorded_scan = issued / wall

    cells = _record_cells(
        N_SMALL,
        qps,
        extra={
            "recorded_scan_path_qps": recorded_scan,
            "rank_vs_recorded_path": qps["mixed_rank"] / recorded_scan,
            "sqlite_vs_recorded_path": qps["broad_sqlite"] / recorded_scan,
        },
    )
    # Headline gate: >= 10x the recorded scan path -- the rank path on the
    # full serving mix, sqlite on its bounded-depth class.
    assert qps["mixed_rank"] >= RECORDED_PATH_FLOOR * recorded_scan, cells
    assert qps["broad_sqlite"] >= RECORDED_PATH_FLOOR * recorded_scan, cells
    # Same-methodology serving gates at small n.
    assert qps["mixed_rank"] >= SMALL_N_RANK_FLOOR * qps["mixed_scan"], cells
    assert qps["mixed_sqlite"] > qps["mixed_scan"], cells


def test_record_serving_qps_million(tmp_path):
    # Where O(n) actually dominates, the same-methodology gate is flat
    # 10x: rank on every class, sqlite on its bounded-depth class.
    table = _table(N_LARGE)
    qps = _measure_serving(table, tmp_path, N_LARGE, count=60, rounds=1)
    cells = _record_cells(N_LARGE, qps)
    assert qps["mixed_rank"] >= LARGE_N_FLOOR * qps["mixed_scan"], cells
    assert qps["broad_sqlite"] >= LARGE_N_FLOOR * qps["broad_scan"], cells
    for cls in ("broad", "narrow"):
        assert qps[f"{cls}_rank"] > qps[f"{cls}_scan"], cells
        assert qps[f"{cls}_sqlite"] > qps[f"{cls}_scan"], cells


def test_record_million_tuple_crawl(tmp_path):
    # A budgeted discovery crawl must *sustain* over a million tuples on
    # both fast engines -- identical partial skyline and billed cost.
    table = _table(N_LARGE)
    path = table_to_sqlite(tmp_path / "crawl.sqlite", table)
    budget = 2_000
    outcomes = {}
    for name, interface in (
        ("rank", TopKInterface(table, k=K, engine="rank")),
        ("sqlite", TopKInterface(SQLTable(path), k=K, engine="sqlite")),
    ):
        start = time.perf_counter()
        result = Discoverer(DiscoveryConfig(budget=budget)).run(interface)
        wall = time.perf_counter() - start
        outcomes[name] = (result, wall)
    rank_result, rank_wall = outcomes["rank"]
    sqlite_result, sqlite_wall = outcomes["sqlite"]
    assert rank_result.skyline == sqlite_result.skyline
    assert rank_result.total_cost == sqlite_result.total_cost
    assert rank_result.complete == sqlite_result.complete
    assert rank_result.total_cost <= budget
    record(
        "dataplane",
        f"crawl_n{N_LARGE}_k{K}_budget{budget}",
        queries=rank_result.total_cost,
        skyline=rank_result.skyline_size,
        rank_wall_seconds=rank_wall,
        rank_qps=rank_result.total_cost / rank_wall,
        sqlite_wall_seconds=sqlite_wall,
        sqlite_qps=sqlite_result.total_cost / sqlite_wall,
    )
