"""Execution-engine trajectory records: BENCH_engine.json.

Measures what the frontier execution engine buys on the diamonds
catalogue and writes the numbers via :mod:`_record`:

* ``baseline_diamonds_remote`` -- serial vs pipelined wall time of a
  remote crawl against a service with injected latency (the acceptance
  bar: pipelined must be >= 2x faster with identical skyline and
  identical billed cost);
* ``sq_diamonds_dedup`` -- run-scoped memoization hit rate of SQ-DB-SKY's
  overlapping query tree;
* ``rq_diamonds_skyband_dedup`` -- cross-subspace duplicate savings of
  the RQ skyband's shared memoizer.

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_engine_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import FaultConfig, HiddenDBServer, RemoteTopKInterface

N = 2_000
K = 10
SEED = 1
WORKERS = 8
BATCH_SIZE = 16
#: Injected per-query latency (seconds): the wide-area conditions the
#: pipelined dispatch exists to hide.  Deliberately generous so the
#: serial/pipelined ratio is latency-dominated (sleeping, not computing)
#: and the >= 2x assertion stays far from flaking on loaded CI runners
#: (measured locally: ~6-10x).
LATENCY = (0.003, 0.006)


def test_record_remote_pipelined_speedup():
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    with HiddenDBServer(
        table, k=K, faults=FaultConfig(latency=LATENCY, seed=5)
    ) as server:
        serial_remote = RemoteTopKInterface(server.url, api_key="serial")
        start = time.perf_counter()
        serial = Discoverer().run(serial_remote, "baseline")
        serial_wall = time.perf_counter() - start

        piped_remote = RemoteTopKInterface(server.url, api_key="pipelined")
        start = time.perf_counter()
        piped = Discoverer(
            DiscoveryConfig(workers=WORKERS, batch_size=BATCH_SIZE)
        ).run(piped_remote, "baseline")
        piped_wall = time.perf_counter() - start

    # Acceptance: identical skyline, identical billed cost, >= 2x faster.
    assert piped.skyline_values == serial.skyline_values
    assert piped.skyline_values == reference.skyline_values
    assert piped.total_cost == serial.total_cost == reference.total_cost
    speedup = serial_wall / piped_wall
    assert speedup >= 2.0, f"pipelined speedup only {speedup:.2f}x"

    record(
        "engine",
        f"baseline_diamonds_n{N}_k{K}_remote",
        serial_wall_seconds=serial_wall,
        pipelined_wall_seconds=piped_wall,
        speedup=speedup,
        queries=piped.total_cost,
        skyline=piped.skyline_size,
        workers=WORKERS,
        batch_size=BATCH_SIZE,
        batches=piped.stats.batches,
        batched_queries=piped.stats.batched,
        max_in_flight=piped.stats.max_in_flight,
        engine_wall_time_s=piped.stats.wall_time_s,
        engine_queries_per_sec=piped.stats.queries_per_sec,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )


def test_record_sq_dedup_rate():
    table = diamonds_table(400, seed=SEED)
    plain = Discoverer().run(TopKInterface(table, k=K), "sq")
    deduped = Discoverer(DiscoveryConfig(dedup=True)).run(
        TopKInterface(table, k=K), "sq"
    )
    assert deduped.skyline_values == plain.skyline_values
    assert deduped.stats.deduped > 0
    assert deduped.total_cost + deduped.stats.deduped == plain.total_cost
    record(
        "engine",
        "sq_diamonds_n400_dedup",
        billed_queries=deduped.total_cost,
        deduped_queries=deduped.stats.deduped,
        dedup_hit_rate=deduped.stats.dedup_rate,
        rebilled_cost_without_memo=plain.total_cost,
        skyline=deduped.skyline_size,
        engine_wall_time_s=deduped.stats.wall_time_s,
        engine_queries_per_sec=deduped.stats.queries_per_sec,
    )


def test_record_skyband_shared_memo():
    table = diamonds_table(800, seed=3)
    result = Discoverer().skyband(TopKInterface(table, k=K), 3)
    assert result.complete
    assert result.stats.duplicate_queries > 0
    record(
        "engine",
        "rq_diamonds_n800_skyband3_dedup",
        billed_queries=result.total_cost,
        duplicate_queries=result.stats.duplicate_queries,
        dedup_hit_rate=result.stats.dedup_rate,
        band_size=len(result.skyband),
        engine_wall_time_s=result.stats.wall_time_s,
        engine_queries_per_sec=result.stats.queries_per_sec,
    )
