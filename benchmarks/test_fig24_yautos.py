"""Bench for Figure 24: Yahoo! Autos, MQ-DB-SKY vs BASELINE."""

from repro.experiments import fig24_yautos

from conftest import run_once


def test_fig24(benchmark):
    rows = run_once(
        benchmark, fig24_yautos.run, n=10_000, k=50, baseline_cutoff=2_000
    )
    total = rows[-1]
    # The paper reports < 2 queries per skyline car at full scale.
    per_tuple = total["mq_cost"] / total["tuples"]
    assert per_tuple < 6
    assert "found" in str(total["baseline_cost"])
