"""Async data-plane trajectory records: BENCH_async.json.

Measures what the asyncio execution substrate buys over the thread-pool
one at high worker counts and writes the numbers via :mod:`_record`:

* ``baseline_diamonds_async_vs_pipelined`` -- wall time of a wide-window
  remote crawl (per-request dispatch, injected wide-area latency) under
  ``PipelinedStrategy`` (one OS thread + one blocking ``http.client``
  connection per worker) vs ``AsyncStrategy`` driving the non-blocking
  :class:`~repro.service.aclient.AsyncRemoteTopKInterface` (one event
  loop, pooled connections, minimal HTTP parsing).  The acceptance bar:
  at ``WORKERS`` (>= 16) in-flight queries the async plane must beat the
  thread pool's wall time, at identical skyline and billed cost.  Both
  strategies are timed ``TRIALS`` times and compared min-to-min, since
  client and server share one interpreter (and one GIL) here and a
  loaded runner can stall either side.
* ``baseline_diamonds_async_batched`` -- the same crawl with ``/api/batch``
  packing enabled on both planes (recorded for the trajectory, not
  gated: batching amortises exactly the per-request overhead the async
  plane removes, so the two converge).

Run explicitly (benchmarks/ is not in the default testpaths)::

    PYTHONPATH=src python -m pytest benchmarks/test_async_records.py -q
"""

from __future__ import annotations

import time

from _record import record

from repro import Discoverer, DiscoveryConfig, TopKInterface
from repro.datagen import diamonds_table
from repro.service import (
    AsyncRemoteTopKInterface,
    FaultConfig,
    HiddenDBServer,
    RemoteTopKInterface,
)

N = 4_000
K = 10
SEED = 1
#: Dispatch-window width.  The acceptance criterion asks for >= 16; at 64
#: the thread pool pays for 64 OS threads (plus 64 server-side handler
#: threads) while the async plane pays for 64 in-flight coroutines, which
#: is where the substrates genuinely diverge.
WORKERS = 64
#: Timed runs per strategy (min is compared -- see the module docstring).
TRIALS = 3
#: Injected per-query latency (seconds): wide-area conditions.  Kept
#: moderate so the comparison is dominated by the execution substrate,
#: not by sleeping -- both strategies hide the same sleep with the same
#: window width.
LATENCY = (0.002, 0.004)


def _timed_run(make_interface, config, reference):
    walls = []
    result = None
    for trial in range(TRIALS):
        interface = make_interface(trial)
        start = time.perf_counter()
        result = Discoverer(config).run(interface, "baseline")
        walls.append(time.perf_counter() - start)
        close = getattr(interface, "close", None)
        if close is not None:
            close()
        assert result.skyline_values == reference.skyline_values
        assert result.total_cost == reference.total_cost
    return min(walls), walls, result


def test_record_async_beats_thread_pool_at_wide_windows():
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    with HiddenDBServer(
        table, k=K, faults=FaultConfig(latency=LATENCY, seed=5)
    ) as server:
        piped_wall, piped_walls, piped = _timed_run(
            lambda t: RemoteTopKInterface(server.url, api_key=f"piped-{t}"),
            DiscoveryConfig(
                strategy="pipelined", workers=WORKERS, batch_size=1
            ),
            reference,
        )
        async_wall, async_walls, asy = _timed_run(
            lambda t: AsyncRemoteTopKInterface(
                server.url, api_key=f"async-{t}"
            ),
            DiscoveryConfig(strategy="async", workers=WORKERS, batch_size=1),
            reference,
        )

    # Acceptance: same skyline, same billed cost, async strictly faster.
    speedup = piped_wall / async_wall
    assert speedup > 1.0, (
        f"async plane not faster: pipelined {piped_wall:.3f}s vs "
        f"async {async_wall:.3f}s at workers={WORKERS}"
    )

    record(
        "async",
        f"baseline_diamonds_n{N}_k{K}_async_vs_pipelined",
        pipelined_wall_seconds=piped_wall,
        async_wall_seconds=async_wall,
        speedup=speedup,
        pipelined_walls=[round(w, 6) for w in piped_walls],
        async_walls=[round(w, 6) for w in async_walls],
        queries=asy.total_cost,
        skyline=asy.skyline_size,
        workers=WORKERS,
        trials=TRIALS,
        max_in_flight=asy.stats.max_in_flight,
        engine_wall_time_s=asy.stats.wall_time_s,
        engine_queries_per_sec=asy.stats.queries_per_sec,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )


def test_record_async_batched_crawl():
    table = diamonds_table(N, seed=SEED)
    reference = Discoverer().run(TopKInterface(table, k=K), "baseline")

    with HiddenDBServer(
        table, k=K, faults=FaultConfig(latency=LATENCY, seed=5)
    ) as server:
        client = AsyncRemoteTopKInterface(server.url, api_key="batched")
        start = time.perf_counter()
        result = Discoverer(
            DiscoveryConfig(strategy="async", workers=8, batch_size=16)
        ).run(client, "baseline")
        wall = time.perf_counter() - start
        client.close()

    assert result.skyline_values == reference.skyline_values
    assert result.total_cost == reference.total_cost
    assert result.stats.batches > 0

    record(
        "async",
        f"baseline_diamonds_n{N}_k{K}_async_batched",
        wall_seconds=wall,
        queries=result.total_cost,
        skyline=result.skyline_size,
        workers=8,
        batch_size=16,
        batches=result.stats.batches,
        batched_queries=result.stats.batched,
        max_in_flight=result.stats.max_in_flight,
        engine_wall_time_s=result.stats.wall_time_s,
        engine_queries_per_sec=result.stats.queries_per_sec,
        injected_latency_ms=[LATENCY[0] * 1000, LATENCY[1] * 1000],
    )
