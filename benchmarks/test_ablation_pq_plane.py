"""Ablation: PQ-DB-SKY's plane-selection heuristic (§5.3).

The heuristic places the two largest-domain attributes in the plane, since
the plane domains contribute additively to query cost while every other
attribute contributes multiplicatively.  The ablation forces the *smallest*
pair into the plane instead.
"""

from repro.core import Discoverer, choose_plane_attributes
from repro.datagen.flights import flights_pq_table
from repro.hiddendb import TopKInterface

from conftest import run_once


def _measure(n: int, m: int, seed: int) -> list[dict]:
    table = flights_pq_table(n, m, seed=seed)
    sizes = table.schema.domain_sizes
    best_pair = choose_plane_attributes(sizes)
    worst_pair = tuple(
        sorted(sorted(range(m), key=lambda i: (sizes[i], i))[:2])
    )
    rows = []
    for label, pair in (("largest-domains", best_pair),
                        ("smallest-domains", worst_pair)):
        result = Discoverer().run(
            TopKInterface(table, k=10), "pq",
            options={"plane_attributes": pair},
        )
        rows.append({"plane": label, "pair": pair, "cost": result.total_cost})
    return rows


def test_ablation_plane_selection(benchmark):
    rows = run_once(benchmark, _measure, n=10_000, m=4, seed=0)
    heuristic, ablated = rows[0], rows[1]
    if heuristic["pair"] != ablated["pair"]:
        # The heuristic pair must not lose to the worst pair.
        assert heuristic["cost"] <= ablated["cost"]
