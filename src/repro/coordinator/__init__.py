"""Sharded multi-tenant crawl coordination: discovery jobs as a service.

This package is the deployment layer above the networked service: where
:mod:`repro.service` exposes *one* hidden database and
:mod:`repro.store` makes *one* crawl durable, the coordinator runs
discovery as a shared service over a **pool** of backends and a
**shared** ledger:

* :class:`EndpointSet` -- N :class:`~repro.service.RemoteTopKInterface`
  backends (each with its own API key and budget) behind one
  :class:`~repro.hiddendb.SearchEndpoint`: fingerprint-verified, sharded
  by canonical query key, with work stealing when a backend stalls or
  exhausts its budget;
* :class:`ShardedStrategy` -- the execution-engine strategy that drains
  a frontier across every backend of a set while preserving the engine's
  cost/skyline determinism (a sharded run pays exactly what a serial
  single-backend run pays);
* :class:`CrawlCoordinator` -- the ``repro coordinate`` daemon: accepts
  jobs over JSON (``POST /api/jobs``), streams anytime progress
  (``GET /api/jobs/<id>``), cancels (``DELETE``), and checkpoints every
  job through :class:`~repro.store.CrawlStore` sessions so concurrent
  tenants share one ledger (a duplicate job bills ~nothing) and
  ``--resume`` recovers every unfinished job after a crash.

Typical embedded usage::

    from repro.coordinator import CrawlCoordinator

    with CrawlCoordinator(
        ["http://db-a:8080=key1", "http://db-b:8080=key2"],
        "jobs.db",
    ) as coord:
        # POST {"algorithm": "sq-db-sky", "tenant": "alice"} to
        # http://127.0.0.1:<coord.port>/api/jobs, then poll
        # /api/jobs/<job_id> until status is "finished".
        coord.wait()
"""

from .daemon import (
    RESUMABLE_STATUSES,
    CrawlCoordinator,
    JobCancelled,
    JobRejected,
)
from .endpoints import (
    BackendSpec,
    EndpointSet,
    EndpointSetError,
    ShardedStrategy,
)

__all__ = [
    "BackendSpec",
    "CrawlCoordinator",
    "EndpointSet",
    "EndpointSetError",
    "JobCancelled",
    "JobRejected",
    "RESUMABLE_STATUSES",
    "ShardedStrategy",
]
