"""The crawl coordinator daemon: discovery-jobs-as-a-service.

``repro coordinate`` runs a :class:`CrawlCoordinator`: a threaded HTTP
service that accepts *discovery jobs* over JSON, fans each job's frontier
out across a pool of hidden-database backends (an
:class:`~repro.coordinator.endpoints.EndpointSet`, sharded by canonical
query key with work stealing), and bills every tenant through one shared
:class:`~repro.store.CrawlStore` ledger.

Routes
------
``GET  /healthz``          liveness, endpoint fingerprint, per-backend
                           health and budget headroom, job counts
``GET  /api/schema``       the pooled endpoint's bootstrap metadata
``GET  /api/jobs``         compact job catalog
``POST /api/jobs``         submit a job (``algorithm``, ``budget``,
                           ``tenant``, ``workers``, ``dedup``,
                           ``checkpoint_every``, optional pinned
                           ``fingerprint`` -> 409 on mismatch, optional
                           ``watch: {interval_s}`` -> keep monitoring
                           after the crawl and repair the skyline with a
                           delta-crawl whenever the endpoint mutates)
``GET  /api/jobs/<id>``    anytime status: live billed cost, engine
                           stats, per-shard counters and the durable
                           checkpoint's skyline-so-far
``DELETE /api/jobs/<id>``  cancel (the job's crawl session stays
                           ``running``, i.e. resumable)
``GET  /api/stats``        operational counters: uptime, in-flight
                           requests, per-route request totals, job
                           counts, per-job/per-tenant query totals,
                           shard routing and work-steal counters
``GET  /metrics``          the same counters (plus checkpoint-lag,
                           job-count and freshness gauges: stale ledger
                           entries, delta-crawl billing, skyline age)
                           in Prometheus text format

Multi-tenancy and durability both come from the store: every job owns a
pre-assigned crawl session, all sessions of one endpoint share the query
ledger (a second tenant submitting the same job bills ~nothing -- its
queries replay free from the first tenant's paid-for answers), and a
coordinator killed mid-job is restarted with ``--resume``, which re-runs
every job the catalog still lists as queued/running under its original
session -- replaying the paid prefix instead of re-billing it.
"""

from __future__ import annotations

import dataclasses
import errno
import itertools
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler
from typing import Any, Iterable, Mapping

from ..core.base import DiscoverySession
from ..obs import MetricsRegistry, RunObserver, render_prometheus
from ..obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..core.registry import (
    AlgorithmNotFoundError,
    DiscoveryConfig,
    get_algorithm,
    resolve_algorithm,
)
from ..freshness import DeltaCrawl
from ..hiddendb import QueryBudgetExceeded
from ..hiddendb.errors import HiddenDBError
from ..service.server import ServiceStartupError, _QuietThreadingHTTPServer
from ..service.wire import JOB_SPEC_DEFAULTS, decode_job_spec, encode_job_spec, encode_schema
from ..store import CrawlStore
from .endpoints import BackendSpec, EndpointSet, ShardedStrategy

logger = logging.getLogger("repro.coordinator")

#: Job-catalog statuses ``--resume`` picks back up: jobs that never ran,
#: and jobs a dead coordinator left mid-crawl.
RESUMABLE_STATUSES = ("queued", "running")


class JobCancelled(HiddenDBError):
    """A tenant cancelled the job mid-crawl (raised out of the query hook).

    Deliberately *not* a :class:`QueryBudgetExceeded`: algorithms must not
    swallow it into a partial result -- it has to unwind to the job runner,
    which marks the job cancelled while leaving its crawl session
    ``running`` (so a resubmitted or resumed job picks up the paid-for
    prefix).
    """


class JobRejected(HiddenDBError):
    """A job submission the coordinator refuses (HTTP 4xx, not a crash)."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.error = error


class _ActiveJob:
    """In-memory handle of a queued-or-running job."""

    __slots__ = ("job_id", "cancel", "future", "session", "endpoints")

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.cancel = threading.Event()
        self.future = None
        self.session: DiscoverySession | None = None
        self.endpoints: EndpointSet | None = None


class CrawlCoordinator:
    """Sharded multi-tenant crawl coordinator over a shared ledger.

    Parameters
    ----------
    backends:
        Backend pool specs (``BackendSpec`` or ``"URL[=APIKEY]"``
        strings).  All must serve the same endpoint fingerprint.
    store:
        The shared :class:`CrawlStore` (or a path to open; a path is
        closed again by :meth:`stop`).
    host / port:
        Bind address (``port=0`` picks a free port, reported by
        :attr:`port` once started).
    workers_per_backend:
        Default in-flight window per backend per job (a job's ``workers``
        field overrides it).
    max_parallel_jobs:
        Jobs crawled concurrently; the rest queue in submission order.
    resume:
        Re-enqueue every catalog job still ``queued``/``running`` at
        startup (the restart-recovery path).
    """

    def __init__(
        self,
        backends: Iterable[BackendSpec | str],
        store: "CrawlStore | str",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers_per_backend: int = 4,
        max_parallel_jobs: int = 4,
        client_timeout: float = 30.0,
        client_retries: int = 8,
        resume: bool = False,
    ) -> None:
        self._specs = tuple(
            b if isinstance(b, BackendSpec) else BackendSpec.parse(str(b))
            for b in backends
        )
        if not self._specs:
            raise ValueError("coordinator needs at least one backend")
        if isinstance(store, CrawlStore):
            self._store = store
            self._owns_store = False
        else:
            self._store = CrawlStore(store)
            self._owns_store = True
        self._host = host
        self._requested_port = port
        self._bound_port: int | None = None
        self._workers_per_backend = max(int(workers_per_backend), 1)
        self._max_parallel_jobs = max(int(max_parallel_jobs), 1)
        self._client_timeout = client_timeout
        self._client_retries = client_retries
        self._resume = resume
        self._probe: EndpointSet | None = None
        self._fingerprint = ""
        self._pool: ThreadPoolExecutor | None = None
        self._httpd: _QuietThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._active: dict[str, _ActiveJob] = {}
        self._active_lock = threading.Lock()
        self._started: float | None = None
        # Per-instance observability scope (scraped at /metrics).  One
        # observer serves every job: per-job EndpointSets feed it shard
        # routing / work-steal counters, the shared store feeds it ledger
        # and checkpoint events (checkpoint timestamps drive the lag
        # gauge below).
        self._metrics = MetricsRegistry()
        self._observer = RunObserver(registry=self._metrics)
        self._m_requests = self._metrics.counter(
            "coordinator_requests_total",
            "HTTP requests received, by route.",
            ("route",),
        )
        self._m_inflight = self._metrics.gauge(
            "coordinator_requests_in_flight",
            "HTTP requests currently being processed.",
        )
        self._m_job_queries = self._metrics.counter(
            "coordinator_job_queries_total",
            "Query answers delivered to each job, by tenant.",
            ("job", "tenant"),
        )
        self._m_jobs = self._metrics.gauge(
            "coordinator_jobs",
            "Catalog job counts, by status (refreshed at scrape).",
            ("status",),
        )
        self._m_ckpt_lag = self._metrics.gauge(
            "coordinator_checkpoint_lag_seconds",
            "Seconds since each session's last durable checkpoint "
            "(refreshed at scrape).",
            ("session",),
        )
        self._m_stale = self._metrics.gauge(
            "freshness_ledger_stale_entries",
            "Ledger entries billed at an older data version or expired "
            "(refreshed at scrape).",
        )
        self._m_delta_queries = self._metrics.counter(
            "freshness_delta_queries_total",
            "Queries billed by delta-crawl repair cycles, by job.",
            ("job",),
        )
        self._m_skyline_age = self._metrics.gauge(
            "freshness_skyline_age_seconds",
            "Seconds since each watch job last verified its skyline "
            "against the live endpoint (refreshed at scrape).",
            ("job",),
        )
        #: job_id -> monotonic time of the last completed crawl or repair
        #: cycle (drives the skyline-age gauge above).
        self._skyline_verified_at: dict[str, float] = {}
        # Observer-owned families this daemon reads back for /api/stats
        # (get-or-create returns the instances the observer registered).
        self._m_shard = self._metrics.counter(
            "repro_shard_queries_total",
            "Queries routed to each backend shard.",
            ("backend",),
        )
        self._m_steal = self._metrics.counter(
            "repro_work_steals_total",
            "Queries served off their home shard (work stealing).",
            ("backend",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CrawlCoordinator":
        """Verify the backend pool, bind the socket, replay the catalog."""
        if self._httpd is not None:
            raise RuntimeError("coordinator already started")
        # One long-lived probe set for health/schema/identity; jobs get
        # their own EndpointSet so per-job billing telemetry stays exact.
        self._probe = EndpointSet(
            self._specs,
            timeout=self._client_timeout,
            max_retries=self._client_retries,
        )
        self._fingerprint = self._probe.fingerprint
        self._started = time.monotonic()
        self._store.attach_observer(self._observer)
        self._store.register_endpoint(
            self._probe.schema,
            self._probe.k,
            name=self._probe.service_name,
            ranking=self._probe.ranking_label,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_parallel_jobs, thread_name_prefix="repro-job"
        )
        handler = _make_coordinator_handler(self)
        try:
            self._httpd = _QuietThreadingHTTPServer(
                (self._host, self._requested_port), handler
            )
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                reason = (
                    "already in use"
                    if exc.errno == errno.EADDRINUSE
                    else "not permitted"
                )
                raise ServiceStartupError(
                    f"port {self._requested_port} on {self._host or '*'} is "
                    f"{reason}; pick another --port (0 chooses a free one) "
                    f"or stop the process bound to it"
                ) from None
            raise
        self._bound_port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-coordinator:{self.port}",
            daemon=True,
        )
        self._thread.start()
        if self._resume:
            replayed = self._replay_catalog()
            if replayed:
                logger.info("resumed %d catalog job(s)", replayed)
        logger.info(
            "coordinating %d backend(s), fingerprint %s, at %s",
            len(self._specs), self._fingerprint[:8], self.url,
        )
        return self

    def _replay_catalog(self) -> int:
        """Re-enqueue unfinished jobs, oldest first (their original order)."""
        stale = [
            job
            for job in reversed(self._store.jobs(status=RESUMABLE_STATUSES))
            if job.fingerprint == self._fingerprint
        ]
        for job in stale:
            self._launch(job.job_id)
        return len(stale)

    def stop(self, *, cancel_jobs: bool = True) -> None:
        """Shut down the HTTP front end and the job pool (idempotent).

        With ``cancel_jobs`` every running job is asked to stop at its
        next answer and the pool is joined; without it the daemon exits
        while jobs keep their catalog rows ``running`` -- exactly the
        state ``--resume`` recovers from.
        """
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._httpd = None
            self._thread = None
        if cancel_jobs:
            with self._active_lock:
                active = list(self._active.values())
            for job in active:
                job.cancel.set()
        if self._pool is not None:
            self._pool.shutdown(wait=cancel_jobs, cancel_futures=True)
            self._pool = None
        if self._probe is not None:
            self._probe.close()
            self._probe = None
        self._store.attach_observer(None)
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "CrawlCoordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def wait(self, timeout: float | None = None) -> None:
        """Block while the coordinator serves (CLI foreground mode)."""
        if self._thread is None:
            raise RuntimeError("coordinator not started")
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bind host."""
        return self._host

    @property
    def port(self) -> int:
        """Actual bound port (resolves ``port=0`` once started)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL tenants should connect to."""
        host = self._host
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        elif ":" in host:
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    @property
    def fingerprint(self) -> str:
        """Endpoint fingerprint of the coordinated backend pool."""
        return self._fingerprint

    @property
    def store(self) -> CrawlStore:
        """The shared crawl store (ledger + job catalog)."""
        return self._store

    @property
    def backends(self) -> tuple[BackendSpec, ...]:
        """The coordinated backend pool."""
        return self._specs

    # ------------------------------------------------------------------
    # job intake
    # ------------------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and file one job submission; returns its status view."""
        assert self._probe is not None, "coordinator not started"
        try:
            spec = decode_job_spec(payload)
        except ValueError as exc:
            raise JobRejected(400, "bad_request", str(exc)) from None
        wanted = spec["fingerprint"]
        if wanted and wanted != self._fingerprint:
            raise JobRejected(
                409,
                "fingerprint_mismatch",
                f"coordinator serves endpoint {self._fingerprint}; the job "
                f"is pinned to {wanted}",
            )
        if spec["algorithm"]:
            try:
                algo = get_algorithm(spec["algorithm"])
            except AlgorithmNotFoundError as exc:
                raise JobRejected(400, "bad_request", str(exc.args[0])) from None
            if not algo.supports(self._probe.schema):
                raise JobRejected(
                    400,
                    "bad_request",
                    f"algorithm {algo.name!r} does not support this "
                    f"endpoint's interface taxonomy",
                )
        else:
            algo = resolve_algorithm(self._probe.schema)
        record = self._store.create_job(
            self._fingerprint,
            tenant=spec["tenant"],
            algorithm=algo.name,
            spec=encode_job_spec(spec),
            backends=len(self._specs),
        )
        self._launch(record.job_id)
        status = self.job_status(record.job_id)
        assert status is not None
        return status

    def cancel(self, job_id: str) -> dict[str, Any] | None:
        """Cancel a job; terminal jobs are left as-is.  ``None`` = no job."""
        record = self._store.job(job_id)
        if record is None:
            return None
        with self._active_lock:
            active = self._active.get(job_id)
        if active is not None:
            active.cancel.set()
            if active.future is not None and active.future.cancel():
                # Still queued: it never started, finalise it here.
                self._store.update_job(
                    job_id, status="cancelled", error="cancelled before start"
                )
                with self._active_lock:
                    self._active.pop(job_id, None)
        elif record.status in RESUMABLE_STATUSES:
            # Orphan of a previous coordinator incarnation.
            self._store.update_job(
                job_id, status="cancelled", error="cancelled"
            )
        return self.job_status(job_id)

    # ------------------------------------------------------------------
    # status views (what the HTTP routes serve)
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        assert self._probe is not None, "coordinator not started"
        counts: dict[str, int] = {}
        for job in self._store.jobs():
            counts[job.status] = counts.get(job.status, 0) + 1
        with self._active_lock:
            active = len(self._active)
        return {
            "status": "ok",
            "fingerprint": self._fingerprint,
            "backends": self._probe.backend_status(),
            "jobs": counts,
            "active_jobs": active,
        }

    def schema_payload(self) -> dict[str, Any]:
        assert self._probe is not None, "coordinator not started"
        return {
            "name": self._probe.service_name,
            "k": self._probe.k,
            "schema": encode_schema(self._probe.schema),
            "ranking": self._probe.ranking_label,
            "fingerprint": self._fingerprint,
            "batch": False,
            "backends": len(self._specs),
        }

    @property
    def metrics(self) -> MetricsRegistry:
        """Per-instance metrics scope (rendered at ``GET /metrics``)."""
        return self._metrics

    @property
    def uptime_s(self) -> float | None:
        """Seconds since :meth:`start` verified the pool (``None`` before)."""
        if self._started is None:
            return None
        return time.monotonic() - self._started

    def _job_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for job in self._store.jobs():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def _refresh_derived_gauges(self) -> None:
        """Set the scrape-time gauges (job counts, checkpoint lag)."""
        for status, count in self._job_counts().items():
            self._m_jobs.set(count, status=status)
        now = time.monotonic()
        for session_id, at in list(self._observer.checkpoint_at.items()):
            self._m_ckpt_lag.set(max(now - at, 0.0), session=session_id)
        if self._fingerprint:
            self._m_stale.set(
                self._store.ledger_stale_count(self._fingerprint)
            )
        for job_id, at in list(self._skyline_verified_at.items()):
            self._m_skyline_age.set(max(now - at, 0.0), job=job_id)

    def metrics_payload(self) -> tuple[int, str, str]:
        """Prometheus text exposition of the per-instance registry."""
        self._refresh_derived_gauges()
        return 200, render_prometheus(self._metrics), METRICS_CONTENT_TYPE

    def stats_payload(self) -> dict[str, Any]:
        """Operational counters served at ``GET /api/stats``."""
        uptime = self.uptime_s
        with self._active_lock:
            active = len(self._active)
        per_job: dict[str, int] = {}
        per_tenant: dict[str, int] = {}
        for (job_id, tenant), value in self._m_job_queries.samples():
            per_job[job_id] = per_job.get(job_id, 0) + int(value)
            per_tenant[tenant] = per_tenant.get(tenant, 0) + int(value)
        return {
            "name": "coordinator",
            "uptime_s": round(uptime, 3) if uptime is not None else None,
            "in_flight": int(self._m_inflight.value()),
            "fingerprint": self._fingerprint,
            "backends": len(self._specs),
            "jobs": self._job_counts(),
            "active_jobs": active,
            "queries_by_job": per_job,
            "queries_by_tenant": per_tenant,
            "requests": {
                labels[0]: int(value)
                for labels, value in self._m_requests.samples()
            },
            "shards": {
                labels[0]: int(value)
                for labels, value in self._m_shard.samples()
            },
            "steals": {
                labels[0]: int(value)
                for labels, value in self._m_steal.samples()
            },
        }

    def jobs_index(self) -> dict[str, Any]:
        return {
            "jobs": [
                {
                    "job_id": job.job_id,
                    "tenant": job.tenant,
                    "algorithm": job.algorithm,
                    "status": job.status,
                    "backends": job.backends,
                    "billed": job.progress.get("billed"),
                    "created_at": job.created_at,
                }
                for job in self._store.jobs()
            ]
        }

    def job_status(self, job_id: str) -> dict[str, Any] | None:
        """Anytime view of one job, or ``None`` if the catalog has none."""
        record = self._store.job(job_id)
        if record is None:
            return None
        body: dict[str, Any] = {
            "job_id": record.job_id,
            "tenant": record.tenant,
            "algorithm": record.algorithm,
            "status": record.status,
            "fingerprint": record.fingerprint,
            "session_id": record.session_id,
            "backends": record.backends,
            "spec": dict(record.spec),
            "progress": dict(record.progress),
            "result": dict(record.result) if record.result else None,
            "error": record.error,
            "created_at": record.created_at,
            "updated_at": record.updated_at,
        }
        with self._active_lock:
            active = self._active.get(job_id)
        if active is not None and active.session is not None:
            # Live counters straight off the running session; the durable
            # checkpoint below lags by at most ``checkpoint_every`` answers.
            body["live"] = self._progress_of(active)
        stored = self._store.session(record.session_id)
        if stored is not None:
            body["checkpoint"] = dict(stored.checkpoint)
        return body

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _launch(self, job_id: str) -> None:
        assert self._pool is not None, "coordinator not started"
        active = _ActiveJob(job_id)
        with self._active_lock:
            self._active[job_id] = active
        active.future = self._pool.submit(self._run_job, active)

    def _progress_of(self, active: _ActiveJob) -> dict[str, Any]:
        session, endpoints = active.session, active.endpoints
        assert session is not None and endpoints is not None
        return {
            "billed": session.cost,
            "stats": session.engine_stats.as_dict(),
            "shards": endpoints.stats(),
        }

    def _result_payload(
        self, result: Any, endpoints: EndpointSet
    ) -> dict[str, Any]:
        payload = {
            "algorithm": result.algorithm,
            "complete": bool(result.complete),
            "total_cost": int(result.total_cost),
            "skyline_size": result.skyline_size,
            "skyline": sorted(
                [int(v) for v in row.values] for row in result.skyline
            ),
            "stats": result.stats.as_dict() if result.stats else None,
            "shards": endpoints.stats(),
        }
        freshness = getattr(result, "freshness", None)
        if freshness is not None:
            payload["freshness"] = freshness.as_dict()
        return payload

    def _run_job(self, active: _ActiveJob) -> None:
        job_id = active.job_id
        store = self._store
        record = store.job(job_id)
        if record is None:  # pragma: no cover - catalog raced away
            return
        if active.cancel.is_set():
            store.update_job(
                job_id, status="cancelled", error="cancelled before start"
            )
            with self._active_lock:
                self._active.pop(job_id, None)
            return
        spec = dict(JOB_SPEC_DEFAULTS)
        spec.update(record.spec)
        endpoints: EndpointSet | None = None
        try:
            endpoints = EndpointSet(
                self._specs,
                timeout=self._client_timeout,
                max_retries=self._client_retries,
                observer=self._observer,
            )
            algo = get_algorithm(record.algorithm)
            strategy = ShardedStrategy(
                endpoints,
                workers_per_backend=int(
                    spec["workers"] or self._workers_per_backend
                ),
            )
            update_every = max(int(spec["checkpoint_every"]), 1)
            answers = itertools.count(1)

            tenant = record.tenant

            def on_query(_result: Any) -> None:
                if active.cancel.is_set():
                    raise JobCancelled(f"job {job_id} cancelled")
                self._m_job_queries.inc(job=job_id, tenant=tenant)
                if next(answers) % update_every == 0:
                    store.update_job(job_id, progress=self._progress_of(active))

            cfg = DiscoveryConfig(
                budget=spec["budget"],
                dedup=spec["dedup"],
                strategy=strategy,
                store=store,
                session_id=record.session_id,
                checkpoint_every=update_every,
                on_query=on_query,
            )
            store.update_job(job_id, status="running")
            session = DiscoverySession.from_config(
                endpoints, cfg, algorithm=algo.name
            )
            active.session = session
            active.endpoints = endpoints
            complete = True
            try:
                algo.run(session, cfg)
            except QueryBudgetExceeded:
                complete = False
            result = session.result(algo.display(endpoints.schema), complete)
            result = dataclasses.replace(
                result,
                config=cfg,
                info=algo.info(),
                store_session=session.store_session,
            )
            session.finish_store(result)
            watching = bool(spec.get("watch")) and result.complete
            store.update_job(
                job_id,
                # A watch job keeps its catalog row ``running`` between
                # cycles, so a restarted coordinator's --resume re-arms it.
                status="running" if watching
                else ("finished" if result.complete else "partial"),
                progress=self._progress_of(active),
                result=self._result_payload(result, endpoints),
            )
            self._skyline_verified_at[job_id] = time.monotonic()
            if watching:
                self._watch(
                    active, record, spec, endpoints, algo, strategy,
                    update_every, on_query,
                )
                store.update_job(
                    job_id, status="cancelled", error="watch stopped"
                )
        except JobCancelled:
            store.update_job(
                job_id, status="cancelled", error="cancelled by tenant"
            )
        except BaseException as exc:  # noqa: BLE001 - job isolation
            logger.exception("job %s failed", job_id)
            try:
                store.update_job(
                    job_id,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
            except Exception:  # pragma: no cover - store went away too
                pass
        finally:
            if endpoints is not None:
                endpoints.close()
            with self._active_lock:
                self._active.pop(job_id, None)

    def _watch(
        self,
        active: _ActiveJob,
        record: Any,
        spec: Mapping[str, Any],
        endpoints: EndpointSet,
        algo: Any,
        strategy: ShardedStrategy,
        update_every: int,
        on_query: Any,
    ) -> None:
        """Continuous-monitor loop of a ``watch`` job.

        Sleeps ``interval_s`` between cycles (waking immediately on
        cancel), then repairs the job's skyline with a delta-crawl against
        the live endpoint.  An unchanged endpoint costs ~nothing: the
        repair finds no stale ledger entries, issues no probes and replays
        everything free.  Each cycle refreshes the job's result payload
        (carrying the ``freshness`` repair report), a ``watch`` progress
        block and the freshness metric families.  Returns when the tenant
        cancels; budget exhaustion mid-repair leaves the cycle partial and
        keeps watching.
        """
        job_id = active.job_id
        interval = float(spec["watch"]["interval_s"])
        cycles = 0
        while not active.cancel.wait(interval):
            cycles += 1
            endpoints.refresh_data_version()
            delta_cfg = DiscoveryConfig(
                budget=spec["budget"],
                dedup=spec["dedup"],
                strategy=strategy,
                store=self._store,
                session_id=record.session_id,
                checkpoint_every=update_every,
                on_query=on_query,
                mode="delta",
            )
            repair = DeltaCrawl(endpoints, algo, delta_cfg).run()
            report = repair.freshness
            assert report is not None
            if report.billed:
                self._m_delta_queries.inc(report.billed, job=job_id)
            self._skyline_verified_at[job_id] = time.monotonic()
            watch_progress = {
                "cycles": cycles,
                "epoch": report.epoch,
                "billed": report.billed,
                "complete": bool(repair.complete),
                "skyline_changed": report.skyline_changed,
                "skyline_added": sorted(
                    [int(v) for v in values] for values in report.skyline_added
                ),
                "skyline_removed": sorted(
                    [int(v) for v in values]
                    for values in report.skyline_removed
                ),
                "revalidated": report.revalidated,
            }
            self._store.update_job(
                job_id,
                status="running",
                progress={
                    **self._progress_of(active),
                    "watch": watch_progress,
                },
                result=self._result_payload(repair, endpoints),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "running" if self._httpd is not None else "stopped"
        return (
            f"CrawlCoordinator({len(self._specs)} backends, {state} at "
            f"{self.url})"
        )


def _make_coordinator_handler(
    coordinator: CrawlCoordinator,
) -> type[BaseHTTPRequestHandler]:
    """Build the request-handler class bound to one coordinator."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        disable_nagle_algorithm = True

        # -- plumbing ---------------------------------------------------
        def _reply(self, status: int, body: dict[str, Any]) -> None:
            encoded = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        def _read_json(self) -> dict[str, Any] | None:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                return None
            return payload if isinstance(payload, dict) else None

        def _job_id(self) -> str | None:
            prefix = "/api/jobs/"
            if not self.path.startswith(prefix):
                return None
            return self.path[len(prefix):] or None

        def _route(self) -> str:
            # Collapse per-job paths so the request counter stays
            # bounded-cardinality.
            if self.path.startswith("/api/jobs/"):
                return "/api/jobs/:id"
            return self.path

        def _tracked(self, inner: Any) -> None:
            coordinator._m_inflight.inc()
            try:
                inner()
            finally:
                coordinator._m_inflight.dec()
                coordinator._m_requests.inc(route=self._route())

        def _reply_text(
            self, status: int, text: str, content_type: str = "text/plain"
        ) -> None:
            encoded = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)

        # -- routes -----------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            self._tracked(self._get)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            self._tracked(self._post)

        def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
            self._tracked(self._delete)

        def _get(self) -> None:
            if self.path == "/healthz":
                self._reply(200, coordinator.health())
            elif self.path == "/api/schema":
                self._reply(200, coordinator.schema_payload())
            elif self.path == "/api/stats":
                self._reply(200, coordinator.stats_payload())
            elif self.path == "/metrics":
                status, text, content_type = coordinator.metrics_payload()
                self._reply_text(status, text, content_type)
            elif self.path == "/api/jobs":
                self._reply(200, coordinator.jobs_index())
            elif (job_id := self._job_id()) is not None:
                body = coordinator.job_status(job_id)
                if body is None:
                    self._reply(
                        404,
                        {"error": "not_found",
                         "message": f"no job {job_id!r}"},
                    )
                else:
                    self._reply(200, body)
            else:
                self._reply(404, {"error": "not_found"})

        def _post(self) -> None:
            if self.path != "/api/jobs":
                self._reply(404, {"error": "not_found"})
                return
            payload = self._read_json()
            if payload is None:
                self._reply(
                    400,
                    {"error": "bad_request", "message": "invalid JSON body"},
                )
                return
            try:
                body = coordinator.submit(payload)
            except JobRejected as exc:
                self._reply(exc.status, {"error": exc.error,
                                         "message": str(exc)})
            else:
                self._reply(201, body)

        def _delete(self) -> None:
            job_id = self._job_id()
            if job_id is None:
                self._reply(404, {"error": "not_found"})
                return
            body = coordinator.cancel(job_id)
            if body is None:
                self._reply(
                    404,
                    {"error": "not_found", "message": f"no job {job_id!r}"},
                )
            else:
                self._reply(200, body)

        def log_message(self, format: str, *args: Any) -> None:
            logger.debug("%s %s", self.address_string(), format % args)

    return Handler


__all__ = [
    "CrawlCoordinator",
    "JobCancelled",
    "JobRejected",
    "RESUMABLE_STATUSES",
]
