"""Sharded endpoint fan-out: N remote backends behind one search endpoint.

A coordinator serves discovery jobs against *several* deployments of the
same hidden database -- e.g. two mirrors of one flight-search site, each
with its own API key and per-key query budget.  :class:`EndpointSet` makes
that pool look like a single :class:`~repro.hiddendb.endpoint.SearchEndpoint`:

* **identity** -- every backend must advertise the same endpoint
  fingerprint (schema + ``k`` + name + ranking, verified from the free
  bootstrap metadata), because answers from *different* databases must
  never be merged into one skyline;
* **sharding** -- each query has a *home* backend chosen by a stable hash
  of its canonical key, so repeated queries land on the same mirror and
  its server-side replay cache keeps working across restarts;
* **work stealing** -- when the home backend has exhausted its budget (or
  died after the client's retry schedule), the query spills to the next
  healthy backend instead of failing the whole crawl.  Only when *every*
  backend is exhausted does :class:`~repro.hiddendb.QueryBudgetExceeded`
  propagate, turning the run into the usual partial anytime result.

Because the paper's cost metric bills a query the same no matter which
mirror answers it, sharding changes wall-clock time only: a crawl fanned
over an :class:`EndpointSet` issues the exact query set -- and therefore
pays the exact cost and discovers the exact skyline -- of a single-backend
run.  :class:`ShardedStrategy` plugs the set into the execution engine via
the :meth:`~repro.core.engine.PipelinedStrategy._endpoint_for` drain hook,
keeping the engine's strict dispatch-order merge (the determinism
invariant) untouched.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..hiddendb import Query, QueryBudgetExceeded, QueryResult
from ..hiddendb.errors import HiddenDBError
from ..core.adaptive import AdaptiveWindow, resolve_workers
from ..core.engine import DEFAULT_WORKERS, PipelinedStrategy, QueryEngine
from ..service.client import RemoteServiceError, RemoteTopKInterface
from ..service.server import ANONYMOUS_KEY


class EndpointSetError(HiddenDBError):
    """The backend pool cannot act as one coherent endpoint.

    Raised when the pool is empty or its backends disagree on endpoint
    identity (different schema/``k``/ranking fingerprints): merging
    answers from different databases would corrupt the skyline.
    """


@dataclass(frozen=True)
class BackendSpec:
    """One backend of a sharded deployment: where it lives, how it bills.

    ``api_key`` of ``None`` queries anonymously (the server's shared
    default-budget pool).
    """

    url: str
    api_key: str | None = None

    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """The CLI's ``--backend`` syntax: ``URL`` or ``URL=APIKEY``."""
        url, sep, key = text.partition("=")
        url = url.strip()
        if not url:
            raise ValueError(f"backend spec {text!r} has no URL")
        return cls(url, key.strip() or None) if sep else cls(url)


class _Backend:
    """Runtime state of one pooled backend."""

    __slots__ = ("spec", "client", "exhausted", "unhealthy", "stolen", "error")

    def __init__(self, spec: BackendSpec, client: Any) -> None:
        self.spec = spec
        self.client = client
        #: Budget spent: skipped by the router for the rest of this set's life.
        self.exhausted = False
        #: Transport declared it dead after the client's full retry schedule.
        self.unhealthy = False
        #: Queries this backend absorbed for another backend's shard.
        self.stolen = 0
        #: The exception that flagged it (re-raised when nothing is left).
        self.error: Exception | None = None


class _ShardLease(object):
    """The set pinned to one query's home shard (what workers transport on).

    Returned by :meth:`EndpointSet.lease`; its :meth:`query` starts at the
    leased home backend and steals from the rest of the pool only if the
    home cannot answer.
    """

    __slots__ = ("_set", "_home")

    def __init__(self, pool: "EndpointSet", home: int) -> None:
        self._set = pool
        self._home = home

    @property
    def queries_issued(self) -> int:
        return self._set.queries_issued

    def query(self, query: Query) -> QueryResult:
        return self._set._query_from(self._home, query)


class EndpointSet:
    """N :class:`RemoteTopKInterface` backends behind one search endpoint.

    Parameters
    ----------
    backends:
        :class:`BackendSpec` instances or ``"URL"`` / ``"URL=APIKEY"``
        strings.  Each gets its own HTTP client (so per-backend billing
        telemetry stays separable); construction fetches every backend's
        free bootstrap metadata and refuses a pool whose members are not
        the same endpoint.
    timeout / max_retries / cache_size:
        Forwarded to each backend client.
    client_factory:
        Test seam: a ``(url, **kwargs) -> client`` callable replacing
        :class:`RemoteTopKInterface`.
    observer:
        Optional :class:`~repro.obs.RunObserver`; records shard routing
        and work-steal counters and is forwarded to every backend client
        (transport attempt/retry/fault events).

    The set deliberately does **not** expose ``batch_query``: sharded
    drains route every query individually so each lands on its home
    backend (and budget exhaustion is observed per query, when stealing
    must kick in).
    """

    def __init__(
        self,
        backends: Iterable[BackendSpec | str],
        *,
        timeout: float = 30.0,
        max_retries: int = 8,
        cache_size: int | None = None,
        client_factory: Callable[..., Any] | None = None,
        observer: Any | None = None,
    ) -> None:
        specs = tuple(
            spec if isinstance(spec, BackendSpec) else BackendSpec.parse(str(spec))
            for spec in backends
        )
        if not specs:
            raise EndpointSetError("an EndpointSet needs at least one backend")
        factory = client_factory or RemoteTopKInterface
        pool: list[_Backend] = []
        try:
            for spec in specs:
                kwargs: dict[str, Any] = {
                    "timeout": timeout,
                    "max_retries": max_retries,
                    "cache_size": cache_size,
                }
                if spec.api_key is not None:
                    kwargs["api_key"] = spec.api_key
                pool.append(_Backend(spec, factory(spec.url, **kwargs)))
            fingerprints = {b.client.endpoint_fingerprint for b in pool}
            if len(fingerprints) > 1:
                detail = ", ".join(
                    f"{b.spec.url} -> {b.client.endpoint_fingerprint}"
                    for b in pool
                )
                raise EndpointSetError(
                    f"backends disagree on endpoint identity ({detail}); a "
                    f"sharded crawl must fan out over mirrors of the *same* "
                    f"database"
                )
            # Same identity is not enough for *live* databases: mirrors
            # whose contents drifted apart (different data versions) would
            # merge answers computed against different tuple sets.
            versions = {
                int(getattr(b.client, "data_version", 0)) for b in pool
            }
            if len(versions) > 1:
                detail = ", ".join(
                    f"{b.spec.url} -> v{getattr(b.client, 'data_version', 0)}"
                    for b in pool
                )
                raise EndpointSetError(
                    f"backends disagree on data version ({detail}); mirrors "
                    f"of a live database must be mutated in lockstep before "
                    f"a sharded crawl fans out over them"
                )
        except BaseException:
            for backend in pool:
                close = getattr(backend.client, "close", None)
                if close is not None:
                    close()
            raise
        self._backends = tuple(pool)
        self._fingerprint = next(iter(fingerprints))
        self._data_version = next(iter(versions))
        self._lock = threading.Lock()
        self._observer: Any | None = None
        if observer is not None:
            self.attach_observer(observer)

    # ------------------------------------------------------------------
    # SearchEndpoint surface (what sessions and the crawl store read)
    # ------------------------------------------------------------------
    @property
    def schema(self):
        """Schema of the (identical) backends."""
        return self._backends[0].client.schema

    @property
    def k(self) -> int:
        """Top-k output limit of the backends."""
        return self._backends[0].client.k

    @property
    def service_name(self) -> str:
        """Service name the backends advertise (endpoint identity)."""
        return self._backends[0].client.service_name

    @property
    def ranking_label(self) -> str:
        """Ranking-function label of the backends (endpoint identity)."""
        return self._backends[0].client.ranking_label

    @property
    def fingerprint(self) -> str:
        """The shared endpoint fingerprint every backend was verified against."""
        return self._fingerprint

    @property
    def data_version(self) -> int:
        """The data version every backend agreed on when last verified.

        Highest version any backend has advertised since -- individual
        clients track skew from answer headers; call
        :meth:`refresh_data_version` to re-verify pool-wide agreement.
        """
        advertised = max(
            int(getattr(b.client, "data_version", 0)) for b in self._backends
        )
        return max(self._data_version, advertised)

    def refresh_data_version(self) -> int:
        """Re-read every backend's data version over ``/healthz`` (free).

        Raises :class:`EndpointSetError` when the mirrors disagree --
        a delta crawl must not revalidate a ledger against a pool that is
        mid-rollout.  Returns the agreed version.
        """
        versions: dict[str, int] = {}
        for b in self._backends:
            refresh = getattr(b.client, "refresh_data_version", None)
            if refresh is None:
                continue
            try:
                versions[b.spec.url] = int(refresh())
            except (RemoteServiceError, OSError) as exc:
                raise EndpointSetError(
                    f"cannot read data version from {b.spec.url}: {exc}"
                ) from exc
        if len(set(versions.values())) > 1:
            detail = ", ".join(
                f"{url} -> v{version}" for url, version in versions.items()
            )
            raise EndpointSetError(
                f"backends disagree on data version ({detail}); refusing to "
                f"crawl a pool that is mid-rollout"
            )
        if versions:
            self._data_version = next(iter(set(versions.values())))
        return self._data_version

    @property
    def queries_issued(self) -> int:
        """Billed queries across the whole pool -- the paper's cost metric."""
        return sum(b.client.queries_issued for b in self._backends)

    @property
    def cache_hits(self) -> int:
        """Free (cache/ledger) answers across the pool."""
        return sum(b.client.cache_hits for b in self._backends)

    @property
    def retries(self) -> int:
        """Transport retries across the pool (health, not cost)."""
        return sum(b.client.retries for b in self._backends)

    def attach_observer(self, observer: Any | None) -> None:
        """Attach (or detach, with ``None``) a run observer.

        The set records shard routing / work stealing itself and forwards
        the observer to every backend client, so transport-level events
        (attempt, retry, fault) carry the same run's trace ids.
        """
        self._observer = observer
        for backend in self._backends:
            attach = getattr(backend.client, "attach_observer", None)
            if attach is not None:
                attach(observer)

    def set_replay_nonce(self, nonce: str | None) -> None:
        """Forward the session's deterministic request-id nonce to every
        backend, so a resumed crawl re-presents the ids its crashed
        incarnation used and each server replays already-billed answers
        free (sharding keeps ids on their home backend)."""
        for backend in self._backends:
            backend.client.set_replay_nonce(nonce)

    # ------------------------------------------------------------------
    # sharding + work stealing
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of pooled backends."""
        return len(self._backends)

    @property
    def clients(self) -> tuple[Any, ...]:
        """The per-backend HTTP clients, in shard order (telemetry seam:
        per-backend throttle signals feed per-backend AIMD windows)."""
        return tuple(b.client for b in self._backends)

    def shard_of(self, key: str) -> int:
        """Stable home-backend index for a canonical query key.

        CRC-32 rather than ``hash()``: identical across processes and
        Python invocations, so a resumed coordinator routes every query
        to the same mirror (whose replay cache remembers it).
        """
        return zlib.crc32(key.encode("utf-8")) % len(self._backends)

    def lease(self, key: str) -> _ShardLease:
        """A transport view pinned to ``key``'s home shard."""
        return _ShardLease(self, self.shard_of(key))

    def query(self, query: Query) -> QueryResult:
        """Answer ``query`` from its home backend (stealing if it cannot)."""
        return self._query_from(self.shard_of(query.canonical_key()), query)

    def _query_from(self, home: int, query: Query) -> QueryResult:
        budget_error: Exception | None = None
        transport_error: Exception | None = None
        n = len(self._backends)
        for step in range(n):
            backend = self._backends[(home + step) % n]
            if backend.exhausted or backend.unhealthy:
                continue
            try:
                result = backend.client.query(query)
            except QueryBudgetExceeded as exc:
                with self._lock:
                    backend.exhausted = True
                    backend.error = exc
                budget_error = exc
                continue
            except RemoteServiceError as exc:
                with self._lock:
                    backend.unhealthy = True
                    backend.error = exc
                transport_error = exc
                continue
            if step:
                with self._lock:
                    backend.stolen += 1
            observer = self._observer
            if observer is not None:
                observer.shard_event(backend.spec.url, stolen=bool(step))
            return result
        # Nothing answered.  Prefer reporting budget exhaustion: it turns
        # the run into the standard partial anytime result (resumable when
        # budgets refresh) instead of a hard transport failure.
        if budget_error is None and transport_error is None:
            for backend in self._backends:  # flagged by earlier queries
                if backend.exhausted and backend.error is not None:
                    budget_error = backend.error
                elif backend.unhealthy and backend.error is not None:
                    transport_error = backend.error
        if budget_error is not None:
            raise budget_error
        if transport_error is not None:
            raise transport_error
        raise EndpointSetError("no healthy backend left in the pool")

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> list[dict[str, Any]]:
        """Per-backend share of this set's billed work (local counters)."""
        return [
            {
                "url": b.spec.url,
                "issued": b.client.queries_issued,
                "cache_hits": b.client.cache_hits,
                "retries": b.client.retries,
                "stolen": b.stolen,
                "exhausted": b.exhausted,
                "unhealthy": b.unhealthy,
            }
            for b in self._backends
        ]

    def backend_status(self) -> list[dict[str, Any]]:
        """Liveness, identity and billing headroom of every backend.

        Uses only unbilled routes (``/healthz`` and ``/api/stats``), so a
        coordinator can poll it freely.
        """
        out: list[dict[str, Any]] = []
        for b in self._backends:
            key = b.spec.api_key or ANONYMOUS_KEY
            entry: dict[str, Any] = {
                "url": b.spec.url,
                "api_key": key,
                "issued": b.client.queries_issued,
                "stolen": b.stolen,
                "exhausted": b.exhausted,
                "unhealthy": b.unhealthy,
            }
            try:
                health = b.client.healthz()
                stats = b.client.server_stats()
            except (RemoteServiceError, OSError) as exc:
                entry["ok"] = False
                entry["error"] = str(exc)
            else:
                entry["ok"] = health.get("status") == "ok"
                entry["fingerprint"] = health.get("fingerprint")
                entry["data_version"] = health.get("data_version", 0)
                usage = (stats.get("keys") or {}).get(key) or {}
                entry["budget"] = usage.get("budget", stats.get("default_budget"))
                entry["remaining"] = usage.get("remaining")
            out.append(entry)
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every backend client's connections (idempotent)."""
        for backend in self._backends:
            close = getattr(backend.client, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "EndpointSet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"EndpointSet({self.size} backends, fingerprint "
            f"{self._fingerprint[:8]}, issued={self.queries_issued})"
        )


class ShardedAdaptiveController:
    """One AIMD window per backend; the drain gates on their *sum*.

    A pool throttles per mirror (each has its own token bucket and
    concurrency cap), so a single shared window would let one slow mirror
    collapse dispatch to the healthy ones.  Instead every backend gets
    its own :class:`~repro.core.adaptive.AdaptiveWindow` fed by that
    backend client's throttle signals; completions are credited to the
    key's home shard.  Dispatch holds off only until the *soonest* mirror
    is clear -- a throttled backend's shrunken window already bounds the
    pressure it sees.
    """

    def __init__(
        self,
        endpoints: EndpointSet,
        *,
        min_size: int = 1,
        max_size: int = 32,
        on_event: Callable[[str, int], None] | None = None,
    ) -> None:
        self._endpoints = endpoints
        self._on_event = on_event
        self._windows = tuple(
            AdaptiveWindow(
                min_size=min_size,
                max_size=max_size,
                on_event=self._relay if on_event is not None else None,
                signal_source=getattr(client, "take_throttle_signals", None),
            )
            for client in endpoints.clients
        )

    def _relay(self, kind: str, _size: int) -> None:
        # Events report the aggregate window the drain actually sees.
        self._on_event(kind, self.size)

    @property
    def size(self) -> int:
        return sum(w.size for w in self._windows)

    @property
    def increases(self) -> int:
        return sum(w.increases for w in self._windows)

    @property
    def decreases(self) -> int:
        return sum(w.decreases for w in self._windows)

    def holdoff_remaining(self, now: float | None = None) -> float:
        return min(w.holdoff_remaining(now) for w in self._windows)

    def dispatch_allowed(self, now: float | None = None) -> bool:
        return self.holdoff_remaining(now) <= 0.0

    def poll(self) -> None:
        for window in self._windows:
            window.poll()

    def record_success(self, key: str | None = None) -> None:
        if key is None:
            return
        self._windows[self._endpoints.shard_of(key)].record_success(key)


class ShardedStrategy(PipelinedStrategy):
    """Drain a frontier across every backend of an :class:`EndpointSet`.

    A pipelined window of ``workers_per_backend * set.size`` single-query
    transports, where each in-flight query is routed to its canonical
    key's home backend via the engine's
    :meth:`~repro.core.engine.PipelinedStrategy._endpoint_for` hook.  The
    engine's dispatch-order merge is inherited unchanged, so a sharded
    run issues the exact query set (hence cost and skyline) of a
    single-backend run -- only the wall-clock shrinks, because the
    aggregate in-flight window spans every mirror's latency budget.

    ``workers_per_backend="auto"`` gives every backend its own AIMD
    window (bounded by ``min_workers`` / ``max_workers``, per backend)
    via :class:`ShardedAdaptiveController`, so a throttled mirror backs
    off without starving the rest of the pool.

    ``batch_size`` is pinned to 1: batching would route whole chunks to
    one backend and hide per-query budget exhaustion from the stealer.
    """

    name = "sharded"

    def __init__(
        self,
        endpoints: EndpointSet,
        *,
        workers_per_backend: "int | str" = DEFAULT_WORKERS,
        min_workers: int | None = None,
        max_workers: int | None = None,
    ) -> None:
        adaptive, width, lo, hi = resolve_workers(
            workers_per_backend, min_workers, max_workers
        )
        # The pool window is per-backend width x pool size; adaptive runs
        # get the ceiling as pool capacity and per-backend AIMD bounds.
        super().__init__(workers=width * endpoints.size, batch_size=1)
        self.adaptive = adaptive
        self.min_workers = lo
        self.max_workers = hi
        self.endpoints = endpoints
        self.workers_per_backend = width

    def _make_controller(self, engine: QueryEngine) -> ShardedAdaptiveController:
        return ShardedAdaptiveController(
            self.endpoints,
            min_size=self.min_workers,
            max_size=self.max_workers,
            on_event=engine.note_window_event,
        )

    def _endpoint_for(self, engine: QueryEngine, item) -> _ShardLease:
        return self.endpoints.lease(item.key)


__all__ = [
    "BackendSpec",
    "EndpointSet",
    "EndpointSetError",
    "ShardedAdaptiveController",
    "ShardedStrategy",
]
