"""Query-lifecycle tracing: JSONL span events with deterministic trace ids.

A *span* is one JSON object per line describing a single step of a query's
life: classification inside the drain core (``memo`` / ``inflight`` /
``ledger`` / ``cached`` / ``dispatched``), transport activity (``attempt``,
``retry``, ``fault``, ``cache_hit``, ``ledger_hit``), and settlement
(``billed``, ``merged``).  Every span carries:

``seq``
    a writer-global strictly increasing sequence number;
``t``
    a ``time.monotonic()`` timestamp (non-decreasing in ``seq`` order --
    both are assigned under the writer lock);
``trace_id``
    ``{run_id}-{query_fingerprint}`` -- deterministic, so the engine and
    the remote client derive the *same* id for the same logical query
    without any per-call plumbing, and the id the client sends over the
    wire as ``X-Trace-Id`` matches the engine-side spans;
``key``
    the query's canonical key (``None`` for run-level events);
``phase``
    the lifecycle step named above.

Writers are thread-safe and append-only, so several sessions (e.g. the
per-subspace sessions of a skyband run) can share one trace file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, Optional, Union

__all__ = ["TraceWriter"]

# json.dumps with non-default separators builds a fresh JSONEncoder per
# call; emit() sits on the per-query hot path, so keep one encoder.
_encode = json.JSONEncoder(separators=(",", ":")).encode

#: Buffered spans are encoded and written out in bursts of this many.
#: The emit() critical section is then a counter bump plus a list append,
#: which keeps the engine thread and a transport event loop from trading
#: the writer lock (and with it the GIL) on every single span.
_DRAIN_EVERY = 256


class TraceWriter:
    """Thread-safe JSONL span sink.

    ``sink`` may be a filesystem path (opened in append mode and owned by
    the writer) or any object with a ``write`` method (borrowed -- never
    closed by the writer).
    """

    def __init__(self, sink: Union[str, "os.PathLike[str]", IO[str]]) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._closed = False
        self._buffer: list[tuple] = []
        if hasattr(sink, "write"):
            self._file: Optional[IO[str]] = sink  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[str] = getattr(sink, "name", None)
        else:
            self.path = os.fspath(sink)
            self._file = open(self.path, "a", encoding="utf-8")
            self._owns = True

    def emit(
        self,
        phase: str,
        *,
        trace_id: str,
        key: Optional[str] = None,
        **fields: object,
    ) -> None:
        """Buffer one span.  Silently drops spans after :meth:`close`.

        Spans become visible in the sink at the next drain point: every
        ``_DRAIN_EVERY`` buffered spans, on :meth:`flush`, or at
        :meth:`close`.
        """
        with self._lock:
            if self._closed or self._file is None:
                return
            self._seq += 1
            self._buffer.append(
                (self._seq, time.monotonic(), trace_id, key, phase, fields)
            )
            if len(self._buffer) >= _DRAIN_EVERY:
                self._drain_locked()

    def _drain_locked(self) -> None:
        """Encode and write all buffered spans (caller holds the lock).

        Span dicts are only assembled here, off the per-event hot path.
        """
        if self._buffer:
            self._file.write(
                "".join(
                    _encode(
                        {
                            "seq": seq,
                            "t": t,
                            "trace_id": trace_id,
                            "key": key,
                            "phase": phase,
                            **fields,
                        }
                    )
                    + "\n"
                    for seq, t, trace_id, key, phase, fields in self._buffer
                )
            )
            self._buffer.clear()

    @property
    def spans_written(self) -> int:
        with self._lock:
            return self._seq

    def flush(self) -> None:
        with self._lock:
            if self._file is not None and not self._closed:
                self._drain_locked()
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                try:
                    self._drain_locked()
                    self._file.flush()
                finally:
                    if self._owns:
                        self._file.close()
                    self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
