"""Thread-safe metrics primitives: labelled counters, gauges, histograms.

The registry is deliberately tiny and stdlib-only.  It mirrors the
Prometheus data model closely enough that :mod:`repro.obs.exposition` can
render the standard text format, while staying cheap enough to sit on the
engine's hot path:

* every mutation takes a single ``threading.Lock`` owned by the registry
  (uncontended in the common case -- the engine classifies serially and the
  clients already serialise their counters);
* a registry can be **scoped**: ``MetricsRegistry(parent=other)`` mirrors
  every mutation into the parent, so a per-run registry can feed the
  process-global one without double bookkeeping at the call sites;
* families are get-or-create: asking for an existing name with the same
  kind and label names returns the existing family, so servers and
  observers can declare their instruments idempotently.

Asyncio safety comes for free: no method ever awaits or blocks beyond the
registry lock, so calling from coroutines cannot deadlock the loop.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "global_registry",
]

#: Default latency buckets (seconds) -- tuned for the 1-10ms injected
#: latencies the fault injector uses, with headroom for slow CI machines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricFamily:
    """A named metric plus all its labelled children."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        parent: Optional["MetricFamily"] = None,
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._parent = parent
        self._children: Dict[Tuple[str, ...], object] = {}

    # -- internals -------------------------------------------------------

    def _labelvalues(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        names = self.labelnames
        if len(labels) != len(names) or any(
            name not in labels for name in names
        ):
            raise ValueError(
                f"{self.name}: expected labels {names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in names)

    # -- inspection ------------------------------------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Snapshot of ``(labelvalues, value)`` pairs, sorted by labels."""
        with self._lock:
            return sorted(self._children.items())


class _BoundCounter:
    """A counter child pre-resolved to one label set.

    Skips per-call label validation and tuple building -- the hot hook
    sites (the drain core's classification chain, the transport client)
    increment the same few children thousands of times per run.
    """

    __slots__ = ("_chain", "_key")

    def __init__(self, family: "CounterFamily", key: Tuple[str, ...]) -> None:
        chain = []
        node: Optional[MetricFamily] = family
        while node is not None:
            chain.append(node)
            node = node._parent
        self._chain = tuple(chain)
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        key = self._key
        for family in self._chain:
            with family._lock:
                children = family._children
                children[key] = children.get(key, 0.0) + amount


class CounterFamily(MetricFamily):
    """Monotonically increasing counter."""

    kind = "counter"

    def bind(self, **labels: object) -> _BoundCounter:
        """Pre-resolve one labelled child for repeated cheap ``inc()``."""
        return _BoundCounter(self, self._labelvalues(labels))

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        # Validate once, then walk the parent chain with the resolved
        # labelvalues: mirrored registries share label declarations, so
        # re-validating per ancestor would only tax the hot path.
        key = self._labelvalues(labels)
        family: Optional[MetricFamily] = self
        while family is not None:
            with family._lock:
                children = family._children
                children[key] = children.get(key, 0.0) + amount
            family = family._parent

    def value(self, **labels: object) -> float:
        key = self._labelvalues(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))


class GaugeFamily(MetricFamily):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._labelvalues(labels)
        value = float(value)
        family: Optional[MetricFamily] = self
        while family is not None:
            with family._lock:
                family._children[key] = value
            family = family._parent

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._labelvalues(labels)
        family: Optional[MetricFamily] = self
        while family is not None:
            with family._lock:
                children = family._children
                children[key] = children.get(key, 0.0) + amount
            family = family._parent

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._labelvalues(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))


class _HistogramChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class HistogramFamily(MetricFamily):
    """Fixed-bucket histogram (cumulative buckets rendered at exposition)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.Lock,
        parent: Optional["HistogramFamily"] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock, parent)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be non-empty and sorted")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._labelvalues(labels)
        family: Optional[HistogramFamily] = self
        while family is not None:
            with family._lock:
                child = family._children.get(key)
                if child is None:
                    child = family._children[key] = _HistogramChild(
                        len(family.buckets)
                    )
                for i, bound in enumerate(family.buckets):
                    if value <= bound:
                        child.counts[i] += 1
                        break
                child.total += value
                child.count += 1
            family = family._parent

    def snapshot(self, **labels: object):
        """Return ``(cumulative_bucket_counts, sum, count)`` for one child."""
        key = self._labelvalues(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return [0] * len(self.buckets), 0.0, 0
            cumulative, running = [], 0
            for n in child.counts:
                running += n
                cumulative.append(running)
            return cumulative, child.total, child.count


_KINDS = {
    "counter": CounterFamily,
    "gauge": GaugeFamily,
    "histogram": HistogramFamily,
}


class MetricsRegistry:
    """A scope of metric families.

    ``MetricsRegistry(parent=other)`` chains scopes: every mutation on a
    family created here is mirrored into an identically-named family in the
    parent.  The conventional setup is a process-global registry (see
    :func:`global_registry`) with one child registry per run/server.
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._parent = parent
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _get_or_create(self, kind, name, help_text, labelnames, **extra):
        parent_family = None
        if self._parent is not None:
            parent_family = self._parent._get_or_create(
                kind, name, help_text, labelnames, **extra
            )
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind.kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}"
                    )
                return family
            family = kind(
                name, help_text, tuple(labelnames), threading.Lock(),
                parent=parent_family, **extra,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        return self._get_or_create(CounterFamily, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._get_or_create(GaugeFamily, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        return self._get_or_create(
            HistogramFamily, name, help_text, labelnames, buckets=buckets
        )

    def collect(self) -> Iterable[MetricFamily]:
        """All families, sorted by name (a snapshot, safe to iterate)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global metrics scope (parent of per-run registries)."""
    return _GLOBAL
