"""repro.obs -- the observability plane.

A stdlib-only telemetry subsystem shared by every layer of the stack:

* :mod:`repro.obs.metrics` -- thread- and asyncio-safe registry of
  labelled counters, gauges and fixed-bucket histograms, with per-run
  scopes chained to a process-global one;
* :mod:`repro.obs.trace` -- JSONL query-lifecycle span writer with
  deterministic ``{run_id}-{query_fingerprint}`` trace ids;
* :mod:`repro.obs.observer` -- :class:`RunObserver`, the single object
  the engine / client / store / endpoint-set hooks talk to;
* :mod:`repro.obs.exposition` -- Prometheus text rendering for the
  ``GET /metrics`` endpoints on ``HiddenDBServer`` and
  ``CrawlCoordinator``.

Attach a collector with ``DiscoveryConfig(trace="run.jsonl")`` (or the
CLI's ``--trace PATH``); with no collector attached every hook is a
single ``is not None`` check, and results are bit-identical either way.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    global_registry,
)
from .exposition import CONTENT_TYPE, render_prometheus
from .observer import RunObserver
from .trace import TraceWriter

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "RunObserver",
    "TraceWriter",
    "global_registry",
    "render_prometheus",
]
