"""Prometheus text exposition (format version 0.0.4) for a registry.

Renders counters, gauges and histograms with ``# HELP`` / ``# TYPE``
preambles, label escaping, and the cumulative ``_bucket{le=...}`` /
``_sum`` / ``_count`` triplet for histograms -- exactly what a Prometheus
scraper (or the well-formedness tests in ``tests/obs``) expects from a
``GET /metrics`` endpoint.
"""

from __future__ import annotations

from .metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
)

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: Value for the ``Content-Type`` header of a ``/metrics`` response.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(str(value))}"'
                 for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in *registry* as Prometheus text exposition."""
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, HistogramFamily):
            for labelvalues, child in family.samples():
                cumulative, running = [], 0
                for n in child.counts:
                    running += n
                    cumulative.append(running)
                for bound, count in zip(family.buckets, cumulative):
                    labels = _labels_text(
                        family.labelnames, labelvalues, [("le", _fmt(bound))]
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                inf_labels = _labels_text(
                    family.labelnames, labelvalues, [("le", "+Inf")]
                )
                lines.append(f"{family.name}_bucket{inf_labels} {child.count}")
                plain = _labels_text(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{plain} {_fmt(child.total)}")
                lines.append(f"{family.name}_count{plain} {child.count}")
        elif isinstance(family, (CounterFamily, GaugeFamily)):
            for labelvalues, value in family.samples():
                labels = _labels_text(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} {_fmt(value)}")
    return "\n".join(lines) + "\n"
