"""The run observer: one object bundling metrics + tracing for a run.

Instrumentation hooks live *once* in the shared substrates -- the drain
core (``repro.core.engine``), the transport-independent client half
(``QueryClientCore``), the durable store (``CrawlStore``) and the sharded
endpoint set -- and each hook site holds an ``observer`` attribute that
defaults to ``None``.  The no-collector fast path is therefore a single
``is not None`` check per event; attaching a :class:`RunObserver` turns
the same hooks into metric increments and JSONL spans without touching
any algorithmic control flow (parity is preserved by construction).

Trace ids are deterministic: ``{run_id}-{query_fingerprint}``.  The
engine and the remote client share the observer instance, so the id the
client propagates over the wire as ``X-Trace-Id`` is exactly the id on
the engine-side spans for the same logical query.
"""

from __future__ import annotations

import time
import uuid
from typing import Dict, Optional, Union, IO

from ..hiddendb.query import Query, query_fingerprint
from .metrics import MetricsRegistry, global_registry
from .trace import TraceWriter

__all__ = ["RunObserver"]

#: Lifecycle phases emitted by the drain core's classification chain.
CLASSIFY_PHASES = ("memo", "inflight", "ledger", "cached", "dispatched")

#: AIMD window transitions emitted by the adaptive controller (kept in
#: lockstep with ``repro.core.adaptive.WINDOW_EVENTS``; duplicated here
#: so the obs plane never imports the engine).
WINDOW_EVENTS = ("increase", "decrease", "floor", "ceiling")


class RunObserver:
    """Collects metrics and (optionally) JSONL trace spans for one run.

    Parameters
    ----------
    trace:
        ``None`` (metrics only), a path / file-like (a
        :class:`TraceWriter` is created and owned), or an existing
        :class:`TraceWriter` (borrowed).
    registry:
        The metrics scope to record into.  Defaults to a fresh per-run
        registry parented to the process-global one, so per-run numbers
        and global aggregates both stay correct.
    run_id:
        The deterministic trace-id prefix.  Auto-generated when omitted.
    """

    def __init__(
        self,
        *,
        trace: Union[None, str, IO[str], TraceWriter] = None,
        registry: Optional[MetricsRegistry] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(parent=global_registry())
        )
        if trace is None or isinstance(trace, TraceWriter):
            self._writer: Optional[TraceWriter] = trace
            self._owns_writer = False
        else:
            self._writer = TraceWriter(trace)
            self._owns_writer = True

        reg = self.registry
        self._m_classified = reg.counter(
            "repro_query_classifications_total",
            "Drain-core classification outcomes, by lifecycle phase.",
            ("phase",),
        )
        self._m_billed = reg.counter(
            "repro_queries_billed_total",
            "Queries billed against the endpoint budget.",
        )
        self._m_client = reg.counter(
            "repro_client_events_total",
            "Remote-client transport events (attempt/retry/fault/hits).",
            ("event",),
        )
        self._m_store = reg.counter(
            "repro_store_events_total",
            "Durable-store events (ledger hits/writes, checkpoints).",
            ("event",),
        )
        self._m_shard = reg.counter(
            "repro_shard_queries_total",
            "Queries routed to each backend shard.",
            ("backend",),
        )
        self._m_steal = reg.counter(
            "repro_work_steals_total",
            "Queries served off their home shard (work stealing).",
            ("backend",),
        )
        self._m_window = reg.gauge(
            "engine_window_size",
            "Current AIMD dispatch-window width (adaptive runs only).",
        )
        self._m_window_events = reg.counter(
            "engine_window_events_total",
            "AIMD window transitions, by kind.",
            ("kind",),
        )
        # Hot-path children, pre-resolved once (label validation and
        # tuple building off the per-query path).
        self._classified_bound = {
            phase: self._m_classified.bind(phase=phase)
            for phase in CLASSIFY_PHASES
        }
        self._billed_bound = self._m_billed.bind()
        self._client_bound: Dict[str, object] = {}
        self._window_bound = {
            kind: self._m_window_events.bind(kind=kind)
            for kind in WINDOW_EVENTS
        }
        #: ``session_id -> time.monotonic()`` of the last checkpoint seen;
        #: feeds the coordinator's checkpoint-lag gauge.
        self.checkpoint_at: Dict[str, float] = {}

    # -- trace plumbing --------------------------------------------------

    @property
    def trace_writer(self) -> Optional[TraceWriter]:
        return self._writer

    def trace_id(self, query: Query) -> str:
        """Deterministic per-query trace id: ``{run_id}-{fingerprint}``."""
        return f"{self.run_id}-{query_fingerprint(query)}"

    def _span(self, phase, query=None, key=None, trace_id=None, **fields) -> None:
        if self._writer is None:
            return
        if query is not None and key is None:
            key = query.canonical_key()
        if trace_id is None:
            trace_id = self.trace_id(query) if query is not None else self.run_id
        self._writer.emit(phase, trace_id=trace_id, key=key, **fields)

    # -- engine hooks (drain core / query engine) ------------------------

    def classified(self, query: Optional[Query], key: str, phase: str) -> None:
        """A frontier entry settled one step of the classification chain."""
        bound = self._classified_bound.get(phase)
        if bound is not None:
            bound.inc()
        else:
            self._m_classified.inc(phase=phase)
        if self._writer is not None:
            self._span(phase, query=query, key=key)

    def billed(self, query: Query, *, batched: bool = False) -> None:
        """A transported answer was billed (the single billing point)."""
        self._billed_bound.inc()
        if self._writer is not None:
            self._span("billed", query=query, batched=batched)

    def merged(self, key: str, *, transported: bool) -> None:
        """A window slot merged in dispatch order.

        Merge spans ride on the run-level trace id: the per-query id is
        already carried by the classification/billed spans for this key.
        """
        if self._writer is not None:
            self._writer.emit(
                "merged",
                trace_id=self.run_id,
                key=key,
                transported=transported,
            )

    # -- client hooks (QueryClientCore + transports) ---------------------

    def client_event(
        self,
        event: str,
        query: Optional[Query] = None,
        *,
        trace_id: Optional[str] = None,
        span: bool = True,
        **fields: object,
    ) -> None:
        """Transport-side lifecycle event: attempt/retry/fault/hits.

        ``trace_id`` lets the wire layer correlate events it emits below
        the per-query seam (it carries the id, not the query object).
        ``span=False`` records the counter only -- for events another
        layer already traces (e.g. client-side billing, whose span is the
        engine's canonical ``billed``).
        """
        bound = self._client_bound.get(event)
        if bound is None:
            bound = self._client_bound[event] = self._m_client.bind(
                event=event
            )
        bound.inc()
        if span and self._writer is not None:
            self._span(event, query=query, trace_id=trace_id, **fields)

    def window_event(self, kind: str, size: int) -> None:
        """The adaptive controller resized the dispatch window."""
        self._m_window.set(float(size))
        bound = self._window_bound.get(kind)
        if bound is None:
            bound = self._window_bound[kind] = self._m_window_events.bind(
                kind=kind
            )
        bound.inc()
        if self._writer is not None:
            self._writer.emit(
                "window", trace_id=self.run_id, kind=kind, size=size
            )

    # -- store hooks (CrawlStore) ----------------------------------------

    def store_event(self, event: str, **fields: object) -> None:
        """Durable-store event: ledger_hit / ledger_put / checkpoint."""
        self._m_store.inc(event=event)
        if event == "checkpoint":
            session_id = fields.get("session_id")
            if session_id is not None:
                self.checkpoint_at[str(session_id)] = time.monotonic()
        self._span(event, **fields)

    # -- shard hooks (EndpointSet) ---------------------------------------

    def shard_event(self, backend: str, *, stolen: bool) -> None:
        """A query was routed to *backend* (stolen = off its home shard)."""
        self._m_shard.inc(backend=backend)
        if stolen:
            self._m_steal.inc(backend=backend)

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        """Flush and (when owned) close the trace writer."""
        if self._writer is not None:
            if self._owns_writer:
                self._writer.close()
            else:
                self._writer.flush()
