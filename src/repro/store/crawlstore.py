"""The durable crawl store: ledger, checkpoints and catalog in one SQLite file.

Under the paper's cost model every answered top-k query is *paid for*; a
real hidden-web crawl runs for hours against per-key budgets, and a crash
or restart that throws those answers away re-bills them.  :class:`CrawlStore`
makes crawls durable by persisting three things:

* the **query ledger** -- canonically-keyed ``Query -> QueryResult``
  records, shared across runs, processes and client restarts.  The
  execution engine consults the ledger before dispatching a query, so a
  ledgered answer is free exactly like a dedup hit (it advances neither
  ``queries_issued`` nor any billing counter) and is counted in
  ``EngineStats.ledger_hits``;
* **session checkpoints** -- periodic snapshots of a
  :class:`~repro.core.base.DiscoverySession`'s progress (cumulative billed
  queries, retrieved-tuple and skyline-so-far counts).  The billed counter
  is additionally bumped transactionally with every ledger write, so it is
  exact even at a ``kill -9``;
* the **crawl catalog** -- finished results (algorithm, skyline, cost,
  engine stats), queryable from the CLI via ``repro store ls / show``;
* the **job catalog** -- the coordinator's durable submission queue
  (tenant, spec, owning session, backend count, shard progress), which is
  what lets ``repro coordinate --resume`` replay submitted-but-unfinished
  jobs after a restart.

Resume is *replay-driven*: the ledger doubles as the fetch log of the
state-dependent RQ/PQ paths.  A resumed run simply re-executes its
(deterministic) algorithm; every query whose answer is already owned --
including the strictly sequential ``frontier.fetch`` steps -- is answered
from the ledger without being billed, so the run replays to the exact
pre-crash state and then continues paying only for genuinely new queries.
Kill a crawl mid-run, rerun the same command, and discovery completes with
the same skyline at no more than the uninterrupted cost; a warm second run
over an unchanged endpoint bills zero queries.

Endpoint identity is a **fingerprint** over the schema, ``k`` and service
name.  Mounting a store against an endpoint whose fingerprint does not
match any registration raises :class:`StoreMismatchError` (stale answers
from a different dataset/k must never be replayed), and :meth:`CrawlStore.gc`
prunes registrations whose stored schema no longer hashes to their
fingerprint, superseded same-name registrations, and orphaned rows.

The store is a single SQLite file in WAL mode (durable across ``kill -9``),
or fully in-memory via :meth:`CrawlStore.memory` for tests.  All operations
are thread-safe: pipelined strategies read the ledger from worker threads.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from ..hiddendb.attributes import Schema
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query

# The fingerprint scheme lives in the wire module (the server advertises
# it over ``/healthz`` and ``/api/schema``); re-exported here because the
# store is its historical home and ledger identity is where it matters.
from ..service.wire import (
    decode_answer,
    encode_answer,
    encode_query,
    endpoint_descriptor,
    endpoint_fingerprint,
    fingerprint_of as _fingerprint_of,
)

#: Bump when the on-disk layout changes incompatibly.  Version 2 added
#: the freshness plane: per-entry ledger epochs + TTLs, the endpoint
#: ``data_version`` column and the ``store_meta`` schema-version table.
STORE_VERSION = 2

_DDL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key    TEXT PRIMARY KEY,
    value  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS endpoints (
    fingerprint  TEXT PRIMARY KEY,
    name         TEXT NOT NULL DEFAULT '',
    k            INTEGER NOT NULL,
    descriptor   TEXT NOT NULL,
    data_version INTEGER NOT NULL DEFAULT 0,
    created_at   REAL NOT NULL,
    last_seen    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS ledger (
    fingerprint  TEXT NOT NULL,
    qkey         TEXT NOT NULL,
    query_json   TEXT NOT NULL,
    answer_json  TEXT NOT NULL,
    billed_at    REAL NOT NULL,
    epoch        INTEGER NOT NULL DEFAULT 0,
    expires_at   REAL,
    PRIMARY KEY (fingerprint, qkey)
);
CREATE TABLE IF NOT EXISTS sessions (
    session_id       TEXT PRIMARY KEY,
    fingerprint      TEXT NOT NULL,
    algorithm        TEXT NOT NULL DEFAULT '',
    status           TEXT NOT NULL DEFAULT 'running',
    nonce            TEXT NOT NULL,
    billed           INTEGER NOT NULL DEFAULT 0,
    checkpoint_json  TEXT NOT NULL DEFAULT '{}',
    result_json      TEXT,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS sessions_by_endpoint
    ON sessions (fingerprint, algorithm, status, updated_at);
CREATE TABLE IF NOT EXISTS jobs (
    job_id         TEXT PRIMARY KEY,
    fingerprint    TEXT NOT NULL,
    tenant         TEXT NOT NULL DEFAULT 'anonymous',
    algorithm      TEXT NOT NULL DEFAULT '',
    status         TEXT NOT NULL DEFAULT 'queued',
    spec_json      TEXT NOT NULL DEFAULT '{}',
    session_id     TEXT NOT NULL,
    backends       INTEGER NOT NULL DEFAULT 1,
    progress_json  TEXT NOT NULL DEFAULT '{}',
    result_json    TEXT,
    error          TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, updated_at);
"""

#: In-place migrations, keyed by the on-disk version they upgrade *from*.
#: Applied in sequence inside one transaction; pre-epoch rows get epoch 0
#: and no TTL, which is exactly the pre-freshness behaviour (a version-0
#: endpoint serves them unchanged, a bumped endpoint treats them stale).
_MIGRATIONS: dict[int, str] = {
    1: """
ALTER TABLE endpoints ADD COLUMN data_version INTEGER NOT NULL DEFAULT 0;
ALTER TABLE ledger ADD COLUMN epoch INTEGER NOT NULL DEFAULT 0;
ALTER TABLE ledger ADD COLUMN expires_at REAL;
""",
}

#: Lifecycle states of a coordinator discovery job.  ``queued`` and
#: ``running`` jobs are replayed by ``repro coordinate --resume``;
#: ``partial`` marks a budget-exhausted (still resumable) crawl.
JOB_STATUSES = (
    "queued", "running", "finished", "partial", "failed", "cancelled",
)


class StoreError(RuntimeError):
    """A crawl-store operation failed."""


class StoreMismatchError(StoreError):
    """The store's ledger was built against a different endpoint.

    Raised when a crawl tries to mount a store whose registered endpoint
    (dataset, ``k``, schema) does not match the endpoint being crawled:
    replaying answers across datasets would silently corrupt discovery.
    """


@dataclass(frozen=True)
class EndpointRecord:
    """One registered endpoint of a store."""

    fingerprint: str
    name: str
    k: int
    ledger_entries: int
    created_at: float
    last_seen: float
    #: Endpoint data version at last registration (0 = never mutated).
    data_version: int = 0


@dataclass(frozen=True)
class SessionRecord:
    """One crawl session (running, finished or failed)."""

    session_id: str
    fingerprint: str
    algorithm: str
    status: str
    nonce: str
    billed: int
    checkpoint: Mapping[str, Any] = field(default_factory=dict)
    result: Mapping[str, Any] | None = None
    created_at: float = 0.0
    updated_at: float = 0.0
    #: Whether :meth:`CrawlStore.begin_session` picked this session back up
    #: (a resumed crawl) rather than creating it fresh.
    resumed: bool = False


@dataclass(frozen=True)
class JobRecord:
    """One coordinator discovery job in the catalog."""

    job_id: str
    fingerprint: str
    tenant: str
    algorithm: str
    status: str
    spec: Mapping[str, Any] = field(default_factory=dict)
    session_id: str = ""
    backends: int = 1
    progress: Mapping[str, Any] = field(default_factory=dict)
    result: Mapping[str, Any] | None = None
    error: str | None = None
    created_at: float = 0.0
    updated_at: float = 0.0


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`CrawlStore.gc` pass removed."""

    endpoints_pruned: int
    ledger_pruned: int
    sessions_pruned: int
    jobs_pruned: int = 0
    #: Ledger entries evicted for carrying a stale epoch (an older data
    #: version than their endpoint's current one).
    stale_pruned: int = 0
    #: Ledger entries evicted because their TTL lapsed.
    expired_pruned: int = 0
    #: ``True`` when this report describes a ``--dry-run`` (nothing was
    #: actually deleted).
    dry_run: bool = False

    @property
    def total(self) -> int:
        return (
            self.endpoints_pruned + self.ledger_pruned
            + self.sessions_pruned + self.jobs_pruned
            + self.stale_pruned + self.expired_pruned
        )


@dataclass(frozen=True)
class LedgerEntry:
    """One persisted ledger row, fully decoded (delta-crawl probing)."""

    qkey: str
    query: Query
    result: QueryResult
    epoch: int
    billed_at: float
    expires_at: float | None = None


class QueryLedger:
    """The ledger of one endpoint, as seen by an engine or client.

    ``get`` answers a query from the persisted ledger (``None`` on a miss);
    ``put`` records one billed answer.  When the view is bound to a crawl
    session, every ``put`` also bumps that session's billed counter in the
    same transaction, keeping crash-time accounting exact.

    The view is pinned to an **epoch** -- the endpoint's data version at
    mount time.  ``get`` serves only entries written at that epoch (and
    not TTL-expired), so answers billed against an older state of a live
    endpoint are never replayed; ``put`` stamps the epoch on every write.
    """

    def __init__(
        self,
        store: "CrawlStore",
        fingerprint: str,
        session_id: str | None = None,
        *,
        epoch: int = 0,
        ttl_s: float | None = None,
    ) -> None:
        self._store = store
        self._fingerprint = fingerprint
        self._session_id = session_id
        self._epoch = int(epoch)
        self._ttl_s = ttl_s

    @property
    def fingerprint(self) -> str:
        """Endpoint fingerprint this view reads/writes under."""
        return self._fingerprint

    @property
    def epoch(self) -> int:
        """Endpoint data version this view serves and stamps."""
        return self._epoch

    def get(self, query: Query) -> QueryResult | None:
        """The ledgered answer for ``query``, or ``None``."""
        return self._store.ledger_get(
            self._fingerprint, query, epoch=self._epoch
        )

    def put(self, query: Query, result: QueryResult) -> None:
        """Persist one billed answer (idempotent per canonical key)."""
        self._store.ledger_put(
            self._fingerprint, query, result,
            session_id=self._session_id,
            epoch=self._epoch,
            ttl_s=self._ttl_s,
        )

    def __len__(self) -> int:
        return self._store.ledger_size(self._fingerprint)

    def __repr__(self) -> str:
        return (
            f"QueryLedger({self._fingerprint}, entries={len(self)}, "
            f"epoch={self._epoch}, session={self._session_id or '-'})"
        )


class CrawlStore:
    """SQLite-backed persistence for crawls: ledger, sessions, catalog.

    Parameters
    ----------
    path:
        Database file.  Created (with parents) if missing.  Pass
        ``":memory:"`` -- or use :meth:`memory` -- for the in-memory
        variant used by tests (same API, nothing touches disk).

    One store may serve several crawls; one file holds one *endpoint*
    unless further endpoints are registered explicitly with
    ``register_endpoint(..., allow_new=True)`` -- an implicit second
    endpoint raises :class:`StoreMismatchError`, which is what makes
    ``repro crawl --store`` refuse a ledger built against a different
    dataset or ``k``.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._path = str(path)
        self._memory = self._path == ":memory:"
        if not self._memory:
            Path(self._path).parent.mkdir(parents=True, exist_ok=True)
        # One shared connection, serialised by an RLock: ledger lookups
        # happen on the driver thread, but a ledger mounted as a remote
        # client's cache is read from pipelined worker threads too.
        self._conn = sqlite3.connect(
            self._path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        #: Optional :class:`~repro.obs.RunObserver`; ``None`` keeps every
        #: hook below a single attribute test (no observability overhead).
        self.observer: Any | None = None
        with self._lock:
            self._conn.execute("PRAGMA busy_timeout=5000")
            if not self._memory:
                # WAL + NORMAL: a committed ledger write survives kill -9
                # without paying a full fsync per query.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            version = int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )
            if version > STORE_VERSION or (
                version and version not in _MIGRATIONS
                and version != STORE_VERSION
            ):
                self._conn.close()
                raise StoreError(
                    f"store {self._path!r} has on-disk layout version "
                    f"{version}; this build reads version {STORE_VERSION}. "
                    f"Use a fresh --store (or the matching build)."
                )
            if version and version < STORE_VERSION:
                # Upgrade an existing file in place, atomically: either
                # every ALTER of every step lands or none do, so a crash
                # mid-migration can never leave a half-versioned store
                # that silently mixes epoch semantics.
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    for step in range(version, STORE_VERSION):
                        for statement in _MIGRATIONS[step].split(";"):
                            if statement.strip():
                                self._conn.execute(statement)
                    self._conn.execute("COMMIT")
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    self._conn.close()
                    raise
            self._conn.executescript(_DDL)
            self._conn.execute(f"PRAGMA user_version={STORE_VERSION}")
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta (key, value) VALUES "
                "('schema_version', ?)",
                (str(STORE_VERSION),),
            )
            if version and version < STORE_VERSION:
                self._conn.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) VALUES "
                    "('migrated_from', ?)",
                    (str(version),),
                )

    @classmethod
    def memory(cls) -> "CrawlStore":
        """A fresh in-memory store (tests; nothing persists past close)."""
        return cls(":memory:")

    @property
    def path(self) -> str:
        """Database location (``":memory:"`` for the in-memory variant)."""
        return self._path

    def attach_observer(self, observer: Any | None) -> None:
        """Attach (or detach, with ``None``) a run observer.

        The store emits ``ledger_hit`` / ``ledger_put`` / ``checkpoint``
        events; the latter feed the coordinator's checkpoint-lag gauge.
        """
        self.observer = observer

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def register_endpoint(
        self,
        schema: Schema,
        k: int,
        name: str = "",
        ranking: str = "",
        *,
        allow_new: bool = False,
        data_version: int | None = None,
    ) -> str:
        """Register (or re-verify) an endpoint; returns its fingerprint.

        A fingerprint already registered is simply touched.  The first
        endpoint of an empty store is always accepted.  A *different*
        endpoint in a non-empty store raises :class:`StoreMismatchError`
        unless ``allow_new=True`` -- stale cross-dataset replays are the
        one thing a ledger must never do.
        """
        descriptor = endpoint_descriptor(schema, k, name, ranking)
        fingerprint = _fingerprint_of(descriptor)
        now = time.time()
        with self._lock:
            # BEGIN IMMEDIATE serialises the check-then-insert against
            # concurrent *processes* sharing the store file (the RLock
            # only covers threads of this one); INSERT OR IGNORE makes
            # the race loser equivalent to the already-registered path.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT 1 FROM endpoints WHERE fingerprint=?",
                    (fingerprint,),
                ).fetchone()
                if row is not None:
                    if data_version is None:
                        self._conn.execute(
                            "UPDATE endpoints SET last_seen=? "
                            "WHERE fingerprint=?",
                            (now, fingerprint),
                        )
                    else:
                        self._conn.execute(
                            "UPDATE endpoints SET last_seen=?, "
                            "data_version=MAX(data_version, ?) "
                            "WHERE fingerprint=?",
                            (now, int(data_version), fingerprint),
                        )
                    self._conn.execute("COMMIT")
                    return fingerprint
                existing = self._conn.execute(
                    "SELECT name, k, fingerprint, data_version FROM endpoints "
                    "ORDER BY last_seen DESC"
                ).fetchall()
                if existing and not allow_new:
                    others = ", ".join(
                        f"{other_name or '<unnamed>'} (k={other_k}, "
                        f"fingerprint {other_fp}, "
                        f"data_version {other_dv})"
                        for other_name, other_k, other_fp, other_dv in existing
                    )
                    raise StoreMismatchError(
                        f"store {self._path!r} holds a ledger for {others}; "
                        f"the current endpoint {name or '<unnamed>'} (k={k}, "
                        f"fingerprint {fingerprint}, "
                        f"data_version {int(data_version or 0)}) does not "
                        f"match. Use a fresh --store, or prune stale "
                        f"endpoints with 'repro store gc'."
                    )
                self._conn.execute(
                    "INSERT OR IGNORE INTO endpoints "
                    "(fingerprint, name, k, descriptor, data_version, "
                    " created_at, last_seen) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (fingerprint, name, int(k), descriptor,
                     int(data_version or 0), now, now),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return fingerprint

    def endpoints(self) -> tuple[EndpointRecord, ...]:
        """Registered endpoints, most recently used first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT e.fingerprint, e.name, e.k, e.data_version, "
                "       e.created_at, e.last_seen, "
                "       (SELECT COUNT(*) FROM ledger l "
                "        WHERE l.fingerprint = e.fingerprint) "
                "FROM endpoints e ORDER BY e.last_seen DESC"
            ).fetchall()
        return tuple(
            EndpointRecord(
                fingerprint=fp,
                name=name,
                k=k,
                ledger_entries=entries,
                created_at=created,
                last_seen=seen,
                data_version=int(data_version),
            )
            for fp, name, k, data_version, created, seen, entries in rows
        )

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def ledger(
        self,
        fingerprint: str,
        session_id: str | None = None,
        *,
        epoch: int | None = None,
        ttl_s: float | None = None,
    ) -> QueryLedger:
        """A :class:`QueryLedger` view over one endpoint's entries.

        Bind ``session_id`` when the view backs a crawl session so billed
        writes also advance that session's exact billed counter.  The
        view's ``epoch`` defaults to the endpoint's registered data
        version; pass it explicitly when the live endpoint has already
        advanced past the registration.
        """
        if epoch is None:
            epoch = self.endpoint_data_version(fingerprint)
        return QueryLedger(
            self, fingerprint, session_id, epoch=epoch, ttl_s=ttl_s
        )

    def ledger_get(
        self,
        fingerprint: str,
        query: Query,
        *,
        epoch: int | None = None,
    ) -> QueryResult | None:
        """The persisted answer for ``query`` under ``fingerprint``.

        With ``epoch`` given, only an entry written at exactly that data
        version (and not TTL-expired) is served -- stale answers from an
        earlier state of the endpoint read as misses, never as hits.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT answer_json, epoch, expires_at FROM ledger "
                "WHERE fingerprint=? AND qkey=?",
                (fingerprint, query.canonical_key()),
            ).fetchone()
        if row is None:
            return None
        answer_json, entry_epoch, expires_at = row
        if epoch is not None and int(entry_epoch) != int(epoch):
            return None
        if expires_at is not None and expires_at <= time.time():
            return None
        if self.observer is not None:
            self.observer.store_event("ledger_hit", key=query.canonical_key())
        rows, overflow, sequence = decode_answer(json.loads(answer_json))
        return QueryResult(
            query=query, rows=rows, overflow=overflow, sequence=sequence
        )

    def ledger_put(
        self,
        fingerprint: str,
        query: Query,
        result: QueryResult,
        session_id: str | None = None,
        *,
        epoch: int = 0,
        ttl_s: float | None = None,
    ) -> None:
        """Persist one billed answer; atomically bump the session's billed
        counter when ``session_id`` is given (exact even at ``kill -9``)."""
        qkey = query.canonical_key()
        answer = json.dumps(
            encode_answer(result.rows, result.overflow, result.sequence),
            separators=(",", ":"),
        )
        query_json = json.dumps(encode_query(query), separators=(",", ":"))
        now = time.time()
        expires_at = None if ttl_s is None else now + float(ttl_s)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO ledger "
                    "(fingerprint, qkey, query_json, answer_json, billed_at, "
                    " epoch, expires_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (fingerprint, qkey, query_json, answer, now,
                     int(epoch), expires_at),
                )
                if session_id is not None:
                    self._conn.execute(
                        "UPDATE sessions SET billed=billed+1, updated_at=? "
                        "WHERE session_id=?",
                        (now, session_id),
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if self.observer is not None:
            if session_id is not None:
                self.observer.store_event(
                    "ledger_put", key=qkey, session_id=session_id
                )
            else:
                self.observer.store_event("ledger_put", key=qkey)

    def ledger_size(self, fingerprint: str | None = None) -> int:
        """Number of ledgered answers (for one endpoint, or overall)."""
        with self._lock:
            if fingerprint is None:
                row = self._conn.execute("SELECT COUNT(*) FROM ledger").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM ledger WHERE fingerprint=?",
                    (fingerprint,),
                ).fetchone()
        return int(row[0])

    def ledger_keys(self, fingerprint: str) -> Iterator[str]:
        """Canonical keys of every ledgered query (diagnostics)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT qkey FROM ledger WHERE fingerprint=? ORDER BY billed_at",
                (fingerprint,),
            ).fetchall()
        return iter(key for (key,) in rows)

    def ledger_entries(
        self, fingerprint: str, *, epoch: int | None = None
    ) -> tuple[LedgerEntry, ...]:
        """Fully-decoded ledger rows of one endpoint, oldest billed first.

        With ``epoch`` given only entries at that data version are
        returned.  This is the delta-crawl's raw material: every query
        the previous crawl paid for, with the answer it paid for.
        """
        from ..service.wire import decode_query

        where = "fingerprint=?"
        params: tuple[Any, ...] = (fingerprint,)
        if epoch is not None:
            where += " AND epoch=?"
            params = (fingerprint, int(epoch))
        with self._lock:
            rows = self._conn.execute(
                "SELECT qkey, query_json, answer_json, epoch, billed_at, "
                f"       expires_at FROM ledger WHERE {where} "
                "ORDER BY billed_at, rowid",
                params,
            ).fetchall()
        entries = []
        for qkey, query_json, answer_json, entry_epoch, billed, expires in rows:
            query = decode_query(json.loads(query_json))
            answer_rows, overflow, sequence = decode_answer(
                json.loads(answer_json)
            )
            entries.append(
                LedgerEntry(
                    qkey=qkey,
                    query=query,
                    result=QueryResult(
                        query=query, rows=answer_rows,
                        overflow=overflow, sequence=sequence,
                    ),
                    epoch=int(entry_epoch),
                    billed_at=billed,
                    expires_at=expires,
                )
            )
        return tuple(entries)

    def ledger_epoch_histogram(self, fingerprint: str) -> dict[int, int]:
        """``{epoch: entry count}`` for one endpoint's ledger."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT epoch, COUNT(*) FROM ledger WHERE fingerprint=? "
                "GROUP BY epoch ORDER BY epoch",
                (fingerprint,),
            ).fetchall()
        return {int(epoch): int(count) for epoch, count in rows}

    def ledger_stale_count(
        self, fingerprint: str, *, epoch: int | None = None
    ) -> int:
        """Entries no longer servable: wrong epoch or TTL-expired.

        ``epoch`` defaults to the endpoint's registered data version.
        """
        if epoch is None:
            epoch = self.endpoint_data_version(fingerprint)
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM ledger WHERE fingerprint=? AND "
                "(epoch != ? OR (expires_at IS NOT NULL AND expires_at <= ?))",
                (fingerprint, int(epoch), time.time()),
            ).fetchone()
        return int(row[0])

    def ledger_bump_epoch(
        self, fingerprint: str, qkeys: Iterable[str], epoch: int
    ) -> int:
        """Re-stamp entries whose answers a delta crawl proved unchanged.

        Returns the number of rows promoted to ``epoch``.  This is what
        makes delta repair pay off *durably*: revalidated entries become
        servable at the new data version without being re-billed.
        """
        keys = list(qkeys)
        if not keys:
            return 0
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                total = 0
                for start in range(0, len(keys), 500):
                    chunk = keys[start:start + 500]
                    marks = ", ".join("?" for _ in chunk)
                    total += self._conn.execute(
                        f"UPDATE ledger SET epoch=? WHERE fingerprint=? "
                        f"AND qkey IN ({marks})",
                        (int(epoch), fingerprint, *chunk),
                    ).rowcount
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return total

    def endpoint_data_version(self, fingerprint: str) -> int:
        """The endpoint's registered data version (0 when unregistered)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT data_version FROM endpoints WHERE fingerprint=?",
                (fingerprint,),
            ).fetchone()
        return int(row[0]) if row is not None else 0

    def set_endpoint_data_version(
        self, fingerprint: str, data_version: int
    ) -> None:
        """Advance an endpoint's registered data version (monotonic)."""
        with self._lock:
            self._conn.execute(
                "UPDATE endpoints SET data_version=MAX(data_version, ?), "
                "last_seen=? WHERE fingerprint=?",
                (int(data_version), time.time(), fingerprint),
            )

    def schema_version(self) -> int:
        """The on-disk layout version recorded in ``store_meta``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
        return int(row[0]) if row is not None else 0

    # ------------------------------------------------------------------
    # sessions and catalog
    # ------------------------------------------------------------------
    def begin_session(
        self,
        fingerprint: str,
        algorithm: str = "",
        *,
        resume: bool = False,
        session_id: str | None = None,
    ) -> SessionRecord:
        """Start (or, with ``resume=True``, pick back up) a crawl session.

        Resume returns the most recently updated *running* session of the
        same endpoint + algorithm -- the one a crash left behind -- with
        its exact billed counter, checkpoint and replay nonce; when none
        exists a fresh session is begun instead.

        Passing ``session_id`` pins the session identity instead: an
        existing session of that id is picked back up (whatever its
        status -- it is set running again), a missing one is created
        under exactly that id.  This is the multi-tenant seam: the
        coordinator assigns each job its session id at submission time,
        so two tenants running the *same* algorithm against the *same*
        endpoint never steal each other's checkpoints, and a restarted
        coordinator resumes precisely the session each job owns.
        """
        now = time.time()
        with self._lock:
            if session_id is not None:
                row = self._conn.execute(
                    "SELECT nonce, billed, checkpoint_json, created_at "
                    "FROM sessions WHERE session_id=? AND fingerprint=? "
                    "AND algorithm=?",
                    (session_id, fingerprint, algorithm),
                ).fetchone()
                if row is not None:
                    nonce, billed, checkpoint_json, created = row
                    self._conn.execute(
                        "UPDATE sessions SET status='running', updated_at=? "
                        "WHERE session_id=?",
                        (now, session_id),
                    )
                    return SessionRecord(
                        session_id=session_id,
                        fingerprint=fingerprint,
                        algorithm=algorithm,
                        status="running",
                        nonce=nonce,
                        billed=int(billed),
                        checkpoint=json.loads(checkpoint_json),
                        created_at=created,
                        updated_at=now,
                        resumed=True,
                    )
            elif resume:
                row = self._conn.execute(
                    "SELECT session_id, nonce, billed, checkpoint_json, "
                    "       created_at "
                    "FROM sessions "
                    "WHERE fingerprint=? AND algorithm=? AND status='running' "
                    "ORDER BY updated_at DESC, rowid DESC LIMIT 1",
                    (fingerprint, algorithm),
                ).fetchone()
                if row is not None:
                    session_id, nonce, billed, checkpoint_json, created = row
                    self._conn.execute(
                        "UPDATE sessions SET updated_at=? WHERE session_id=?",
                        (now, session_id),
                    )
                    return SessionRecord(
                        session_id=session_id,
                        fingerprint=fingerprint,
                        algorithm=algorithm,
                        status="running",
                        nonce=nonce,
                        billed=int(billed),
                        checkpoint=json.loads(checkpoint_json),
                        created_at=created,
                        updated_at=now,
                        resumed=True,
                    )
            if session_id is None:
                session_id = uuid.uuid4().hex[:12]
            nonce = uuid.uuid4().hex[:16]
            try:
                self._conn.execute(
                    "INSERT INTO sessions "
                    "(session_id, fingerprint, algorithm, status, nonce, "
                    " billed, checkpoint_json, created_at, updated_at) "
                    "VALUES (?, ?, ?, 'running', ?, 0, '{}', ?, ?)",
                    (session_id, fingerprint, algorithm, nonce, now, now),
                )
            except sqlite3.IntegrityError as exc:
                # A pinned id that exists under a *different* endpoint or
                # algorithm must not be silently hijacked.
                raise StoreError(
                    f"session {session_id!r} already exists for a different "
                    f"endpoint/algorithm"
                ) from exc
        return SessionRecord(
            session_id=session_id,
            fingerprint=fingerprint,
            algorithm=algorithm,
            status="running",
            nonce=nonce,
            billed=0,
            checkpoint={},
            created_at=now,
            updated_at=now,
        )

    def save_checkpoint(
        self, session_id: str, checkpoint: Mapping[str, Any]
    ) -> None:
        """Overwrite a session's progress snapshot."""
        with self._lock:
            self._conn.execute(
                "UPDATE sessions SET checkpoint_json=?, updated_at=? "
                "WHERE session_id=?",
                (json.dumps(dict(checkpoint)), time.time(), session_id),
            )
        if self.observer is not None:
            self.observer.store_event("checkpoint", session_id=session_id)

    def finish_session(
        self, session_id: str, result: Mapping[str, Any]
    ) -> None:
        """Mark a session finished and file its result in the catalog."""
        with self._lock:
            self._conn.execute(
                "UPDATE sessions SET status='finished', result_json=?, "
                "updated_at=? WHERE session_id=?",
                (json.dumps(dict(result)), time.time(), session_id),
            )

    def session(self, session_id: str) -> SessionRecord | None:
        """Full record of one session, or ``None``."""
        records = self._sessions("WHERE session_id=?", (session_id,))
        return records[0] if records else None

    def sessions(self, fingerprint: str | None = None) -> tuple[SessionRecord, ...]:
        """All sessions (optionally of one endpoint), newest first."""
        if fingerprint is None:
            return self._sessions("", ())
        return self._sessions("WHERE fingerprint=?", (fingerprint,))

    def catalog(self) -> tuple[SessionRecord, ...]:
        """Finished crawls with their filed results, newest first."""
        return self._sessions("WHERE status='finished'", ())

    def _sessions(self, where: str, params: tuple) -> tuple[SessionRecord, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT session_id, fingerprint, algorithm, status, nonce, "
                "       billed, checkpoint_json, result_json, created_at, "
                "       updated_at "
                f"FROM sessions {where} ORDER BY updated_at DESC, rowid DESC",
                params,
            ).fetchall()
        return tuple(
            SessionRecord(
                session_id=sid,
                fingerprint=fp,
                algorithm=algorithm,
                status=status,
                nonce=nonce,
                billed=int(billed),
                checkpoint=json.loads(checkpoint_json or "{}"),
                result=json.loads(result_json) if result_json else None,
                created_at=created,
                updated_at=updated,
            )
            for sid, fp, algorithm, status, nonce, billed, checkpoint_json,
                result_json, created, updated in rows
        )

    # ------------------------------------------------------------------
    # job catalog (the coordinator's durable submission queue)
    # ------------------------------------------------------------------
    def create_job(
        self,
        fingerprint: str,
        *,
        tenant: str = "anonymous",
        algorithm: str = "",
        spec: Mapping[str, Any] | None = None,
        session_id: str | None = None,
        backends: int = 1,
        job_id: str | None = None,
    ) -> JobRecord:
        """File a new discovery job (status ``queued``).

        The job owns a pre-assigned crawl session id (created here, begun
        lazily by the runner via ``begin_session(session_id=...)``), so a
        coordinator restart resumes exactly this job's session.
        """
        now = time.time()
        job_id = job_id or uuid.uuid4().hex[:12]
        session_id = session_id or uuid.uuid4().hex[:12]
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs "
                "(job_id, fingerprint, tenant, algorithm, status, spec_json, "
                " session_id, backends, progress_json, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'queued', ?, ?, ?, '{}', ?, ?)",
                (
                    job_id, fingerprint, tenant, algorithm,
                    json.dumps(dict(spec or {}), separators=(",", ":")),
                    session_id, int(backends), now, now,
                ),
            )
        return JobRecord(
            job_id=job_id,
            fingerprint=fingerprint,
            tenant=tenant,
            algorithm=algorithm,
            status="queued",
            spec=dict(spec or {}),
            session_id=session_id,
            backends=int(backends),
            progress={},
            created_at=now,
            updated_at=now,
        )

    def update_job(
        self,
        job_id: str,
        *,
        status: str | None = None,
        algorithm: str | None = None,
        progress: Mapping[str, Any] | None = None,
        result: Mapping[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Update a job's lifecycle state / progress snapshot / result."""
        if status is not None and status not in JOB_STATUSES:
            raise StoreError(
                f"unknown job status {status!r}; "
                f"pick one of {', '.join(JOB_STATUSES)}"
            )
        sets = ["updated_at=?"]
        params: list[Any] = [time.time()]
        if status is not None:
            sets.append("status=?")
            params.append(status)
        if algorithm is not None:
            sets.append("algorithm=?")
            params.append(algorithm)
        if progress is not None:
            sets.append("progress_json=?")
            params.append(json.dumps(dict(progress), separators=(",", ":")))
        if result is not None:
            sets.append("result_json=?")
            params.append(json.dumps(dict(result), separators=(",", ":")))
        if error is not None:
            sets.append("error=?")
            params.append(error)
        with self._lock:
            cursor = self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE job_id=?",
                (*params, job_id),
            )
            if cursor.rowcount == 0:
                raise StoreError(f"no job {job_id!r} in the catalog")

    def job(self, job_id: str) -> JobRecord | None:
        """Full record of one job, or ``None``."""
        records = self._jobs("WHERE job_id=?", (job_id,))
        return records[0] if records else None

    def jobs(
        self, status: str | tuple[str, ...] | None = None
    ) -> tuple[JobRecord, ...]:
        """Catalogued jobs (optionally by status), newest first."""
        if status is None:
            return self._jobs("", ())
        statuses = (status,) if isinstance(status, str) else tuple(status)
        marks = ", ".join("?" for _ in statuses)
        return self._jobs(f"WHERE status IN ({marks})", statuses)

    def _jobs(self, where: str, params: tuple) -> tuple[JobRecord, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, fingerprint, tenant, algorithm, status, "
                "       spec_json, session_id, backends, progress_json, "
                "       result_json, error, created_at, updated_at "
                f"FROM jobs {where} ORDER BY created_at DESC, rowid DESC",
                params,
            ).fetchall()
        return tuple(
            JobRecord(
                job_id=jid,
                fingerprint=fp,
                tenant=tenant,
                algorithm=algorithm,
                status=status,
                spec=json.loads(spec_json or "{}"),
                session_id=sid,
                backends=int(backends),
                progress=json.loads(progress_json or "{}"),
                result=json.loads(result_json) if result_json else None,
                error=error,
                created_at=created,
                updated_at=updated,
            )
            for jid, fp, tenant, algorithm, status, spec_json, sid, backends,
                progress_json, result_json, error, created, updated in rows
        )

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self, *, dry_run: bool = False) -> GcReport:
        """Prune stale state; returns what was (or would be) removed.

        Five sweeps: (1) endpoint registrations whose stored descriptor
        no longer hashes to their fingerprint (tampered or written by an
        incompatible version) are dropped; (2) *named* registrations
        superseded by a newer registration of the same name -- the served
        dataset or ``k`` changed -- are dropped; (3) ledger entries,
        sessions and catalogued jobs whose endpoint registration is gone
        (including ones orphaned by sweeps 1-2) are dropped; (4) ledger
        entries stamped with a **stale epoch** -- an older data version
        than their endpoint's current one -- are dropped (a delta crawl
        re-stamps the ones it revalidates, so only genuinely dead
        answers remain at old epochs); (5) **TTL-expired** entries are
        dropped.

        With ``dry_run=True`` nothing is deleted: the report carries the
        counts every sweep *would* remove (``repro store gc --dry-run``).
        """
        now = time.time()
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint, name, descriptor, last_seen FROM endpoints"
            ).fetchall()
            prune: set[str] = {
                fp
                for fp, _name, descriptor, _seen in rows
                if _fingerprint_of(descriptor) != fp
            }
            newest_by_name: dict[str, tuple[float, str]] = {}
            for fp, name, _descriptor, seen in rows:
                if not name or fp in prune:
                    continue
                best = newest_by_name.get(name)
                if best is None or seen > best[0]:
                    newest_by_name[name] = (seen, fp)
            for fp, name, _descriptor, _seen in rows:
                if name and fp not in prune and newest_by_name[name][1] != fp:
                    prune.add(fp)
            kept = [fp for fp, _n, _d, _s in rows if fp not in prune]
            marks = ", ".join("?" for _ in kept)
            in_kept = f"({marks})" if kept else "(SELECT NULL WHERE 0)"
            orphan = f"fingerprint NOT IN {in_kept}"
            # Stale-epoch / expired sweeps apply only to surviving
            # endpoints (orphans are already counted by sweep 3) and are
            # mutually exclusive by construction: an entry at a stale
            # epoch counts stale whether or not its TTL also lapsed.
            stale = (
                f"fingerprint IN {in_kept} AND epoch != "
                "(SELECT data_version FROM endpoints e "
                " WHERE e.fingerprint = ledger.fingerprint)"
            )
            expired = (
                f"fingerprint IN {in_kept} AND epoch = "
                "(SELECT data_version FROM endpoints e "
                " WHERE e.fingerprint = ledger.fingerprint) "
                "AND expires_at IS NOT NULL AND expires_at <= ?"
            )
            if dry_run:
                def count(table: str, where: str, params: tuple) -> int:
                    return int(self._conn.execute(
                        f"SELECT COUNT(*) FROM {table} WHERE {where}", params
                    ).fetchone()[0])

                kept_params = tuple(kept)
                return GcReport(
                    endpoints_pruned=len(prune),
                    ledger_pruned=count("ledger", orphan, kept_params),
                    sessions_pruned=count("sessions", orphan, kept_params),
                    jobs_pruned=count("jobs", orphan, kept_params),
                    stale_pruned=count("ledger", stale, kept_params),
                    expired_pruned=count(
                        "ledger", expired, kept_params + (now,)
                    ),
                    dry_run=True,
                )
            for fp in prune:
                self._conn.execute(
                    "DELETE FROM endpoints WHERE fingerprint=?", (fp,)
                )
            ledger_pruned = self._conn.execute(
                "DELETE FROM ledger WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
            sessions_pruned = self._conn.execute(
                "DELETE FROM sessions WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
            jobs_pruned = self._conn.execute(
                "DELETE FROM jobs WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
            stale_pruned = self._conn.execute(
                "DELETE FROM ledger WHERE epoch != "
                "(SELECT data_version FROM endpoints e "
                " WHERE e.fingerprint = ledger.fingerprint)"
            ).rowcount
            expired_pruned = self._conn.execute(
                "DELETE FROM ledger WHERE expires_at IS NOT NULL "
                "AND expires_at <= ?",
                (now,),
            ).rowcount
        return GcReport(
            endpoints_pruned=len(prune),
            ledger_pruned=int(ledger_pruned),
            sessions_pruned=int(sessions_pruned),
            jobs_pruned=int(jobs_pruned),
            stale_pruned=int(stale_pruned),
            expired_pruned=int(expired_pruned),
        )

    def __repr__(self) -> str:
        return (
            f"CrawlStore({self._path!r}: "
            f"{len(self.endpoints())} endpoints, "
            f"{self.ledger_size()} ledgered answers)"
        )


__all__ = [
    "JOB_STATUSES",
    "STORE_VERSION",
    "CrawlStore",
    "EndpointRecord",
    "GcReport",
    "JobRecord",
    "LedgerEntry",
    "QueryLedger",
    "SessionRecord",
    "StoreError",
    "StoreMismatchError",
    "endpoint_descriptor",
    "endpoint_fingerprint",
]
