"""The durable crawl store: ledger, checkpoints and catalog in one SQLite file.

Under the paper's cost model every answered top-k query is *paid for*; a
real hidden-web crawl runs for hours against per-key budgets, and a crash
or restart that throws those answers away re-bills them.  :class:`CrawlStore`
makes crawls durable by persisting three things:

* the **query ledger** -- canonically-keyed ``Query -> QueryResult``
  records, shared across runs, processes and client restarts.  The
  execution engine consults the ledger before dispatching a query, so a
  ledgered answer is free exactly like a dedup hit (it advances neither
  ``queries_issued`` nor any billing counter) and is counted in
  ``EngineStats.ledger_hits``;
* **session checkpoints** -- periodic snapshots of a
  :class:`~repro.core.base.DiscoverySession`'s progress (cumulative billed
  queries, retrieved-tuple and skyline-so-far counts).  The billed counter
  is additionally bumped transactionally with every ledger write, so it is
  exact even at a ``kill -9``;
* the **crawl catalog** -- finished results (algorithm, skyline, cost,
  engine stats), queryable from the CLI via ``repro store ls / show``;
* the **job catalog** -- the coordinator's durable submission queue
  (tenant, spec, owning session, backend count, shard progress), which is
  what lets ``repro coordinate --resume`` replay submitted-but-unfinished
  jobs after a restart.

Resume is *replay-driven*: the ledger doubles as the fetch log of the
state-dependent RQ/PQ paths.  A resumed run simply re-executes its
(deterministic) algorithm; every query whose answer is already owned --
including the strictly sequential ``frontier.fetch`` steps -- is answered
from the ledger without being billed, so the run replays to the exact
pre-crash state and then continues paying only for genuinely new queries.
Kill a crawl mid-run, rerun the same command, and discovery completes with
the same skyline at no more than the uninterrupted cost; a warm second run
over an unchanged endpoint bills zero queries.

Endpoint identity is a **fingerprint** over the schema, ``k`` and service
name.  Mounting a store against an endpoint whose fingerprint does not
match any registration raises :class:`StoreMismatchError` (stale answers
from a different dataset/k must never be replayed), and :meth:`CrawlStore.gc`
prunes registrations whose stored schema no longer hashes to their
fingerprint, superseded same-name registrations, and orphaned rows.

The store is a single SQLite file in WAL mode (durable across ``kill -9``),
or fully in-memory via :meth:`CrawlStore.memory` for tests.  All operations
are thread-safe: pipelined strategies read the ledger from worker threads.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..hiddendb.attributes import Schema
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query

# The fingerprint scheme lives in the wire module (the server advertises
# it over ``/healthz`` and ``/api/schema``); re-exported here because the
# store is its historical home and ledger identity is where it matters.
from ..service.wire import (
    decode_answer,
    encode_answer,
    encode_query,
    endpoint_descriptor,
    endpoint_fingerprint,
    fingerprint_of as _fingerprint_of,
)

#: Bump when the on-disk layout changes incompatibly.
STORE_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS endpoints (
    fingerprint  TEXT PRIMARY KEY,
    name         TEXT NOT NULL DEFAULT '',
    k            INTEGER NOT NULL,
    descriptor   TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_seen    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS ledger (
    fingerprint  TEXT NOT NULL,
    qkey         TEXT NOT NULL,
    query_json   TEXT NOT NULL,
    answer_json  TEXT NOT NULL,
    billed_at    REAL NOT NULL,
    PRIMARY KEY (fingerprint, qkey)
);
CREATE TABLE IF NOT EXISTS sessions (
    session_id       TEXT PRIMARY KEY,
    fingerprint      TEXT NOT NULL,
    algorithm        TEXT NOT NULL DEFAULT '',
    status           TEXT NOT NULL DEFAULT 'running',
    nonce            TEXT NOT NULL,
    billed           INTEGER NOT NULL DEFAULT 0,
    checkpoint_json  TEXT NOT NULL DEFAULT '{}',
    result_json      TEXT,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS sessions_by_endpoint
    ON sessions (fingerprint, algorithm, status, updated_at);
CREATE TABLE IF NOT EXISTS jobs (
    job_id         TEXT PRIMARY KEY,
    fingerprint    TEXT NOT NULL,
    tenant         TEXT NOT NULL DEFAULT 'anonymous',
    algorithm      TEXT NOT NULL DEFAULT '',
    status         TEXT NOT NULL DEFAULT 'queued',
    spec_json      TEXT NOT NULL DEFAULT '{}',
    session_id     TEXT NOT NULL,
    backends       INTEGER NOT NULL DEFAULT 1,
    progress_json  TEXT NOT NULL DEFAULT '{}',
    result_json    TEXT,
    error          TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status, updated_at);
"""

#: Lifecycle states of a coordinator discovery job.  ``queued`` and
#: ``running`` jobs are replayed by ``repro coordinate --resume``;
#: ``partial`` marks a budget-exhausted (still resumable) crawl.
JOB_STATUSES = (
    "queued", "running", "finished", "partial", "failed", "cancelled",
)


class StoreError(RuntimeError):
    """A crawl-store operation failed."""


class StoreMismatchError(StoreError):
    """The store's ledger was built against a different endpoint.

    Raised when a crawl tries to mount a store whose registered endpoint
    (dataset, ``k``, schema) does not match the endpoint being crawled:
    replaying answers across datasets would silently corrupt discovery.
    """


@dataclass(frozen=True)
class EndpointRecord:
    """One registered endpoint of a store."""

    fingerprint: str
    name: str
    k: int
    ledger_entries: int
    created_at: float
    last_seen: float


@dataclass(frozen=True)
class SessionRecord:
    """One crawl session (running, finished or failed)."""

    session_id: str
    fingerprint: str
    algorithm: str
    status: str
    nonce: str
    billed: int
    checkpoint: Mapping[str, Any] = field(default_factory=dict)
    result: Mapping[str, Any] | None = None
    created_at: float = 0.0
    updated_at: float = 0.0
    #: Whether :meth:`CrawlStore.begin_session` picked this session back up
    #: (a resumed crawl) rather than creating it fresh.
    resumed: bool = False


@dataclass(frozen=True)
class JobRecord:
    """One coordinator discovery job in the catalog."""

    job_id: str
    fingerprint: str
    tenant: str
    algorithm: str
    status: str
    spec: Mapping[str, Any] = field(default_factory=dict)
    session_id: str = ""
    backends: int = 1
    progress: Mapping[str, Any] = field(default_factory=dict)
    result: Mapping[str, Any] | None = None
    error: str | None = None
    created_at: float = 0.0
    updated_at: float = 0.0


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`CrawlStore.gc` pass removed."""

    endpoints_pruned: int
    ledger_pruned: int
    sessions_pruned: int
    jobs_pruned: int = 0

    @property
    def total(self) -> int:
        return (
            self.endpoints_pruned + self.ledger_pruned
            + self.sessions_pruned + self.jobs_pruned
        )


class QueryLedger:
    """The ledger of one endpoint, as seen by an engine or client.

    ``get`` answers a query from the persisted ledger (``None`` on a miss);
    ``put`` records one billed answer.  When the view is bound to a crawl
    session, every ``put`` also bumps that session's billed counter in the
    same transaction, keeping crash-time accounting exact.
    """

    def __init__(
        self,
        store: "CrawlStore",
        fingerprint: str,
        session_id: str | None = None,
    ) -> None:
        self._store = store
        self._fingerprint = fingerprint
        self._session_id = session_id

    @property
    def fingerprint(self) -> str:
        """Endpoint fingerprint this view reads/writes under."""
        return self._fingerprint

    def get(self, query: Query) -> QueryResult | None:
        """The ledgered answer for ``query``, or ``None``."""
        return self._store.ledger_get(self._fingerprint, query)

    def put(self, query: Query, result: QueryResult) -> None:
        """Persist one billed answer (idempotent per canonical key)."""
        self._store.ledger_put(
            self._fingerprint, query, result, session_id=self._session_id
        )

    def __len__(self) -> int:
        return self._store.ledger_size(self._fingerprint)

    def __repr__(self) -> str:
        return (
            f"QueryLedger({self._fingerprint}, entries={len(self)}, "
            f"session={self._session_id or '-'})"
        )


class CrawlStore:
    """SQLite-backed persistence for crawls: ledger, sessions, catalog.

    Parameters
    ----------
    path:
        Database file.  Created (with parents) if missing.  Pass
        ``":memory:"`` -- or use :meth:`memory` -- for the in-memory
        variant used by tests (same API, nothing touches disk).

    One store may serve several crawls; one file holds one *endpoint*
    unless further endpoints are registered explicitly with
    ``register_endpoint(..., allow_new=True)`` -- an implicit second
    endpoint raises :class:`StoreMismatchError`, which is what makes
    ``repro crawl --store`` refuse a ledger built against a different
    dataset or ``k``.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._path = str(path)
        self._memory = self._path == ":memory:"
        if not self._memory:
            Path(self._path).parent.mkdir(parents=True, exist_ok=True)
        # One shared connection, serialised by an RLock: ledger lookups
        # happen on the driver thread, but a ledger mounted as a remote
        # client's cache is read from pipelined worker threads too.
        self._conn = sqlite3.connect(
            self._path, check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        #: Optional :class:`~repro.obs.RunObserver`; ``None`` keeps every
        #: hook below a single attribute test (no observability overhead).
        self.observer: Any | None = None
        with self._lock:
            self._conn.execute("PRAGMA busy_timeout=5000")
            if not self._memory:
                # WAL + NORMAL: a committed ledger write survives kill -9
                # without paying a full fsync per query.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            version = int(
                self._conn.execute("PRAGMA user_version").fetchone()[0]
            )
            if version not in (0, STORE_VERSION):
                self._conn.close()
                raise StoreError(
                    f"store {self._path!r} has on-disk layout version "
                    f"{version}; this build reads version {STORE_VERSION}. "
                    f"Use a fresh --store (or the matching build)."
                )
            self._conn.executescript(_DDL)
            self._conn.execute(f"PRAGMA user_version={STORE_VERSION}")

    @classmethod
    def memory(cls) -> "CrawlStore":
        """A fresh in-memory store (tests; nothing persists past close)."""
        return cls(":memory:")

    @property
    def path(self) -> str:
        """Database location (``":memory:"`` for the in-memory variant)."""
        return self._path

    def attach_observer(self, observer: Any | None) -> None:
        """Attach (or detach, with ``None``) a run observer.

        The store emits ``ledger_hit`` / ``ledger_put`` / ``checkpoint``
        events; the latter feed the coordinator's checkpoint-lag gauge.
        """
        self.observer = observer

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CrawlStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def register_endpoint(
        self,
        schema: Schema,
        k: int,
        name: str = "",
        ranking: str = "",
        *,
        allow_new: bool = False,
    ) -> str:
        """Register (or re-verify) an endpoint; returns its fingerprint.

        A fingerprint already registered is simply touched.  The first
        endpoint of an empty store is always accepted.  A *different*
        endpoint in a non-empty store raises :class:`StoreMismatchError`
        unless ``allow_new=True`` -- stale cross-dataset replays are the
        one thing a ledger must never do.
        """
        descriptor = endpoint_descriptor(schema, k, name, ranking)
        fingerprint = _fingerprint_of(descriptor)
        now = time.time()
        with self._lock:
            # BEGIN IMMEDIATE serialises the check-then-insert against
            # concurrent *processes* sharing the store file (the RLock
            # only covers threads of this one); INSERT OR IGNORE makes
            # the race loser equivalent to the already-registered path.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT 1 FROM endpoints WHERE fingerprint=?",
                    (fingerprint,),
                ).fetchone()
                if row is not None:
                    self._conn.execute(
                        "UPDATE endpoints SET last_seen=? WHERE fingerprint=?",
                        (now, fingerprint),
                    )
                    self._conn.execute("COMMIT")
                    return fingerprint
                existing = self._conn.execute(
                    "SELECT name, k, fingerprint FROM endpoints "
                    "ORDER BY last_seen DESC"
                ).fetchall()
                if existing and not allow_new:
                    others = ", ".join(
                        f"{other_name or '<unnamed>'} (k={other_k}, "
                        f"schema hash {other_fp[:8]})"
                        for other_name, other_k, other_fp in existing
                    )
                    raise StoreMismatchError(
                        f"store {self._path!r} holds a ledger for {others}; "
                        f"the current endpoint {name or '<unnamed>'} (k={k}, "
                        f"schema hash {fingerprint[:8]}) does not match. "
                        f"Use a fresh --store, or prune stale endpoints with "
                        f"'repro store gc'."
                    )
                self._conn.execute(
                    "INSERT OR IGNORE INTO endpoints "
                    "(fingerprint, name, k, descriptor, created_at, last_seen) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (fingerprint, name, int(k), descriptor, now, now),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return fingerprint

    def endpoints(self) -> tuple[EndpointRecord, ...]:
        """Registered endpoints, most recently used first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT e.fingerprint, e.name, e.k, e.created_at, e.last_seen, "
                "       (SELECT COUNT(*) FROM ledger l "
                "        WHERE l.fingerprint = e.fingerprint) "
                "FROM endpoints e ORDER BY e.last_seen DESC"
            ).fetchall()
        return tuple(
            EndpointRecord(
                fingerprint=fp,
                name=name,
                k=k,
                ledger_entries=entries,
                created_at=created,
                last_seen=seen,
            )
            for fp, name, k, created, seen, entries in rows
        )

    # ------------------------------------------------------------------
    # ledger
    # ------------------------------------------------------------------
    def ledger(
        self, fingerprint: str, session_id: str | None = None
    ) -> QueryLedger:
        """A :class:`QueryLedger` view over one endpoint's entries.

        Bind ``session_id`` when the view backs a crawl session so billed
        writes also advance that session's exact billed counter.
        """
        return QueryLedger(self, fingerprint, session_id)

    def ledger_get(self, fingerprint: str, query: Query) -> QueryResult | None:
        """The persisted answer for ``query`` under ``fingerprint``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT answer_json FROM ledger WHERE fingerprint=? AND qkey=?",
                (fingerprint, query.canonical_key()),
            ).fetchone()
        if row is None:
            return None
        if self.observer is not None:
            self.observer.store_event("ledger_hit", key=query.canonical_key())
        rows, overflow, sequence = decode_answer(json.loads(row[0]))
        return QueryResult(
            query=query, rows=rows, overflow=overflow, sequence=sequence
        )

    def ledger_put(
        self,
        fingerprint: str,
        query: Query,
        result: QueryResult,
        session_id: str | None = None,
    ) -> None:
        """Persist one billed answer; atomically bump the session's billed
        counter when ``session_id`` is given (exact even at ``kill -9``)."""
        qkey = query.canonical_key()
        answer = json.dumps(
            encode_answer(result.rows, result.overflow, result.sequence),
            separators=(",", ":"),
        )
        query_json = json.dumps(encode_query(query), separators=(",", ":"))
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO ledger "
                    "(fingerprint, qkey, query_json, answer_json, billed_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (fingerprint, qkey, query_json, answer, now),
                )
                if session_id is not None:
                    self._conn.execute(
                        "UPDATE sessions SET billed=billed+1, updated_at=? "
                        "WHERE session_id=?",
                        (now, session_id),
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if self.observer is not None:
            if session_id is not None:
                self.observer.store_event(
                    "ledger_put", key=qkey, session_id=session_id
                )
            else:
                self.observer.store_event("ledger_put", key=qkey)

    def ledger_size(self, fingerprint: str | None = None) -> int:
        """Number of ledgered answers (for one endpoint, or overall)."""
        with self._lock:
            if fingerprint is None:
                row = self._conn.execute("SELECT COUNT(*) FROM ledger").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM ledger WHERE fingerprint=?",
                    (fingerprint,),
                ).fetchone()
        return int(row[0])

    def ledger_keys(self, fingerprint: str) -> Iterator[str]:
        """Canonical keys of every ledgered query (diagnostics)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT qkey FROM ledger WHERE fingerprint=? ORDER BY billed_at",
                (fingerprint,),
            ).fetchall()
        return iter(key for (key,) in rows)

    # ------------------------------------------------------------------
    # sessions and catalog
    # ------------------------------------------------------------------
    def begin_session(
        self,
        fingerprint: str,
        algorithm: str = "",
        *,
        resume: bool = False,
        session_id: str | None = None,
    ) -> SessionRecord:
        """Start (or, with ``resume=True``, pick back up) a crawl session.

        Resume returns the most recently updated *running* session of the
        same endpoint + algorithm -- the one a crash left behind -- with
        its exact billed counter, checkpoint and replay nonce; when none
        exists a fresh session is begun instead.

        Passing ``session_id`` pins the session identity instead: an
        existing session of that id is picked back up (whatever its
        status -- it is set running again), a missing one is created
        under exactly that id.  This is the multi-tenant seam: the
        coordinator assigns each job its session id at submission time,
        so two tenants running the *same* algorithm against the *same*
        endpoint never steal each other's checkpoints, and a restarted
        coordinator resumes precisely the session each job owns.
        """
        now = time.time()
        with self._lock:
            if session_id is not None:
                row = self._conn.execute(
                    "SELECT nonce, billed, checkpoint_json, created_at "
                    "FROM sessions WHERE session_id=? AND fingerprint=? "
                    "AND algorithm=?",
                    (session_id, fingerprint, algorithm),
                ).fetchone()
                if row is not None:
                    nonce, billed, checkpoint_json, created = row
                    self._conn.execute(
                        "UPDATE sessions SET status='running', updated_at=? "
                        "WHERE session_id=?",
                        (now, session_id),
                    )
                    return SessionRecord(
                        session_id=session_id,
                        fingerprint=fingerprint,
                        algorithm=algorithm,
                        status="running",
                        nonce=nonce,
                        billed=int(billed),
                        checkpoint=json.loads(checkpoint_json),
                        created_at=created,
                        updated_at=now,
                        resumed=True,
                    )
            elif resume:
                row = self._conn.execute(
                    "SELECT session_id, nonce, billed, checkpoint_json, "
                    "       created_at "
                    "FROM sessions "
                    "WHERE fingerprint=? AND algorithm=? AND status='running' "
                    "ORDER BY updated_at DESC, rowid DESC LIMIT 1",
                    (fingerprint, algorithm),
                ).fetchone()
                if row is not None:
                    session_id, nonce, billed, checkpoint_json, created = row
                    self._conn.execute(
                        "UPDATE sessions SET updated_at=? WHERE session_id=?",
                        (now, session_id),
                    )
                    return SessionRecord(
                        session_id=session_id,
                        fingerprint=fingerprint,
                        algorithm=algorithm,
                        status="running",
                        nonce=nonce,
                        billed=int(billed),
                        checkpoint=json.loads(checkpoint_json),
                        created_at=created,
                        updated_at=now,
                        resumed=True,
                    )
            if session_id is None:
                session_id = uuid.uuid4().hex[:12]
            nonce = uuid.uuid4().hex[:16]
            try:
                self._conn.execute(
                    "INSERT INTO sessions "
                    "(session_id, fingerprint, algorithm, status, nonce, "
                    " billed, checkpoint_json, created_at, updated_at) "
                    "VALUES (?, ?, ?, 'running', ?, 0, '{}', ?, ?)",
                    (session_id, fingerprint, algorithm, nonce, now, now),
                )
            except sqlite3.IntegrityError as exc:
                # A pinned id that exists under a *different* endpoint or
                # algorithm must not be silently hijacked.
                raise StoreError(
                    f"session {session_id!r} already exists for a different "
                    f"endpoint/algorithm"
                ) from exc
        return SessionRecord(
            session_id=session_id,
            fingerprint=fingerprint,
            algorithm=algorithm,
            status="running",
            nonce=nonce,
            billed=0,
            checkpoint={},
            created_at=now,
            updated_at=now,
        )

    def save_checkpoint(
        self, session_id: str, checkpoint: Mapping[str, Any]
    ) -> None:
        """Overwrite a session's progress snapshot."""
        with self._lock:
            self._conn.execute(
                "UPDATE sessions SET checkpoint_json=?, updated_at=? "
                "WHERE session_id=?",
                (json.dumps(dict(checkpoint)), time.time(), session_id),
            )
        if self.observer is not None:
            self.observer.store_event("checkpoint", session_id=session_id)

    def finish_session(
        self, session_id: str, result: Mapping[str, Any]
    ) -> None:
        """Mark a session finished and file its result in the catalog."""
        with self._lock:
            self._conn.execute(
                "UPDATE sessions SET status='finished', result_json=?, "
                "updated_at=? WHERE session_id=?",
                (json.dumps(dict(result)), time.time(), session_id),
            )

    def session(self, session_id: str) -> SessionRecord | None:
        """Full record of one session, or ``None``."""
        records = self._sessions("WHERE session_id=?", (session_id,))
        return records[0] if records else None

    def sessions(self, fingerprint: str | None = None) -> tuple[SessionRecord, ...]:
        """All sessions (optionally of one endpoint), newest first."""
        if fingerprint is None:
            return self._sessions("", ())
        return self._sessions("WHERE fingerprint=?", (fingerprint,))

    def catalog(self) -> tuple[SessionRecord, ...]:
        """Finished crawls with their filed results, newest first."""
        return self._sessions("WHERE status='finished'", ())

    def _sessions(self, where: str, params: tuple) -> tuple[SessionRecord, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT session_id, fingerprint, algorithm, status, nonce, "
                "       billed, checkpoint_json, result_json, created_at, "
                "       updated_at "
                f"FROM sessions {where} ORDER BY updated_at DESC, rowid DESC",
                params,
            ).fetchall()
        return tuple(
            SessionRecord(
                session_id=sid,
                fingerprint=fp,
                algorithm=algorithm,
                status=status,
                nonce=nonce,
                billed=int(billed),
                checkpoint=json.loads(checkpoint_json or "{}"),
                result=json.loads(result_json) if result_json else None,
                created_at=created,
                updated_at=updated,
            )
            for sid, fp, algorithm, status, nonce, billed, checkpoint_json,
                result_json, created, updated in rows
        )

    # ------------------------------------------------------------------
    # job catalog (the coordinator's durable submission queue)
    # ------------------------------------------------------------------
    def create_job(
        self,
        fingerprint: str,
        *,
        tenant: str = "anonymous",
        algorithm: str = "",
        spec: Mapping[str, Any] | None = None,
        session_id: str | None = None,
        backends: int = 1,
        job_id: str | None = None,
    ) -> JobRecord:
        """File a new discovery job (status ``queued``).

        The job owns a pre-assigned crawl session id (created here, begun
        lazily by the runner via ``begin_session(session_id=...)``), so a
        coordinator restart resumes exactly this job's session.
        """
        now = time.time()
        job_id = job_id or uuid.uuid4().hex[:12]
        session_id = session_id or uuid.uuid4().hex[:12]
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs "
                "(job_id, fingerprint, tenant, algorithm, status, spec_json, "
                " session_id, backends, progress_json, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'queued', ?, ?, ?, '{}', ?, ?)",
                (
                    job_id, fingerprint, tenant, algorithm,
                    json.dumps(dict(spec or {}), separators=(",", ":")),
                    session_id, int(backends), now, now,
                ),
            )
        return JobRecord(
            job_id=job_id,
            fingerprint=fingerprint,
            tenant=tenant,
            algorithm=algorithm,
            status="queued",
            spec=dict(spec or {}),
            session_id=session_id,
            backends=int(backends),
            progress={},
            created_at=now,
            updated_at=now,
        )

    def update_job(
        self,
        job_id: str,
        *,
        status: str | None = None,
        algorithm: str | None = None,
        progress: Mapping[str, Any] | None = None,
        result: Mapping[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Update a job's lifecycle state / progress snapshot / result."""
        if status is not None and status not in JOB_STATUSES:
            raise StoreError(
                f"unknown job status {status!r}; "
                f"pick one of {', '.join(JOB_STATUSES)}"
            )
        sets = ["updated_at=?"]
        params: list[Any] = [time.time()]
        if status is not None:
            sets.append("status=?")
            params.append(status)
        if algorithm is not None:
            sets.append("algorithm=?")
            params.append(algorithm)
        if progress is not None:
            sets.append("progress_json=?")
            params.append(json.dumps(dict(progress), separators=(",", ":")))
        if result is not None:
            sets.append("result_json=?")
            params.append(json.dumps(dict(result), separators=(",", ":")))
        if error is not None:
            sets.append("error=?")
            params.append(error)
        with self._lock:
            cursor = self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE job_id=?",
                (*params, job_id),
            )
            if cursor.rowcount == 0:
                raise StoreError(f"no job {job_id!r} in the catalog")

    def job(self, job_id: str) -> JobRecord | None:
        """Full record of one job, or ``None``."""
        records = self._jobs("WHERE job_id=?", (job_id,))
        return records[0] if records else None

    def jobs(
        self, status: str | tuple[str, ...] | None = None
    ) -> tuple[JobRecord, ...]:
        """Catalogued jobs (optionally by status), newest first."""
        if status is None:
            return self._jobs("", ())
        statuses = (status,) if isinstance(status, str) else tuple(status)
        marks = ", ".join("?" for _ in statuses)
        return self._jobs(f"WHERE status IN ({marks})", statuses)

    def _jobs(self, where: str, params: tuple) -> tuple[JobRecord, ...]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, fingerprint, tenant, algorithm, status, "
                "       spec_json, session_id, backends, progress_json, "
                "       result_json, error, created_at, updated_at "
                f"FROM jobs {where} ORDER BY created_at DESC, rowid DESC",
                params,
            ).fetchall()
        return tuple(
            JobRecord(
                job_id=jid,
                fingerprint=fp,
                tenant=tenant,
                algorithm=algorithm,
                status=status,
                spec=json.loads(spec_json or "{}"),
                session_id=sid,
                backends=int(backends),
                progress=json.loads(progress_json or "{}"),
                result=json.loads(result_json) if result_json else None,
                error=error,
                created_at=created,
                updated_at=updated,
            )
            for jid, fp, tenant, algorithm, status, spec_json, sid, backends,
                progress_json, result_json, error, created, updated in rows
        )

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def gc(self) -> GcReport:
        """Prune stale state; returns what was removed.

        Three sweeps: (1) endpoint registrations whose stored descriptor
        no longer hashes to their fingerprint (tampered or written by an
        incompatible version) are dropped; (2) *named* registrations
        superseded by a newer registration of the same name -- the served
        dataset or ``k`` changed -- are dropped; (3) ledger entries,
        sessions and catalogued jobs whose endpoint registration is gone
        (including ones orphaned by sweeps 1-2) are dropped.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint, name, descriptor, last_seen FROM endpoints"
            ).fetchall()
            prune: set[str] = {
                fp
                for fp, _name, descriptor, _seen in rows
                if _fingerprint_of(descriptor) != fp
            }
            newest_by_name: dict[str, tuple[float, str]] = {}
            for fp, name, _descriptor, seen in rows:
                if not name or fp in prune:
                    continue
                best = newest_by_name.get(name)
                if best is None or seen > best[0]:
                    newest_by_name[name] = (seen, fp)
            for fp, name, _descriptor, _seen in rows:
                if name and fp not in prune and newest_by_name[name][1] != fp:
                    prune.add(fp)
            for fp in prune:
                self._conn.execute(
                    "DELETE FROM endpoints WHERE fingerprint=?", (fp,)
                )
            ledger_pruned = self._conn.execute(
                "DELETE FROM ledger WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
            sessions_pruned = self._conn.execute(
                "DELETE FROM sessions WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
            jobs_pruned = self._conn.execute(
                "DELETE FROM jobs WHERE fingerprint NOT IN "
                "(SELECT fingerprint FROM endpoints)"
            ).rowcount
        return GcReport(
            endpoints_pruned=len(prune),
            ledger_pruned=int(ledger_pruned),
            sessions_pruned=int(sessions_pruned),
            jobs_pruned=int(jobs_pruned),
        )

    def __repr__(self) -> str:
        return (
            f"CrawlStore({self._path!r}: "
            f"{len(self.endpoints())} endpoints, "
            f"{self.ledger_size()} ledgered answers)"
        )


__all__ = [
    "JOB_STATUSES",
    "CrawlStore",
    "EndpointRecord",
    "GcReport",
    "JobRecord",
    "QueryLedger",
    "SessionRecord",
    "StoreError",
    "StoreMismatchError",
    "endpoint_descriptor",
    "endpoint_fingerprint",
]
