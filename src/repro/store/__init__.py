"""Durable crawl persistence: query ledger, checkpointed sessions, catalog.

:class:`CrawlStore` is the subsystem that turns discovery runs into
restartable crawls: every billed ``Query -> QueryResult`` pair is persisted
in a canonical-keyed ledger shared across runs and processes, sessions
checkpoint their progress as they go, and finished results are filed in a
catalog queryable from the CLI (``repro store ls / show / gc``).

Mount a store through the facade and crawls become durable::

    from repro import CrawlStore, Discoverer, DiscoveryConfig

    store = CrawlStore("crawl.db")
    disc = Discoverer(DiscoveryConfig(store=store))
    disc.run(interface)           # every billed answer lands in the ledger
    disc.run(interface)           # warm: 0 billed queries, all ledger hits

    # after a crash (kill -9, deploy, budget exhaustion):
    Discoverer(DiscoveryConfig(store=store, resume=True)).run(interface)
    # replays the paid-for prefix free, finishes at <= the uninterrupted cost

See :mod:`repro.store.crawlstore` for the full model.
"""

from .crawlstore import (
    JOB_STATUSES,
    STORE_VERSION,
    CrawlStore,
    EndpointRecord,
    GcReport,
    JobRecord,
    LedgerEntry,
    QueryLedger,
    SessionRecord,
    StoreError,
    StoreMismatchError,
    endpoint_descriptor,
    endpoint_fingerprint,
)

__all__ = [
    "JOB_STATUSES",
    "STORE_VERSION",
    "CrawlStore",
    "EndpointRecord",
    "GcReport",
    "JobRecord",
    "LedgerEntry",
    "QueryLedger",
    "SessionRecord",
    "StoreError",
    "StoreMismatchError",
    "endpoint_descriptor",
    "endpoint_fingerprint",
]
