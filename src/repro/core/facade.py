"""The :class:`Discoverer` facade: one entry point for every algorithm.

``Discoverer`` binds a :class:`~repro.core.registry.DiscoveryConfig` to the
algorithm registry and exposes three verbs:

* :meth:`Discoverer.run` -- run one algorithm (by registry name, or
  auto-dispatched on the schema's interface taxonomy) and return a
  :class:`~repro.core.base.DiscoveryResult`;
* :meth:`Discoverer.run_all` -- run every applicable registered algorithm
  on the same interface and return one result per algorithm;
* :meth:`Discoverer.skyband` -- run the K-skyband extension (§7.2) of a
  registered algorithm and return a
  :class:`~repro.core.skyband.SkybandResult`.

Results carry the effective config plus the registry metadata of the
algorithm that produced them, so downstream reporting never has to guess
how a number was obtained.

Quick start::

    from repro import Discoverer, DiscoveryConfig

    disc = Discoverer(DiscoveryConfig(budget=500))
    result = disc.run(interface)                   # auto-dispatch
    result = disc.run(interface, "rq")             # explicit algorithm
    per_algo = disc.run_all(interface)             # compare algorithms
    band = disc.skyband(interface, band=3)         # top-3 skyband
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Any

from ..hiddendb.errors import QueryBudgetExceeded
from ..hiddendb.endpoint import SearchEndpoint
from . import baseline, mq, pq, pq2d, rq, sq  # noqa: F401  (self-registration)
from .base import DiscoveryResult, DiscoverySession
from .registry import (
    AlgorithmNotFoundError,
    AlgorithmSpec,
    DiscoveryConfig,
    all_algorithms,
    applicable_algorithms,
    get_algorithm,
    resolve_algorithm,
)
from .skyband import SkybandResult


class Discoverer:
    """Facade over the algorithm registry, bound to a default config.

    The constructor config supplies defaults; every verb accepts a
    per-call ``config`` and/or keyword overrides (any
    :class:`DiscoveryConfig` field) that take precedence::

        disc = Discoverer(DiscoveryConfig(budget=1000))
        disc.run(interface)                 # budget 1000
        disc.run(interface, budget=50)      # budget 50, same defaults else
    """

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self._config = config if config is not None else DiscoveryConfig()

    @property
    def config(self) -> DiscoveryConfig:
        """The default configuration of this facade."""
        return self._config

    def with_config(self, **changes: Any) -> "Discoverer":
        """A new facade with ``changes`` applied to the default config."""
        return Discoverer(self._config.replace(**changes))

    # ------------------------------------------------------------------
    # registry views
    # ------------------------------------------------------------------
    @staticmethod
    def algorithms(interface_or_schema=None) -> tuple[AlgorithmSpec, ...]:
        """Registered algorithms; restricted to the applicable ones when an
        interface (or schema) is given."""
        if interface_or_schema is None:
            return all_algorithms()
        schema = getattr(interface_or_schema, "schema", interface_or_schema)
        return applicable_algorithms(schema)

    # ------------------------------------------------------------------
    # the three verbs
    # ------------------------------------------------------------------
    def run(
        self,
        interface: SearchEndpoint,
        algorithm: str | None = None,
        *,
        config: DiscoveryConfig | None = None,
        **overrides: Any,
    ) -> DiscoveryResult:
        """Discover the skyline of ``interface``.

        ``algorithm`` is a registry name (``"sq"``, ``"rq"``, ``"pq"``,
        ``"pq2d"``, ``"mq"``, ``"baseline"``, ...); ``None`` auto-dispatches
        on the schema's interface taxonomy exactly like the classic
        :func:`repro.discover`.
        """
        cfg = self._effective(config, overrides)
        spec = self._spec_for(interface, algorithm)
        if cfg.mode == "delta":
            # The freshness plane: repair the store ledger against the
            # endpoint's current data version instead of crawling from
            # scratch (probe, revalidate, cascade -- see repro.freshness).
            from ..freshness import DeltaCrawl

            return DeltaCrawl(interface, spec, cfg).run()
        session = self._session(interface, cfg, spec.name)
        complete = True
        try:
            spec.run(session, cfg)
        except QueryBudgetExceeded:
            complete = False
        finally:
            # However the run ends -- including a mid-run crash raising
            # past us -- the durable session's deterministic replay nonce
            # must not leak into later runs on the same client, and the
            # traced session's observer must release its trace sink (and
            # detach from the shared client) the same way.
            self._clear_replay_nonce(interface, cfg)
            session.close_observer()
        result = session.result(spec.display(interface.schema), complete)
        result = self._decorate(result, spec, cfg, session)
        # Durable runs file their outcome in the store's crawl catalog;
        # a run that *raises* instead leaves its session 'running', i.e.
        # resumable with DiscoveryConfig(resume=True).
        session.finish_store(result)
        return result

    def run_all(
        self,
        interface: SearchEndpoint,
        *,
        config: DiscoveryConfig | None = None,
        **overrides: Any,
    ) -> dict[str, DiscoveryResult]:
        """Run every applicable registered algorithm on ``interface``.

        Returns ``{registry name: result}`` in registry order.  Runs share
        the interface (and therefore any interface-level budget); each
        result's ``total_cost`` counts only its own queries.
        """
        cfg = self._effective(config, overrides)
        results: dict[str, DiscoveryResult] = {}
        for spec in applicable_algorithms(interface.schema):
            results[spec.name] = self.run(
                interface, spec.name, config=cfg
            )
        return results

    def skyband(
        self,
        interface: SearchEndpoint,
        band: int | None = None,
        algorithm: str | None = None,
        *,
        config: DiscoveryConfig | None = None,
        **overrides: Any,
    ) -> SkybandResult:
        """Discover the top-``band`` skyband of ``interface`` (§7.2).

        ``band`` defaults to ``config.band``.  ``algorithm`` must name a
        registered algorithm with a skyband extension; ``None`` picks the
        highest-priority applicable one (RQ > PQ > SQ for the built-ins).
        """
        cfg = self._effective(config, overrides)
        if cfg.mode != "full":
            raise ValueError(
                "skyband discovery supports mode='full' only; run a "
                "mode='delta' repair through Discoverer.run instead"
            )
        if band is not None:
            cfg = cfg.replace(band=band)
        spec = self._skyband_spec_for(interface, algorithm)
        try:
            result = spec.skyband(interface, cfg.band, cfg)
        finally:
            self._clear_replay_nonce(interface, cfg)
        return _dc_replace(result, config=cfg, info=spec.info())

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _effective(
        self, config: DiscoveryConfig | None, overrides: dict[str, Any]
    ) -> DiscoveryConfig:
        cfg = config if config is not None else self._config
        if overrides:
            options = overrides.pop("options", None)
            cfg = cfg.replace(**overrides)
            if options:
                cfg = cfg.with_options(**options)
        return cfg

    @staticmethod
    def _spec_for(
        interface: SearchEndpoint, algorithm: str | None
    ) -> AlgorithmSpec:
        schema = interface.schema
        if algorithm is None:
            return resolve_algorithm(schema)
        spec = get_algorithm(algorithm)
        if not spec.supports(schema):
            kinds = sorted({a.kind.name for a in schema.ranking_attributes})
            raise ValueError(
                f"algorithm {spec.name!r} ({spec.display_name}) does not "
                f"support schemas with ranking kinds {kinds}; it handles "
                f"{'+'.join(spec.taxonomy)}"
            )
        return spec

    @staticmethod
    def _skyband_spec_for(
        interface: SearchEndpoint, algorithm: str | None
    ) -> AlgorithmSpec:
        schema = interface.schema
        if algorithm is not None:
            spec = get_algorithm(algorithm)
            if spec.skyband is None:
                raise ValueError(
                    f"algorithm {spec.name!r} has no skyband extension"
                )
            if not spec.supports_skyband(schema):
                raise ValueError(
                    f"the skyband extension of {spec.name!r} does not "
                    f"support this schema's interface taxonomy"
                )
            return spec
        candidates = sorted(
            (
                spec
                for spec in all_algorithms()
                if spec.supports_skyband(schema)
            ),
            key=lambda spec: (-spec.priority, spec.name),
        )
        if not candidates:
            raise AlgorithmNotFoundError(
                "<no registered skyband extension supports this schema>",
                [spec.name for spec in all_algorithms() if spec.skyband],
            )
        return candidates[0]

    @staticmethod
    def _session(
        interface: SearchEndpoint, cfg: DiscoveryConfig, algorithm: str = ""
    ) -> DiscoverySession:
        return DiscoverySession.from_config(interface, cfg, algorithm=algorithm)

    @staticmethod
    def _clear_replay_nonce(
        interface: SearchEndpoint, cfg: DiscoveryConfig
    ) -> None:
        """Drop the durable session's replay nonce from a shared client.

        Only durable runs set one, so only they clear it -- an explicitly
        user-configured ``replay_nonce`` on a plain run is left alone.
        """
        if cfg.store is None:
            return
        set_nonce = getattr(interface, "set_replay_nonce", None)
        if set_nonce is not None:
            set_nonce(None)

    @staticmethod
    def _decorate(
        result: DiscoveryResult,
        spec: AlgorithmSpec,
        cfg: DiscoveryConfig,
        session: DiscoverySession,
    ) -> DiscoveryResult:
        return _dc_replace(
            result,
            config=cfg,
            info=spec.info(),
            query_log=session.log if cfg.record_log else (),
            store_session=session.store_session,
        )

    def __repr__(self) -> str:
        return f"Discoverer(config={self._config!r})"


#: Shared default facade backing the module-level convenience functions.
default_discoverer = Discoverer()


def discover(
    interface: SearchEndpoint,
    algorithm: str | None = None,
    **overrides: Any,
) -> DiscoveryResult:
    """Discover the skyline of ``interface`` (module-level convenience).

    Auto-dispatches on the schema's interface taxonomy unless ``algorithm``
    names a registered algorithm.  Equivalent to
    ``Discoverer().run(interface, algorithm, **overrides)``.
    """
    return default_discoverer.run(interface, algorithm, **overrides)


__all__ = ["Discoverer", "default_discoverer", "discover"]
