"""PQ-DB-SKY: skyline discovery for higher-dimensional point interfaces (§5.3).

No instance-optimal algorithm exists beyond two dimensions (§5.2), so
PQ-DB-SKY is a greedy decomposition: it selects the two ranking attributes
with the **largest domains** as the plane (their sizes contribute additively
to the cost; the remaining attributes contribute multiplicatively) and runs
the pruned-plane subroutine :mod:`repro.core.pqsub` once per value
combination of the remaining attributes.

Planes are visited in ascending order of the combination's coordinate sum --
a linear extension of the dominance order over combinations -- so every
potential dominator of a plane's tuples lives in an earlier plane.  This
ordering both maximises pruning and gives the *anytime* property: a plane
tuple that survives the already-discovered set is on the final skyline.

Execution-engine note: the plane sweep is inherently sequential -- whether
a plane is explored at all, and which line query its exploration issues
next, depend on the tuples retrieved from *earlier* planes (the witness /
domination pruning rules), so no two queries are independent and the
frontier degenerates to synchronous fetches.  The engine's memoization,
stats and budget handling still apply to every issued query.
"""

from __future__ import annotations

import itertools
import math
import warnings
from typing import Sequence

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .pqsub import PlaneState, explore_plane
from .registry import DiscoveryConfig, register_algorithm

ALGORITHM_NAME = "PQ-DB-SKY"

#: Refuse to enumerate more planes than this (product of non-plane domains).
DEFAULT_PLANE_LIMIT = 1_000_000


def choose_plane_attributes(domain_sizes: Sequence[int]) -> tuple[int, int]:
    """The two attributes spanning the planes: largest domains first.

    Domain sizes of the plane pair contribute additively to the query cost
    while every other attribute contributes multiplicatively (Eq. 14), so
    the pair with the largest domains minimises the bound.
    """
    if len(domain_sizes) < 2:
        raise ValueError("need at least 2 ranking attributes")
    order = sorted(
        range(len(domain_sizes)), key=lambda i: (-domain_sizes[i], i)
    )
    first, second = sorted(order[:2])
    return first, second


def plane_combinations(
    domain_sizes: Sequence[int], others: Sequence[int]
) -> list[tuple[int, ...]]:
    """All value combinations of the non-plane attributes, best planes first.

    Sorted by coordinate sum: if combination ``a`` dominates ``b``
    component-wise then ``sum(a) < sum(b)``, so dominators always come first.
    """
    spaces = [range(domain_sizes[attribute]) for attribute in others]
    return sorted(itertools.product(*spaces), key=lambda combo: (sum(combo), combo))


def _prune_from_covering_results(
    state: PlaneState,
    covering: Sequence[QueryResult],
    combo: tuple[int, ...],
    others: Sequence[int],
    x_attr: int,
    y_attr: int,
) -> None:
    """Apply the witness rule from queries that contain this plane."""
    for result in covering:
        for row in result.rows:
            if all(row.values[o] >= combo[j] for j, o in enumerate(others)):
                state.close_witness_rect(row.values[x_attr], row.values[y_attr])


def _prune_from_retrieved(
    state: PlaneState,
    session: DiscoverySession,
    combo: tuple[int, ...],
    others: Sequence[int],
    x_attr: int,
    y_attr: int,
) -> None:
    """Apply the domination rule from every tuple retrieved so far."""
    for row in session.retrieved_rows:
        values = row.values
        if all(values[o] <= combo[j] for j, o in enumerate(others)):
            in_plane = all(values[o] == combo[j] for j, o in enumerate(others))
            state.add_dominator(values[x_attr], values[y_attr], in_plane,
                                rid=row.rid)


def pq_db_sky(
    session: DiscoverySession,
    plane_attributes: tuple[int, int] | None = None,
    plane_limit: int = DEFAULT_PLANE_LIMIT,
    band: int = 1,
    covering_results: Sequence[QueryResult] | None = None,
) -> None:
    """Run PQ-DB-SKY (Algorithm 5 of the paper) inside ``session``.

    Parameters
    ----------
    session:
        Discovery session wrapping the top-k interface.
    plane_attributes:
        Override the plane-selection heuristic (used by the ablation bench).
    plane_limit:
        Safety cap on the number of planes to enumerate.
    band:
        Skyband depth; 1 discovers the plain skyline.
    covering_results:
        Additional already-issued query results whose queries contain every
        plane (used by MQ-DB-SKY); the initial ``SELECT *`` is always used.
    """
    schema = session.schema
    m = schema.m
    sizes = schema.domain_sizes
    if m == 1:
        _scan_single_attribute(session, band)
        return
    first = session.issue(Query.select_all())
    if first.is_empty or not first.overflow:
        return
    if m == 2 and band == 1:
        # Delegate to the instance-optimal 2-D algorithm; replay its answer
        # so the initial SELECT * is not issued twice.
        _pq_2d_from_first(session, first)
        return
    if plane_attributes is None:
        x_attr, y_attr = choose_plane_attributes(sizes)
    else:
        x_attr, y_attr = plane_attributes
        if x_attr == y_attr:
            raise ValueError("plane attributes must differ")
    others = [i for i in range(m) if i not in (x_attr, y_attr)]
    total_planes = math.prod(sizes[o] for o in others) if others else 1
    if total_planes > plane_limit:
        raise ValueError(
            f"{total_planes} planes exceed plane_limit={plane_limit}; "
            "PQ-DB-SKY is exponential in the non-plane attributes"
        )
    covering = [first]
    if covering_results:
        covering = list(covering_results) + covering
    for combo in plane_combinations(sizes, others):
        state = PlaneState(sizes[x_attr], sizes[y_attr], band=band)
        _prune_from_covering_results(
            state, covering, combo, others, x_attr, y_attr
        )
        _prune_from_retrieved(state, session, combo, others, x_attr, y_attr)
        if not state.any_alive():
            continue
        plane_query = Query.from_point(dict(zip(others, combo)))
        explore_plane(session, state, plane_query, x_attr, y_attr)


def _pq_2d_from_first(session: DiscoverySession, first: QueryResult) -> None:
    """Finish a 2-attribute database via plane exploration of the single
    (trivial) plane, seeded with the already-issued ``SELECT *`` answer."""
    sizes = session.schema.domain_sizes
    state = PlaneState(sizes[0], sizes[1], band=1)
    for row in first.rows:
        state.close_witness_rect(row.values[0], row.values[1])
        state.add_dominator(row.values[0], row.values[1], in_plane=True,
                            rid=row.rid)
    explore_plane(session, state, Query.select_all(), 0, 1)


def _scan_single_attribute(session: DiscoverySession, band: int) -> None:
    """Degenerate 1-D case: probe values in preference order.

    The skyline of a 1-attribute database is the set of tuples holding the
    best occupied value; the K-skyband additionally needs the next values
    until ``band`` dominators are known.
    """
    attribute = session.schema.ranking_attributes[0]
    dominators = 0
    for value in range(attribute.domain_size):
        if dominators >= band:
            return
        result = session.issue(Query.from_point({0: value}))
        if result.is_empty:
            continue
        if result.overflow:
            # At least k tuples share this value; for band <= k that is
            # enough to close every worse value.
            dominators += session.k
        else:
            dominators += len(result.rows)


@register_algorithm(
    "pq",
    display_name=ALGORITHM_NAME,
    kinds=(InterfaceKind.PQ,),
    capabilities=("anytime", "complete"),
    summary="Greedy plane decomposition over point predicates (§5.3)",
    dispatch=lambda schema: True,  # applicable == pure point schema
    priority=20,
    # Parity with the legacy entry points: the 2-attribute case delegates to
    # the instance-optimal 2-D algorithm and reports its name.
    display_for=lambda schema: "PQ-2D-SKY" if schema.m == 2 else ALGORITHM_NAME,
)
def _run_pq(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """PQ-DB-SKY under the facade; options: ``plane_attributes``,
    ``plane_limit``."""
    pq_db_sky(
        session,
        plane_attributes=config.option("plane_attributes"),
        plane_limit=config.option("plane_limit", DEFAULT_PLANE_LIMIT),
    )


def discover_pq(
    interface: SearchEndpoint,
    plane_attributes: tuple[int, int] | None = None,
    plane_limit: int = DEFAULT_PLANE_LIMIT,
) -> DiscoveryResult:
    """Discover the skyline of a point-predicate database with PQ-DB-SKY.

    .. deprecated:: 2.0
        Use ``Discoverer().run(interface, "pq")`` instead.
    """
    warnings.warn(
        "discover_pq() is deprecated; use repro.Discoverer().run(interface, "
        '"pq") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return run_with_budget_guard(
        interface,
        ALGORITHM_NAME if interface.schema.m != 2 else "PQ-2D-SKY",
        lambda session: pq_db_sky(session, plane_attributes, plane_limit),
    )
