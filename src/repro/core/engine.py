"""Frontier execution engine: dedup'd, batched, concurrent query dispatch.

Every DB-SKY algorithm is a *frontier expansion* over a query tree: a pool
of pending queries plus a rule that turns one answer into new pending
queries.  This module makes that structure explicit and pluggable:

* :class:`Frontier` -- the pending pool.  An algorithm ``add()``\\ s queries
  whose answers it can process independently of one another, each with an
  expansion callback, and ``drain()``\\ s the pool; strictly sequential steps
  (an expansion that must inspect *all* tuples retrieved so far before
  deciding the next query, as in RQ-DB-SKY's seen-tuple check) go through
  :meth:`Frontier.fetch` instead.
* :class:`ExecutionStrategy` -- how a frontier is drained.
  :class:`SerialStrategy` issues one query at a time in the frontier's
  order, bit-identical to the pre-engine implementations (the parity
  reference).  :class:`PipelinedStrategy` keeps a window of frontier
  queries in flight on a thread pool -- packing them into
  ``batch_query()`` round trips when the endpoint supports it -- while
  *merging* answers strictly in dispatch order (sequence-numbered merge),
  so every expansion callback observes exactly the session state it would
  have observed under the serial strategy.
* :class:`QueryEngine` -- per-session plumbing shared by both paths:
  run-scoped query memoization (with dedup enabled, an identical query is
  never billed twice) and the :class:`EngineStats` counters attached to
  every result.

Why the in-order merge gives cost/skyline parity
------------------------------------------------
Queries are only pooled in a frontier when their expansions depend on
nothing but their own answer, so the *set* of issued queries is invariant
under reordering; adaptive steps run synchronously inside merge callbacks,
at which point the session has recorded precisely the answers the serial
run would have recorded (in-flight answers are invisible until merged).
Billable cost is therefore identical under both strategies -- with dedup
enabled it equals the number of *distinct* issued queries, which is
order-invariant -- and so is the retrieved-tuple set, hence the skyline.
What may legitimately differ is the anytime *trace*: with several queries
in flight, a tuple's first-retrieval cost can be stamped at a slightly
different query count.

Session-level budgets are reservation-based: every transport claims one
unit of the allowance immediately before the endpoint is called (on
whichever thread runs it), so a budgeted run never issues more than its
allowance, and a budget that suffices serially also suffices pipelined --
the strategies issue the same query set.  When the budget genuinely runs
out mid-run, the exact prefix of queries that fits can differ from the
serial prefix (both report ``complete=False``).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..hiddendb.errors import HiddenDBError, QueryBudgetExceeded
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..hiddendb.endpoint import SearchEndpoint
    from .base import DiscoverySession

#: Default number of queries packed into one ``batch_query()`` round trip.
DEFAULT_BATCH_SIZE = 16

#: Default thread-pool width of :class:`PipelinedStrategy`.
DEFAULT_WORKERS = 4


@dataclass(frozen=True)
class EngineStats:
    """Execution counters of one discovery run (``result.stats``).

    ``issued`` counts queries the engine sent to the endpoint (the billable
    work); ``deduped`` counts queries answered for free from the run-scoped
    memo; ``ledger_hits`` counts queries answered for free from a mounted
    persistent crawl-store ledger (answers paid for by an *earlier* run or
    a crashed incarnation of this one); ``batched`` counts the subset of
    issued queries whose answers arrived inside ``batch_query()`` round
    trips (``batches`` counts the round trips started); ``max_in_flight``
    is the peak number of queries simultaneously awaiting an answer.
    """

    strategy: str = "serial"
    workers: int = 1
    issued: int = 0
    deduped: int = 0
    ledger_hits: int = 0
    batched: int = 0
    batches: int = 0
    max_in_flight: int = 0

    @property
    def duplicate_queries(self) -> int:
        """Queries identical to an earlier one of the same run (free)."""
        return self.deduped

    @property
    def dedup_rate(self) -> float:
        """Fraction of logical queries answered from the memo."""
        total = self.issued + self.deduped + self.ledger_hits
        return self.deduped / total if total else 0.0

    @property
    def ledger_rate(self) -> float:
        """Fraction of logical queries answered from the persistent ledger."""
        total = self.issued + self.deduped + self.ledger_hits
        return self.ledger_hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (benchmark records, experiment reporting)."""
        return {
            "strategy": self.strategy,
            "workers": self.workers,
            "issued": self.issued,
            "deduped": self.deduped,
            "dedup_rate": self.dedup_rate,
            "ledger_hits": self.ledger_hits,
            "batched": self.batched,
            "batches": self.batches,
            "max_in_flight": self.max_in_flight,
        }

    def __repr__(self) -> str:
        return (
            f"EngineStats({self.strategy} x{self.workers}: "
            f"issued={self.issued}, deduped={self.deduped}, "
            f"ledger_hits={self.ledger_hits}, "
            f"batched={self.batched}/{self.batches}, "
            f"max_in_flight={self.max_in_flight})"
        )


class QueryEngine:
    """Per-session dispatch plumbing: memo, counters, strategy.

    All counter and memo mutation happens on the driver thread (the thread
    running the algorithm); worker threads only ever call the endpoint's
    ``query`` / ``batch_query``.
    """

    def __init__(
        self,
        interface: "SearchEndpoint",
        strategy: "ExecutionStrategy | None" = None,
        dedup: bool = False,
    ) -> None:
        self.interface = interface
        self.strategy = strategy if strategy is not None else SerialStrategy()
        self.dedup = dedup
        # Endpoints with their own free query cache (the remote client's
        # LRU) expose ``cached_answer``; the engine consults it before
        # reserving budget or dispatching, since cache hits bill nothing.
        self._peek = getattr(interface, "cached_answer", None)
        # The memo is keyed by the canonical query key (the scheme shared
        # with the remote cache and the crawl-store ledger), so layers can
        # never disagree about query identity.
        self._memo: dict[str, QueryResult] = {}
        #: Optional persistent ledger (crawl store): answered queries are
        #: free across runs/processes, and every billed answer is persisted.
        self._ledger = None
        self._issued = 0
        self._deduped = 0
        self._ledger_hits = 0
        self._batched = 0
        self._batches = 0
        self._in_flight = 0
        self._max_in_flight = 0
        #: Thread pool of the outermost active drain; nested drains (an
        #: expansion callback running a sub-frontier) reuse it instead of
        #: churning a fresh pool per recursion level.
        self._drain_pool: "ThreadPoolExecutor | None" = None

    # -- memo and ledger -----------------------------------------------
    def bind_ledger(self, ledger) -> None:
        """Mount a persistent query ledger (crawl-store view).

        Ledgered answers are free exactly like dedup hits -- no budget
        reservation, no billing -- and every billed answer is written
        through, which is what makes a crawl resumable: a restarted run
        replays the already-paid-for prefix from the ledger and only bills
        genuinely new queries.
        """
        self._ledger = ledger

    @property
    def ledger(self):
        """The mounted persistent ledger, if any."""
        return self._ledger

    def lookup(self, query: Query) -> QueryResult | None:
        """Memoized answer for ``query`` (``None`` unless dedup hit)."""
        if not self.dedup:
            return None
        return self._memo.get(query.canonical_key())

    def count_dedup(self) -> None:
        """Record one memo hit."""
        self._deduped += 1

    def ledger_lookup(self, query: Query) -> QueryResult | None:
        """Persisted answer for ``query`` from the mounted ledger, if any.

        A hit is counted in ``ledger_hits`` and memoized (when dedup is
        on) so later repeats within the run resolve from RAM.
        """
        if self._ledger is None:
            return None
        hit = self._ledger.get(query)
        if hit is None:
            return None
        self._ledger_hits += 1
        if self.dedup:
            self._memo[query.canonical_key()] = hit
        return hit

    def peek_cache(self, query: Query) -> QueryResult | None:
        """The endpoint's own cached answer for ``query``, if it has one."""
        if self._peek is None:
            return None
        return self._peek(query)

    def note_answer(
        self, query: Query, result: QueryResult, batched: bool = False
    ) -> None:
        """Record one billed answer (memoize and ledger it)."""
        self._issued += 1
        if batched:
            self._batched += 1
        if self.dedup:
            self._memo[query.canonical_key()] = result
        if self._ledger is not None:
            self._ledger.put(query, result)

    # -- in-flight accounting (driver thread) --------------------------
    def note_dispatch(self, count: int = 1) -> None:
        self._in_flight += count
        if self._in_flight > self._max_in_flight:
            self._max_in_flight = self._in_flight

    def note_done(self, count: int = 1) -> None:
        self._in_flight -= count

    def note_batch(self) -> None:
        """Record one ``batch_query()`` round trip being started."""
        self._batches += 1

    # -- sequential fetch (the Frontier.fetch / session.issue path) ----
    def fetch(
        self, query: Query, session: "DiscoverySession | None" = None
    ) -> QueryResult:
        """Answer one query: memo first, endpoint otherwise.

        The session's budget is reserved only when the query is actually
        about to be billed -- memo hits are free -- and released again if
        the transport fails without an answer.
        """
        hit = self.lookup(query)
        if hit is not None:
            self.count_dedup()
            return hit
        ledgered = self.ledger_lookup(query)
        if ledgered is not None:
            # A ledger hit is an answer an earlier run already paid for:
            # free, like a dedup hit.
            return ledgered
        cached = self.peek_cache(query)
        if cached is not None:
            # An endpoint-cache hit is free: no budget reservation, no
            # billable ``issued`` count (matching queries_issued).
            if self.dedup:
                self._memo[query.canonical_key()] = cached
            return cached
        if session is not None:
            session.reserve_budget()
        self.note_dispatch()
        try:
            result = self.interface.query(query)
        except BaseException:
            if session is not None:
                session.release_budget()
            raise
        finally:
            self.note_done()
        self.note_answer(query, result)
        return result

    def snapshot(self) -> EngineStats:
        """Frozen view of the counters."""
        return EngineStats(
            strategy=self.strategy.name,
            workers=self.strategy.workers,
            issued=self._issued,
            deduped=self._deduped,
            ledger_hits=self._ledger_hits,
            batched=self._batched,
            batches=self._batches,
            max_in_flight=self._max_in_flight,
        )


@dataclass
class _Entry:
    """One pending frontier query."""

    seq: int
    query: Query
    on_result: Callable[[QueryResult], None] | None = None


class Frontier:
    """Pending independent queries of one expansion, plus their callbacks.

    Entries added through :meth:`add` may be issued concurrently by the
    active strategy; their ``on_result`` callbacks always run on the
    driver thread, in dispatch order, after the answer has been recorded
    in the session.  A callback may ``add`` further entries (the expansion
    rule), call :meth:`fetch` for an adaptive sub-step, or run a whole
    nested frontier -- the in-order merge guarantees it sees exactly the
    session state a serial run would.

    ``lifo=True`` makes the serial strategy pop the most recently added
    entry first, preserving the depth-first order of the pre-engine stack
    implementations (BASELINE, PQ-2D-SKY).
    """

    def __init__(self, session: "DiscoverySession", lifo: bool = False) -> None:
        self._session = session
        self._lifo = lifo
        self._pending: deque[_Entry] = deque()
        self._seq = 0

    @property
    def pending(self) -> int:
        """Number of queries waiting to be dispatched."""
        return len(self._pending)

    def add(
        self,
        query: Query,
        on_result: Callable[[QueryResult], None] | None = None,
    ) -> None:
        """Queue an independent query; ``on_result`` is its expansion."""
        self._pending.append(_Entry(self._seq, query, on_result))
        self._seq += 1

    def pop(self) -> _Entry:
        """Next entry in this frontier's order (strategy use)."""
        return self._pending.pop() if self._lifo else self._pending.popleft()

    def fetch(self, query: Query) -> QueryResult:
        """Issue one query synchronously through the engine.

        The sequential seam for state-dependent expansions: identical to
        ``session.issue`` (memo, stats and budget all apply), provided so
        algorithms route *every* query through their frontier.
        """
        return self._session.issue(query)

    def drain(self) -> None:
        """Issue every pending query (and whatever their callbacks add)."""
        self._session.engine.strategy.drain(self, self._session)


class ExecutionStrategy:
    """How a :class:`Frontier` is drained."""

    name = "abstract"
    workers = 1

    def drain(self, frontier: Frontier, session: "DiscoverySession") -> None:
        raise NotImplementedError


class SerialStrategy(ExecutionStrategy):
    """One query at a time, in frontier order -- the parity reference.

    With dedup off this is bit-identical to the pre-engine
    implementations: same queries, same order, same costs, same traces.
    """

    name = "serial"
    workers = 1

    def drain(self, frontier: Frontier, session: "DiscoverySession") -> None:
        while frontier.pending:
            entry = frontier.pop()
            result = session.issue(entry.query)
            if entry.on_result is not None:
                entry.on_result(result)


@dataclass
class _Dispatched:
    """One dispatched entry awaiting its in-order merge.

    Exactly one answer source is set: a future (per-query task, or a
    ``(future, batch_index)`` pair into a batch task), a memo key (dedup:
    the answer is -- or by this entry's merge turn will be -- memoized),
    or a direct ``result`` (endpoint-cache or ledger hit at dispatch time).
    """

    entry: _Entry
    query: Query | None = None  #: merged query (transported entries only)
    key: str | None = None  #: canonical key of ``query``
    future: Future | None = None
    batch_index: int | None = None
    memo_key: str | None = None
    #: Dedup-off duplicate of an in-flight query with a ledger mounted:
    #: resolved from the ledger at merge time (the original's in-order
    #: merge has written it by then), billed nothing.
    ledger_query: Query | None = None
    result: QueryResult | None = None

    @property
    def transported(self) -> bool:
        return self.query is not None

    def resolve(self, engine: QueryEngine) -> QueryResult:
        if self.result is not None:
            return self.result
        if self.memo_key is not None:
            engine.count_dedup()
            return engine._memo[self.memo_key]
        if self.ledger_query is not None:
            answer = engine.ledger_lookup(self.ledger_query)
            if answer is None:  # pragma: no cover - merge order guarantees it
                raise RuntimeError(
                    f"in-flight duplicate {self.ledger_query!r} missing from "
                    f"the ledger at merge time"
                )
            return answer
        assert self.future is not None
        try:
            outcome = self.future.result()
        except HiddenDBError as exc:
            # A terminal failure inside a batch carries every answer that
            # was actually obtained/billed (``partial_results``, aligned
            # with the batch, ``None`` holes marking unbilled items):
            # entries with an answer still merge normally, only the holes
            # raise.  Billed answers are never discarded.
            partial = getattr(exc, "partial_results", None)
            if (
                self.batch_index is not None
                and partial is not None
                and self.batch_index < len(partial)
            ):
                answered = partial[self.batch_index]
                if answered is not None:
                    return answered
            raise
        if self.batch_index is not None:
            outcome = outcome[self.batch_index]
        return outcome


class PipelinedStrategy(ExecutionStrategy):
    """Windowed concurrent dispatch with deterministic in-order merge.

    A window of frontier queries is kept in flight on a thread pool of
    ``workers`` threads; when the endpoint offers ``batch_query()`` the
    window widens to ``workers * batch_size`` queries, packed up to
    ``batch_size`` per task so each task is a single round trip (one POST
    against the networked service).  Answers are merged -- recorded into
    the session and handed to expansion callbacks -- strictly in dispatch
    order, which is what makes pipelined runs produce the same skyline and
    billable cost as serial ones (see the module docstring).
    """

    name = "pipelined"

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.workers = workers
        self.batch_size = batch_size

    def drain(self, frontier: Frontier, session: "DiscoverySession") -> None:
        engine = session.engine
        interface = engine.interface
        batch_query = (
            getattr(interface, "batch_query", None)
            if self.batch_size > 1
            else None
        )
        per_task = self.batch_size if batch_query is not None else 1
        capacity = self.workers * per_task
        waiting: deque[_Dispatched] = deque()
        inflight_keys: set[str] = set()  # dispatched, not yet merged
        outstanding = 0  # transported entries not yet merged (this drain)

        # Nested drains (a callback running a sub-frontier mid-merge)
        # share the outermost drain's pool instead of churning one
        # executor per recursion level.  Only transports run on the pool,
        # never drains, so reuse cannot deadlock the driver.
        owns_pool = engine._drain_pool is None
        if owns_pool:
            pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-engine"
            )
            engine._drain_pool = pool
        else:
            pool = engine._drain_pool
        try:
            while frontier.pending or waiting:
                # Fill the dispatch window, one chunk (= one task) at a
                # time so merges stay responsive.
                while frontier.pending and outstanding < capacity:
                    chunk: list[_Dispatched] = []
                    limit = min(per_task, capacity - outstanding)
                    while frontier.pending and len(chunk) < limit:
                        entry = frontier.pop()
                        merged = session.prepare(entry.query)
                        ckey = merged.canonical_key()
                        if engine.dedup and (
                            ckey in engine._memo
                            or ckey in inflight_keys
                        ):
                            # Answered (or about to be) by the memo:
                            # resolve there at merge time, bill nothing.
                            waiting.append(
                                _Dispatched(entry, memo_key=ckey)
                            )
                            continue
                        if (
                            engine.ledger is not None
                            and ckey in inflight_keys
                        ):
                            # Dedup is off but a ledger is mounted: the
                            # in-flight original will have ledgered its
                            # answer by this entry's merge turn, and a
                            # serial run would have answered the repeat
                            # from the ledger for free -- dispatching it
                            # would double-bill an owned answer.
                            waiting.append(
                                _Dispatched(entry, ledger_query=merged)
                            )
                            continue
                        ledgered = engine.ledger_lookup(merged)
                        if ledgered is not None:
                            # Already paid for by an earlier run: free,
                            # no dispatch.
                            waiting.append(
                                _Dispatched(entry, result=ledgered)
                            )
                            continue
                        cached = engine.peek_cache(merged)
                        if cached is not None:
                            # Endpoint-cache hit: free, no dispatch.
                            if engine.dedup:
                                engine._memo[ckey] = cached
                            waiting.append(
                                _Dispatched(entry, result=cached)
                            )
                            continue
                        item = _Dispatched(entry, query=merged, key=ckey)
                        chunk.append(item)
                        waiting.append(item)
                        inflight_keys.add(ckey)
                        outstanding += 1
                    self._submit(chunk, pool, session, batch_query, engine)
                if not waiting:
                    continue
                # Merge the oldest dispatched entry.
                head = waiting.popleft()
                try:
                    result = head.resolve(engine)
                finally:
                    if head.transported:
                        inflight_keys.discard(head.key)
                        engine.note_done()
                        outstanding -= 1
                if head.transported:
                    engine.note_answer(
                        head.query, result,
                        batched=head.batch_index is not None,
                    )
                session.record(result)
                if head.entry.on_result is not None:
                    head.entry.on_result(result)
        except BaseException:
            # Don't issue work the algorithm will never see: queued tasks
            # are cancelled, running ones finish harmlessly (workers never
            # touch session state).
            for item in waiting:
                if item.future is not None:
                    item.future.cancel()
            raise
        finally:
            if owns_pool:
                engine._drain_pool = None
                pool.shutdown(wait=True)

    @classmethod
    def _submit(cls, chunk, pool, session, batch_query, engine) -> None:
        """Put a chunk of prepared entries on the wire as one task.

        Session-budget reservation happens inside the transport wrappers,
        on the worker thread, immediately before each query is billed --
        never speculatively -- so a budget that suffices for a serial run
        also suffices pipelined (both issue the same query set).
        """
        if not chunk:
            return
        interface = engine.interface
        queries = [item.query for item in chunk]
        engine.note_dispatch(len(chunk))
        if batch_query is not None and len(chunk) > 1:
            engine.note_batch()
            future = pool.submit(
                cls._transport_batch, session, batch_query, queries
            )
            for index, item in enumerate(chunk):
                item.future = future
                item.batch_index = index
        else:
            for item, query in zip(chunk, queries):
                item.future = pool.submit(
                    cls._transport_one, session, interface, query
                )

    @staticmethod
    def _transport_one(session, interface, query) -> QueryResult:
        """One guarded single-query transport (worker thread)."""
        session.reserve_budget()
        try:
            return interface.query(query)
        except BaseException:
            session.release_budget()
            raise

    @staticmethod
    def _transport_batch(session, batch_query, queries):
        """One guarded batch transport (worker thread).

        Reserves budget per item and only sends the affordable prefix; a
        shortfall (or a terminal mid-batch failure from the endpoint)
        surfaces as an exception carrying ``partial_results`` so already
        billed answers still reach their entries' merges.
        """
        reserved = 0
        budget_error: QueryBudgetExceeded | None = None
        for _ in queries:
            try:
                session.reserve_budget()
            except QueryBudgetExceeded as exc:
                budget_error = exc
                break
            reserved += 1
        allowed = queries[:reserved]
        results: tuple[QueryResult, ...] = ()
        try:
            if allowed:
                results = tuple(batch_query(allowed))
        except HiddenDBError as exc:
            # Normalise partial_results to a tuple aligned with the sent
            # prefix; ``None`` holes are exactly the unbilled items, whose
            # reservations are returned.
            outcomes = tuple(getattr(exc, "partial_results", ()) or ())
            outcomes = outcomes[:reserved]
            outcomes += (None,) * (reserved - len(outcomes))
            session.release_budget(
                sum(1 for outcome in outcomes if outcome is None)
            )
            exc.partial_results = outcomes
            raise
        except BaseException:
            session.release_budget(reserved)
            raise
        if budget_error is not None:
            budget_error.partial_results = results
            raise budget_error
        return results


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_WORKERS",
    "EngineStats",
    "ExecutionStrategy",
    "Frontier",
    "PipelinedStrategy",
    "QueryEngine",
    "SerialStrategy",
]
