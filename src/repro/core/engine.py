"""Frontier execution engine: dedup'd, batched, concurrent query dispatch.

Every DB-SKY algorithm is a *frontier expansion* over a query tree: a pool
of pending queries plus a rule that turns one answer into new pending
queries.  This module makes that structure explicit and pluggable:

* :class:`Frontier` -- the pending pool.  An algorithm ``add()``\\ s queries
  whose answers it can process independently of one another, each with an
  expansion callback, and ``drain()``\\ s the pool; strictly sequential steps
  (an expansion that must inspect *all* tuples retrieved so far before
  deciding the next query, as in RQ-DB-SKY's seen-tuple check) go through
  :meth:`Frontier.fetch` instead.
* :class:`ExecutionStrategy` -- how a frontier is drained.  All concrete
  strategies run the **same windowed drain core** (:class:`_DrainCore`):
  query preparation, the memo / ledger / endpoint-cache consult chain,
  in-flight duplicate suppression, billing and the dispatch-order merge
  live in exactly one place, so determinism (identical skyline and billed
  cost at any concurrency) cannot drift between strategies.  A strategy
  contributes only *transport* -- how a chunk of prepared queries is put
  on the wire:

  - :class:`SerialStrategy` transports one query at a time, inline, in
    the frontier's order -- bit-identical to the pre-engine
    implementations (the parity reference).
  - :class:`PipelinedStrategy` keeps a window of queries in flight on a
    thread pool of blocking transports, packing them into
    ``batch_query()`` round trips when the endpoint supports it.
  - :class:`AsyncStrategy` keeps the same bounded window in flight on an
    asyncio event loop (one daemon thread, non-blocking sockets against
    an async endpoint): a "worker" is just an in-flight slot, not an OS
    thread, so very wide windows cost nothing to stand up.
* :class:`QueryEngine` -- per-session plumbing shared by all paths:
  run-scoped query memoization (with dedup enabled, an identical query is
  never billed twice) and the :class:`EngineStats` counters attached to
  every result.

Why the in-order merge gives cost/skyline parity
------------------------------------------------
Queries are only pooled in a frontier when their expansions depend on
nothing but their own answer, so the *set* of issued queries is invariant
under reordering; adaptive steps run synchronously inside merge callbacks,
at which point the session has recorded precisely the answers the serial
run would have recorded (in-flight answers are invisible until merged).
Billable cost is therefore identical under every strategy -- with dedup
enabled it equals the number of *distinct* issued queries, which is
order-invariant -- and so is the retrieved-tuple set, hence the skyline.
What may legitimately differ is the anytime *trace*: with several queries
in flight, a tuple's first-retrieval cost can be stamped at a slightly
different query count.

Session-level budgets are reservation-based: every transport claims one
unit of the allowance immediately before the endpoint is called (on
whichever thread runs it), so a budgeted run never issues more than its
allowance, and a budget that suffices serially also suffices concurrently
-- the strategies issue the same query set.  When the budget genuinely
runs out mid-run, the exact prefix of queries that fits can differ from
the serial prefix (both report ``complete=False``).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..hiddendb.endpoint import EventLoopRunner, as_async_endpoint
from ..hiddendb.errors import HiddenDBError, QueryBudgetExceeded
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from .adaptive import AdaptiveWindow, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..hiddendb.endpoint import SearchEndpoint
    from .base import DiscoverySession

#: Default number of queries packed into one ``batch_query()`` round trip.
DEFAULT_BATCH_SIZE = 16

#: Default thread-pool width of :class:`PipelinedStrategy`.
DEFAULT_WORKERS = 4

#: Registered execution-strategy names (the CLI / ``DiscoveryConfig``
#: currency; resolve one with :func:`make_strategy`).
STRATEGY_NAMES = ("serial", "pipelined", "async")


@dataclass(frozen=True)
class EngineStats:
    """Execution counters of one discovery run (``result.stats``).

    ``issued`` counts queries the engine sent to the endpoint (the billable
    work); ``deduped`` counts queries answered for free from the run-scoped
    memo; ``ledger_hits`` counts queries answered for free from a mounted
    persistent crawl-store ledger (answers paid for by an *earlier* run or
    a crashed incarnation of this one); ``batched`` counts the subset of
    issued queries whose answers arrived inside ``batch_query()`` round
    trips (``batches`` counts the round trips started); ``max_in_flight``
    is the peak number of queries simultaneously awaiting an answer;
    ``wall_time_s`` is the elapsed wall-clock time of the run (session
    creation to snapshot), from which :attr:`queries_per_sec` derives the
    billable throughput.  Adaptive runs (``workers="auto"``) additionally
    report ``mean_window`` (the dispatch-time average of the AIMD window
    width) and ``window_decreases`` (multiplicative back-offs taken);
    both stay zero under fixed-width strategies.
    """

    strategy: str = "serial"
    workers: int = 1
    issued: int = 0
    deduped: int = 0
    ledger_hits: int = 0
    batched: int = 0
    batches: int = 0
    max_in_flight: int = 0
    wall_time_s: float = 0.0
    mean_window: float = 0.0
    window_decreases: int = 0

    @property
    def duplicate_queries(self) -> int:
        """Queries identical to an earlier one of the same run (free)."""
        return self.deduped

    @property
    def dedup_rate(self) -> float:
        """Fraction of logical queries answered from the memo."""
        total = self.issued + self.deduped + self.ledger_hits
        return self.deduped / total if total else 0.0

    @property
    def ledger_rate(self) -> float:
        """Fraction of logical queries answered from the persistent ledger."""
        total = self.issued + self.deduped + self.ledger_hits
        return self.ledger_hits / total if total else 0.0

    @property
    def queries_per_sec(self) -> float:
        """Billable queries per wall-clock second of the run."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.issued / self.wall_time_s

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly view (benchmark records, experiment reporting)."""
        return {
            "strategy": self.strategy,
            "workers": self.workers,
            "issued": self.issued,
            "deduped": self.deduped,
            "dedup_rate": self.dedup_rate,
            "ledger_hits": self.ledger_hits,
            "batched": self.batched,
            "batches": self.batches,
            "max_in_flight": self.max_in_flight,
            "wall_time_s": self.wall_time_s,
            "queries_per_sec": self.queries_per_sec,
            "mean_window": self.mean_window,
            "window_decreases": self.window_decreases,
        }

    def __repr__(self) -> str:
        return (
            f"EngineStats({self.strategy} x{self.workers}: "
            f"issued={self.issued}, deduped={self.deduped}, "
            f"ledger_hits={self.ledger_hits}, "
            f"batched={self.batched}/{self.batches}, "
            f"max_in_flight={self.max_in_flight}, "
            f"wall={self.wall_time_s:.3f}s)"
        )


class QueryEngine:
    """Per-session dispatch plumbing: memo, counters, strategy.

    All counter and memo mutation happens on the driver thread (the thread
    running the algorithm); worker threads and the event loop only ever
    call the endpoint's transport members.
    """

    def __init__(
        self,
        interface: "SearchEndpoint",
        strategy: "ExecutionStrategy | None" = None,
        dedup: bool = False,
    ) -> None:
        self.interface = interface
        self.strategy = strategy if strategy is not None else SerialStrategy()
        self.dedup = dedup
        # Endpoints with their own free query cache (the remote client's
        # LRU) expose ``cached_answer``; the engine consults it before
        # reserving budget or dispatching, since cache hits bill nothing.
        self._peek = getattr(interface, "cached_answer", None)
        # The memo is keyed by the canonical query key (the scheme shared
        # with the remote cache and the crawl-store ledger), so layers can
        # never disagree about query identity.
        self._memo: dict[str, QueryResult] = {}
        #: Optional persistent ledger (crawl store): answered queries are
        #: free across runs/processes, and every billed answer is persisted.
        self._ledger = None
        self._issued = 0
        self._deduped = 0
        self._ledger_hits = 0
        self._batched = 0
        self._batches = 0
        self._in_flight = 0
        self._max_in_flight = 0
        self._window_sum = 0
        self._window_samples = 0
        self._window_decreases = 0
        self._started = time.perf_counter()
        #: AIMD controller of an adaptive strategy (``workers="auto"``),
        #: created lazily by the first drain and reused by nested and
        #: repeated drains so the learned window width persists across
        #: frontier expansions within one session.
        self._adaptive = None
        #: Thread pool of the outermost active pipelined drain; nested
        #: drains (an expansion callback running a sub-frontier) reuse it
        #: instead of churning a fresh pool per recursion level.
        self._drain_pool: "ThreadPoolExecutor | None" = None
        #: Event-loop runner of the outermost active async drain (same
        #: reuse rule as the thread pool).
        self._async_runner: "EventLoopRunner | None" = None
        #: Observability hook (:class:`repro.obs.RunObserver`), bound by
        #: ``DiscoverySession.attach_observer``.  ``None`` keeps every
        #: instrumentation site a single is-not-None check; when set, the
        #: hooks emit metric increments and trace spans but never branch
        #: any algorithmic control flow (parity by construction).
        self.observer = None

    # -- memo and ledger -----------------------------------------------
    def bind_ledger(self, ledger) -> None:
        """Mount a persistent query ledger (crawl-store view).

        Ledgered answers are free exactly like dedup hits -- no budget
        reservation, no billing -- and every billed answer is written
        through, which is what makes a crawl resumable: a restarted run
        replays the already-paid-for prefix from the ledger and only bills
        genuinely new queries.
        """
        self._ledger = ledger

    @property
    def ledger(self):
        """The mounted persistent ledger, if any."""
        return self._ledger

    def lookup(self, query: Query) -> QueryResult | None:
        """Memoized answer for ``query`` (``None`` unless dedup hit)."""
        if not self.dedup:
            return None
        return self._memo.get(query.canonical_key())

    def count_dedup(self) -> None:
        """Record one memo hit."""
        self._deduped += 1

    def ledger_lookup(self, query: Query) -> QueryResult | None:
        """Persisted answer for ``query`` from the mounted ledger, if any.

        A hit is counted in ``ledger_hits`` and memoized (when dedup is
        on) so later repeats within the run resolve from RAM.
        """
        if self._ledger is None:
            return None
        hit = self._ledger.get(query)
        if hit is None:
            return None
        self._ledger_hits += 1
        if self.dedup:
            self._memo[query.canonical_key()] = hit
        return hit

    def peek_cache(self, query: Query) -> QueryResult | None:
        """The endpoint's own cached answer for ``query``, if it has one."""
        if self._peek is None:
            return None
        return self._peek(query)

    def consult(self, query: Query) -> QueryResult | None:
        """The free-answer consult chain: memo, then ledger, then endpoint
        cache -- in that order, the same order every dispatch path uses.

        Returns ``None`` when the query genuinely has to be transported
        (and billed).  Counter side effects (dedup / ledger hits, memo
        write-back of cache hits) are applied here.
        """
        hit = self.lookup(query)
        if hit is not None:
            self.count_dedup()
            return hit
        ledgered = self.ledger_lookup(query)
        if ledgered is not None:
            # A ledger hit is an answer an earlier run already paid for:
            # free, like a dedup hit.
            return ledgered
        cached = self.peek_cache(query)
        if cached is not None:
            # An endpoint-cache hit is free: no budget reservation, no
            # billable ``issued`` count (matching queries_issued).
            if self.dedup:
                self._memo[query.canonical_key()] = cached
            return cached
        return None

    def note_answer(
        self, query: Query, result: QueryResult, batched: bool = False
    ) -> None:
        """Record one billed answer (memoize and ledger it)."""
        self._issued += 1
        if batched:
            self._batched += 1
        if self.dedup:
            self._memo[query.canonical_key()] = result
        if self._ledger is not None:
            self._ledger.put(query, result)
        if self.observer is not None:
            # The single billing point of every execution path (serial
            # fetches and windowed merges alike), so a traced crawl gets a
            # "billed" span for exactly the billed queries.
            self.observer.billed(query, batched=batched)

    # -- in-flight accounting (driver thread) --------------------------
    def note_dispatch(self, count: int = 1) -> None:
        self._in_flight += count
        if self._in_flight > self._max_in_flight:
            self._max_in_flight = self._in_flight

    def note_done(self, count: int = 1) -> None:
        self._in_flight -= count

    def note_batch(self) -> None:
        """Record one ``batch_query()`` round trip being started."""
        self._batches += 1

    # -- adaptive-window accounting (driver thread) --------------------
    def note_window(self, size: int) -> None:
        """Sample the adaptive window width at dispatch time."""
        self._window_sum += size
        self._window_samples += 1

    def note_window_event(self, kind: str, size: int) -> None:
        """An adaptive-window transition (see :mod:`repro.core.adaptive`)."""
        if kind in ("decrease", "floor"):
            self._window_decreases += 1
        if self.observer is not None:
            hook = getattr(self.observer, "window_event", None)
            if hook is not None:
                hook(kind, size)

    # -- sequential fetch (the Frontier.fetch / session.issue path) ----
    def fetch(
        self, query: Query, session: "DiscoverySession | None" = None
    ) -> QueryResult:
        """Answer one query: the consult chain first, endpoint otherwise.

        The sequential seam for state-dependent expansions.  The session's
        budget is reserved only when the query is actually about to be
        billed -- consult hits are free -- and released again if the
        transport fails without an answer.
        """
        hit = self.consult(query)
        if hit is not None:
            return hit
        if session is not None:
            session.reserve_budget()
        self.note_dispatch()
        try:
            result = self.interface.query(query)
        except BaseException:
            if session is not None:
                session.release_budget()
            raise
        finally:
            self.note_done()
        self.note_answer(query, result)
        return result

    def snapshot(self) -> EngineStats:
        """Frozen view of the counters."""
        return EngineStats(
            strategy=self.strategy.name,
            workers=self.strategy.workers,
            issued=self._issued,
            deduped=self._deduped,
            ledger_hits=self._ledger_hits,
            batched=self._batched,
            batches=self._batches,
            max_in_flight=self._max_in_flight,
            wall_time_s=time.perf_counter() - self._started,
            mean_window=(
                self._window_sum / self._window_samples
                if self._window_samples
                else 0.0
            ),
            window_decreases=self._window_decreases,
        )


@dataclass
class _Entry:
    """One pending frontier query."""

    seq: int
    query: Query
    on_result: Callable[[QueryResult], None] | None = None


class Frontier:
    """Pending independent queries of one expansion, plus their callbacks.

    Entries added through :meth:`add` may be issued concurrently by the
    active strategy; their ``on_result`` callbacks always run on the
    driver thread, in dispatch order, after the answer has been recorded
    in the session.  A callback may ``add`` further entries (the expansion
    rule), call :meth:`fetch` for an adaptive sub-step, or run a whole
    nested frontier -- the in-order merge guarantees it sees exactly the
    session state a serial run would.

    ``lifo=True`` makes the serial strategy pop the most recently added
    entry first, preserving the depth-first order of the pre-engine stack
    implementations (BASELINE, PQ-2D-SKY).
    """

    def __init__(self, session: "DiscoverySession", lifo: bool = False) -> None:
        self._session = session
        self._lifo = lifo
        self._pending: deque[_Entry] = deque()
        self._seq = 0

    @property
    def pending(self) -> int:
        """Number of queries waiting to be dispatched."""
        return len(self._pending)

    def add(
        self,
        query: Query,
        on_result: Callable[[QueryResult], None] | None = None,
    ) -> None:
        """Queue an independent query; ``on_result`` is its expansion."""
        self._pending.append(_Entry(self._seq, query, on_result))
        self._seq += 1

    def pop(self) -> _Entry:
        """Next entry in this frontier's order (strategy use)."""
        return self._pending.pop() if self._lifo else self._pending.popleft()

    def fetch(self, query: Query) -> QueryResult:
        """Issue one query synchronously through the engine.

        The sequential seam for state-dependent expansions: identical to
        ``session.issue`` (memo, stats and budget all apply), provided so
        algorithms route *every* query through their frontier.
        """
        return self._session.issue(query)

    def drain(self) -> None:
        """Issue every pending query (and whatever their callbacks add)."""
        self._session.engine.strategy.drain(self, self._session)


@dataclass
class _Dispatched:
    """One dispatched entry awaiting its in-order merge.

    Exactly one answer source is set: a future (per-query task, or a
    ``(future, batch_index)`` pair into a batch task), a memo key (dedup:
    the answer is -- or by this entry's merge turn will be -- memoized),
    or a direct ``result`` (endpoint-cache or ledger hit at dispatch time).
    """

    entry: _Entry
    query: Query | None = None  #: merged query (transported entries only)
    key: str | None = None  #: canonical key of ``query``
    future: Future | None = None
    batch_index: int | None = None
    memo_key: str | None = None
    #: Dedup-off duplicate of an in-flight query with a ledger mounted:
    #: resolved from the ledger at merge time (the original's in-order
    #: merge has written it by then), billed nothing.
    ledger_query: Query | None = None
    result: QueryResult | None = None

    @property
    def transported(self) -> bool:
        return self.query is not None

    def resolve(self, engine: QueryEngine) -> QueryResult:
        if self.result is not None:
            return self.result
        if self.memo_key is not None:
            engine.count_dedup()
            return engine._memo[self.memo_key]
        if self.ledger_query is not None:
            answer = engine.ledger_lookup(self.ledger_query)
            if answer is None:  # pragma: no cover - merge order guarantees it
                raise RuntimeError(
                    f"in-flight duplicate {self.ledger_query!r} missing from "
                    f"the ledger at merge time"
                )
            return answer
        assert self.future is not None
        try:
            outcome = self.future.result()
        except HiddenDBError as exc:
            # A terminal failure inside a batch carries every answer that
            # was actually obtained/billed (``partial_results``, aligned
            # with the batch, ``None`` holes marking unbilled items):
            # entries with an answer still merge normally, only the holes
            # raise.  Billed answers are never discarded.
            partial = getattr(exc, "partial_results", None)
            if (
                self.batch_index is not None
                and partial is not None
                and self.batch_index < len(partial)
            ):
                answered = partial[self.batch_index]
                if answered is not None:
                    return answered
            raise
        if self.batch_index is not None:
            outcome = outcome[self.batch_index]
        return outcome


class _DrainCore:
    """The strategy-agnostic half of a windowed frontier drain.

    Owns everything that makes a drain deterministic regardless of
    concurrency -- and owns it *once*, for every strategy:

    * **classification** (:meth:`next_chunk`): each popped entry is merged
      with the session base and run through the consult chain in the
      serial order -- memo (including queries still in the window, which
      will be memoized by their merge turn), in-flight-duplicate ledger
      deferral, persistent ledger, endpoint cache -- and only genuinely
      new queries become transport work;
    * **billing and bookkeeping** (:meth:`merge_head`): answers are
      recorded into the session and billed (``note_answer``) strictly in
      dispatch order, and expansion callbacks run on the driver thread
      against exactly the session state a serial run would show them.

    A strategy's only job is to attach a future to each transported entry
    of the chunks this core hands out (inline call, thread-pool task, or
    event-loop task).
    """

    def __init__(
        self,
        frontier: Frontier,
        session: "DiscoverySession",
        capacity: int,
        per_task: int,
        controller=None,
    ) -> None:
        self._frontier = frontier
        self._session = session
        self._engine = session.engine
        self._capacity = capacity
        self._per_task = per_task
        #: Optional AIMD window controller (``workers="auto"``): shrinks
        #: and grows the effective capacity between ``min_workers`` and
        #: ``max_workers`` tasks.  Only dispatch *timing* depends on it;
        #: classification and the in-order merge are untouched, so the
        #: issued query set and billed cost stay identical at any width.
        self._controller = controller
        self._waiting: deque[_Dispatched] = deque()
        self._inflight_keys: set[str] = set()  # dispatched, not yet merged
        self._outstanding = 0  # transported entries not yet merged

    @property
    def busy(self) -> bool:
        """Whether the drain still has pending or unmerged work."""
        return bool(self._frontier.pending or self._waiting)

    def _effective_capacity(self) -> int:
        """In-flight query cap right now (controller-shrunk when adaptive)."""
        if self._controller is None:
            return self._capacity
        return min(self._capacity, self._controller.size * self._per_task)

    @property
    def window_open(self) -> bool:
        """Whether another chunk may be dispatched right now."""
        if not self._frontier.pending:
            return False
        if (
            self._controller is not None
            and self._controller.holdoff_remaining() > 0.0
        ):
            # The server named a Retry-After deadline; dispatching before
            # it would only harvest more 429s.
            return False
        return self._outstanding < self._effective_capacity()

    @property
    def waiting(self) -> int:
        """Dispatched entries not yet merged."""
        return len(self._waiting)

    @property
    def stalled(self) -> bool:
        """Pending work, nothing in flight, dispatch blocked by a hold-off."""
        return (
            self._controller is not None
            and not self._waiting
            and bool(self._frontier.pending)
            and not self.window_open
        )

    def poll_pressure(self) -> None:
        """Feed throttle signals the transport accumulated since the last
        poll (429/503/timeouts, max ``Retry-After``) into the controller."""
        if self._controller is not None:
            self._controller.poll()

    def wait_ready(self) -> None:
        """Sleep out (a slice of) the controller's dispatch hold-off."""
        remaining = self._controller.holdoff_remaining()
        time.sleep(min(max(remaining, 0.001), 0.05))

    def next_chunk(self, max_pops: int | None = None) -> list[_Dispatched]:
        """Pop and classify entries until one transport task is full.

        Entries answered for free (memo, in-flight duplicate, ledger,
        endpoint cache) are queued for their merge turn directly and never
        reach the returned chunk; the chunk holds only entries that must
        be transported, already counted in the in-flight window.
        ``max_pops`` caps how many frontier entries are consumed (the
        serial strategy classifies one entry per merge round).
        """
        engine = self._engine
        session = self._session
        observer = engine.observer
        chunk: list[_Dispatched] = []
        pops = 0
        limit = min(
            self._per_task, self._effective_capacity() - self._outstanding
        )
        while self._frontier.pending and len(chunk) < limit:
            if max_pops is not None and pops >= max_pops:
                break
            entry = self._frontier.pop()
            pops += 1
            merged = session.prepare(entry.query)
            ckey = merged.canonical_key()
            if engine.dedup and (
                ckey in engine._memo or ckey in self._inflight_keys
            ):
                # Answered (or about to be) by the memo: resolve there at
                # merge time, bill nothing.
                self._waiting.append(_Dispatched(entry, memo_key=ckey))
                if observer is not None:
                    observer.classified(merged, ckey, "memo")
                continue
            if engine.ledger is not None and ckey in self._inflight_keys:
                # Dedup is off but a ledger is mounted: the in-flight
                # original will have ledgered its answer by this entry's
                # merge turn, and a serial run would have answered the
                # repeat from the ledger for free -- dispatching it would
                # double-bill an owned answer.
                self._waiting.append(_Dispatched(entry, ledger_query=merged))
                if observer is not None:
                    observer.classified(merged, ckey, "inflight")
                continue
            ledgered = engine.ledger_lookup(merged)
            if ledgered is not None:
                # Already paid for by an earlier run: free, no dispatch.
                self._waiting.append(_Dispatched(entry, result=ledgered))
                if observer is not None:
                    observer.classified(merged, ckey, "ledger")
                continue
            cached = engine.peek_cache(merged)
            if cached is not None:
                # Endpoint-cache hit: free, no dispatch.
                if engine.dedup:
                    engine._memo[ckey] = cached
                self._waiting.append(_Dispatched(entry, result=cached))
                if observer is not None:
                    observer.classified(merged, ckey, "cached")
                continue
            item = _Dispatched(entry, query=merged, key=ckey)
            chunk.append(item)
            self._waiting.append(item)
            self._inflight_keys.add(ckey)
            self._outstanding += 1
            if observer is not None:
                observer.classified(merged, ckey, "dispatched")
        if chunk:
            engine.note_dispatch(len(chunk))
            if self._controller is not None:
                engine.note_window(self._controller.size)
        return chunk

    def merge_head(self) -> None:
        """Merge the oldest dispatched entry (billing, record, callback)."""
        engine = self._engine
        head = self._waiting.popleft()
        try:
            result = head.resolve(engine)
        finally:
            if head.transported:
                self._inflight_keys.discard(head.key)
                engine.note_done()
                self._outstanding -= 1
        if head.transported:
            engine.note_answer(
                head.query, result, batched=head.batch_index is not None
            )
            if self._controller is not None:
                # Only answers that actually came back count as clean
                # completions (a failed resolve raised above).
                self._controller.record_success(head.key)
        if engine.observer is not None:
            engine.observer.merged(
                head.key or head.memo_key, transported=head.transported
            )
        self._session.record(result)
        if head.entry.on_result is not None:
            head.entry.on_result(result)

    def cancel(self) -> None:
        """Cancel unmerged transports (don't issue work the algorithm
        will never see); queued tasks die, running ones finish harmlessly
        (transports never touch session state)."""
        for item in self._waiting:
            if item.future is not None:
                item.future.cancel()


class ExecutionStrategy:
    """How a :class:`Frontier` is drained.

    Concrete strategies subclass :class:`_WindowedStrategy`, which runs
    the shared :class:`_DrainCore` and leaves only the transport hooks
    (``_open`` / ``_submit`` / ``_close``) to the subclass.
    """

    name = "abstract"
    workers = 1

    def drain(self, frontier: Frontier, session: "DiscoverySession") -> None:
        raise NotImplementedError


class _WindowedStrategy(ExecutionStrategy):
    """Shared drain loop over :class:`_DrainCore`; subclasses transport.

    The loop is identical for every strategy: keep the dispatch window
    full one chunk (= one transport task) at a time so merges stay
    responsive, then merge the oldest dispatched entry.  A ``stepwise``
    strategy (serial) classifies exactly one entry per round and merges
    it immediately, reproducing the pre-engine pop/issue/callback
    interleaving bit for bit even when free answers (memo, ledger,
    endpoint cache) mix with transported ones.
    """

    batch_size = 1
    stepwise = False
    #: Fixed-width by default; adaptive strategies (``workers="auto"``)
    #: set this and the ``[min_workers, max_workers]`` bounds in their
    #: constructors, and :attr:`workers` becomes the ceiling (the pool is
    #: sized for the widest window the controller may ever open).
    adaptive = False
    min_workers = 1
    max_workers = 1

    # -- adaptive window (shared by all windowed strategies) -----------
    def _controller(self, engine: QueryEngine):
        """The engine's AIMD controller, created on first adaptive drain."""
        if not self.adaptive:
            return None
        controller = engine._adaptive
        if controller is None:
            controller = engine._adaptive = self._make_controller(engine)
        return controller

    def _make_controller(self, engine: QueryEngine):
        return AdaptiveWindow(
            min_size=self.min_workers,
            max_size=self.max_workers,
            on_event=engine.note_window_event,
            signal_source=getattr(
                engine.interface, "take_throttle_signals", None
            ),
        )

    # -- transport hooks (subclass responsibility) ---------------------
    def _open(self, engine: QueryEngine):
        """Per-drain transport context (pool, loop, batch callable)."""
        raise NotImplementedError

    def _close(self, engine: QueryEngine, context) -> None:
        """Release the transport context acquired by :meth:`_open`."""

    def _submit(
        self,
        context,
        chunk: list[_Dispatched],
        session: "DiscoverySession",
        engine: QueryEngine,
    ) -> None:
        """Attach a future to every entry of a non-empty ``chunk``."""
        raise NotImplementedError

    def drain(self, frontier: Frontier, session: "DiscoverySession") -> None:
        engine = session.engine
        context = self._open(engine)
        per_task = (
            self.batch_size if context.batch_query is not None else 1
        )
        core = _DrainCore(
            frontier, session, capacity=self.workers * per_task,
            per_task=per_task, controller=self._controller(engine),
        )
        try:
            while core.busy:
                core.poll_pressure()
                while core.window_open:
                    chunk = core.next_chunk(
                        max_pops=1 if self.stepwise else None
                    )
                    if chunk:
                        self._submit(context, chunk, session, engine)
                    if self.stepwise:
                        break
                if core.waiting:
                    core.merge_head()
                elif core.stalled:
                    # Nothing in flight and a Retry-After hold-off bars
                    # dispatch: sleep a slice of it instead of hot-spinning.
                    core.wait_ready()
        except BaseException:
            core.cancel()
            raise
        finally:
            self._close(engine, context)


class _TransportContext:
    """Per-drain transport state handed between the strategy hooks."""

    __slots__ = ("batch_query", "endpoint", "pool", "runner", "owns")

    def __init__(
        self, batch_query=None, endpoint=None, pool=None, runner=None,
        owns=False,
    ) -> None:
        self.batch_query = batch_query
        self.endpoint = endpoint
        self.pool = pool
        self.runner = runner
        self.owns = owns


def _transport_one(session, interface, query) -> QueryResult:
    """One guarded single-query transport (any transport thread).

    Session-budget reservation happens here, immediately before the query
    is billed -- never speculatively -- so a budget that suffices for a
    serial run also suffices concurrently (the strategies issue the same
    query set).
    """
    session.reserve_budget()
    try:
        return interface.query(query)
    except BaseException:
        session.release_budget()
        raise


def _reserve_batch(session, queries: Sequence[Query]):
    """Reserve budget per item; ``(reserved count, pending budget error)``."""
    reserved = 0
    budget_error: QueryBudgetExceeded | None = None
    for _ in queries:
        try:
            session.reserve_budget()
        except QueryBudgetExceeded as exc:
            budget_error = exc
            break
        reserved += 1
    return reserved, budget_error


def _release_partial(exc: HiddenDBError, session, reserved: int) -> None:
    """Normalise ``exc.partial_results`` to the sent prefix and return the
    reservations of its ``None`` holes (exactly the unbilled items)."""
    outcomes = tuple(getattr(exc, "partial_results", ()) or ())
    outcomes = outcomes[:reserved]
    outcomes += (None,) * (reserved - len(outcomes))
    session.release_budget(sum(1 for outcome in outcomes if outcome is None))
    exc.partial_results = outcomes


def _transport_batch(session, batch_query, queries):
    """One guarded batch transport (worker thread).

    Reserves budget per item and only sends the affordable prefix; a
    shortfall (or a terminal mid-batch failure from the endpoint)
    surfaces as an exception carrying ``partial_results`` so already
    billed answers still reach their entries' merges.
    """
    reserved, budget_error = _reserve_batch(session, queries)
    allowed = queries[:reserved]
    results: tuple[QueryResult, ...] = ()
    try:
        if allowed:
            results = tuple(batch_query(allowed))
    except HiddenDBError as exc:
        _release_partial(exc, session, reserved)
        raise
    except BaseException:
        session.release_budget(reserved)
        raise
    if budget_error is not None:
        budget_error.partial_results = results
        raise budget_error
    return results


async def _transport_one_async(session, endpoint, query) -> QueryResult:
    """Async twin of :func:`_transport_one` (event-loop thread)."""
    session.reserve_budget()
    try:
        return await endpoint.aquery(query)
    except BaseException:
        session.release_budget()
        raise


async def _transport_batch_async(session, abatch_query, queries):
    """Async twin of :func:`_transport_batch` (event-loop thread)."""
    reserved, budget_error = _reserve_batch(session, queries)
    allowed = queries[:reserved]
    results: tuple[QueryResult, ...] = ()
    try:
        if allowed:
            results = tuple(await abatch_query(allowed))
    except HiddenDBError as exc:
        _release_partial(exc, session, reserved)
        raise
    except BaseException:
        session.release_budget(reserved)
        raise
    if budget_error is not None:
        budget_error.partial_results = results
        raise budget_error
    return results


class SerialStrategy(_WindowedStrategy):
    """One query at a time, in frontier order -- the parity reference.

    With dedup off this is bit-identical to the pre-engine
    implementations: same queries, same order, same costs, same traces.
    Runs the shared drain core with a window of one, transporting inline
    on the driver thread.
    """

    name = "serial"
    workers = 1
    batch_size = 1
    stepwise = True

    def _open(self, engine: QueryEngine) -> _TransportContext:
        return _TransportContext()

    def _submit(self, context, chunk, session, engine) -> None:
        for item in chunk:  # window of one: at most a single entry
            future: Future = Future()
            item.future = future
            try:
                result = _transport_one(session, engine.interface, item.query)
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)


class PipelinedStrategy(_WindowedStrategy):
    """Windowed concurrent dispatch on a thread pool of blocking calls.

    A window of frontier queries is kept in flight on a thread pool of
    ``workers`` threads; when the endpoint offers ``batch_query()`` the
    window widens to ``workers * batch_size`` queries, packed up to
    ``batch_size`` per task so each task is a single round trip (one POST
    against the networked service).  Answers are merged by the shared
    drain core strictly in dispatch order, which is what makes pipelined
    runs produce the same skyline and billable cost as serial ones (see
    the module docstring).
    """

    name = "pipelined"

    def __init__(
        self,
        workers: "int | str" = DEFAULT_WORKERS,
        batch_size: int = DEFAULT_BATCH_SIZE,
        *,
        min_workers: "int | None" = None,
        max_workers: "int | None" = None,
    ) -> None:
        adaptive, width, lo, hi = resolve_workers(
            workers, min_workers, max_workers
        )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.adaptive = adaptive
        self.workers = width
        self.min_workers = lo
        self.max_workers = hi
        self.batch_size = batch_size

    def _endpoint_for(self, engine: QueryEngine, item: _Dispatched):
        """Shard-aware drain hook: the endpoint transporting ``item``.

        The default routes every per-query transport to the session's
        single interface.  Sharded deployments
        (:class:`repro.coordinator.ShardedStrategy`) override this to
        pick a backend by the entry's canonical key, so one logical
        frontier fans out across several API keys while the drain core's
        windowing, in-order merge and billing stay untouched -- which is
        why sharding preserves cost/skyline parity for free.
        """
        return engine.interface

    def _open(self, engine: QueryEngine) -> _TransportContext:
        # Nested drains (a callback running a sub-frontier mid-merge)
        # share the outermost drain's pool instead of churning one
        # executor per recursion level.  Only transports run on the pool,
        # never drains, so reuse cannot deadlock the driver.
        owns = engine._drain_pool is None
        if owns:
            pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-engine"
            )
            engine._drain_pool = pool
        else:
            pool = engine._drain_pool
        batch_query = (
            getattr(engine.interface, "batch_query", None)
            if self.batch_size > 1
            else None
        )
        return _TransportContext(batch_query=batch_query, pool=pool, owns=owns)

    def _close(self, engine: QueryEngine, context) -> None:
        if context.owns:
            engine._drain_pool = None
            context.pool.shutdown(wait=True)

    def _submit(self, context, chunk, session, engine) -> None:
        queries = [item.query for item in chunk]
        if context.batch_query is not None and len(chunk) > 1:
            engine.note_batch()
            future = context.pool.submit(
                _transport_batch, session, context.batch_query, queries
            )
            for index, item in enumerate(chunk):
                item.future = future
                item.batch_index = index
        else:
            for item, query in zip(chunk, queries):
                item.future = context.pool.submit(
                    _transport_one, session,
                    self._endpoint_for(engine, item), query,
                )


class AsyncStrategy(_WindowedStrategy):
    """Windowed concurrent dispatch on an asyncio event loop.

    The same bounded in-flight window and dispatch-order merge as
    :class:`PipelinedStrategy`, but transports are coroutines on one
    event-loop thread instead of blocking calls on ``workers`` OS
    threads: ``workers`` here is just the window width, so very wide
    windows (hundreds of queries in flight against a remote service) cost
    no thread stand-up, no per-thread connections and no GIL-contended
    context switching.

    Endpoints that speak async natively (``aquery`` /
    ``abatch_query``, e.g.
    :class:`~repro.service.aclient.AsyncRemoteTopKInterface`) are awaited
    directly over non-blocking sockets; plain blocking endpoints are
    adapted via
    :func:`~repro.hiddendb.endpoint.as_async_endpoint` and run on the
    loop's thread executor, so ``DiscoveryConfig(strategy="async")``
    works against any endpoint.
    """

    name = "async"

    def __init__(
        self,
        workers: "int | str" = DEFAULT_WORKERS,
        batch_size: int = DEFAULT_BATCH_SIZE,
        *,
        min_workers: "int | None" = None,
        max_workers: "int | None" = None,
    ) -> None:
        adaptive, width, lo, hi = resolve_workers(
            workers, min_workers, max_workers
        )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.adaptive = adaptive
        self.workers = width
        self.min_workers = lo
        self.max_workers = hi
        self.batch_size = batch_size

    def _open(self, engine: QueryEngine) -> _TransportContext:
        endpoint = as_async_endpoint(engine.interface)
        # An async-native endpoint with its own event loop (the asyncio
        # remote client) runs transports *on that loop*: one thread hop
        # per query instead of two (strategy loop -> endpoint loop), and
        # the endpoint's pooled connections are already loop-affine.
        shared = getattr(endpoint, "aio_runner", None)
        if shared is not None:
            return _TransportContext(
                batch_query=(
                    getattr(endpoint, "abatch_query", None)
                    if self.batch_size > 1
                    else None
                ),
                endpoint=endpoint,
                runner=shared,
                owns=False,
            )
        owns = engine._async_runner is None
        if owns:
            runner = EventLoopRunner(name="repro-async")
            engine._async_runner = runner
        else:
            runner = engine._async_runner
        batch_query = (
            getattr(endpoint, "abatch_query", None)
            if self.batch_size > 1
            else None
        )
        return _TransportContext(
            batch_query=batch_query, endpoint=endpoint, runner=runner,
            owns=owns,
        )

    def _close(self, engine: QueryEngine, context) -> None:
        if context.owns:
            engine._async_runner = None
            context.runner.close()

    def _submit(self, context, chunk, session, engine) -> None:
        queries = [item.query for item in chunk]
        if context.batch_query is not None and len(chunk) > 1:
            engine.note_batch()
            future = context.runner.submit(
                _transport_batch_async(session, context.batch_query, queries)
            )
            for index, item in enumerate(chunk):
                item.future = future
                item.batch_index = index
        else:
            for item, query in zip(chunk, queries):
                item.future = context.runner.submit(
                    _transport_one_async(session, context.endpoint, query)
                )


def make_strategy(
    name: "str | ExecutionStrategy | None",
    workers: "int | str" = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    min_workers: "int | None" = None,
    max_workers: "int | None" = None,
) -> ExecutionStrategy:
    """Resolve a strategy name into an :class:`ExecutionStrategy`.

    ``None`` keeps the historical implicit switch: ``workers > 1`` means
    pipelined, otherwise serial.  Explicit names (``"serial"``,
    ``"pipelined"``, ``"async"`` -- see :data:`STRATEGY_NAMES`) pin the
    strategy regardless of the worker count, except that ``"serial"``
    with ``workers > 1`` is rejected as contradictory.  An
    :class:`ExecutionStrategy` *instance* is returned as-is (it already
    carries its own worker/batch shape) -- the seam through which custom
    strategies such as the coordinator's sharded drain reach the facade.

    ``workers="auto"`` yields an adaptive (AIMD-windowed) pipelined or
    async strategy whose in-flight window floats in
    ``[min_workers, max_workers]`` (see :mod:`repro.core.adaptive`);
    ``None`` then defaults to pipelined, and ``"serial"`` is rejected
    (its window is one by definition).
    """
    if isinstance(name, ExecutionStrategy):
        return name
    auto = workers == "auto"
    if name is None:
        if auto or workers > 1:
            return PipelinedStrategy(
                workers=workers, batch_size=batch_size,
                min_workers=min_workers, max_workers=max_workers,
            )
        return SerialStrategy()
    if name == "serial":
        if auto:
            raise ValueError(
                "strategy 'serial' is single-worker; workers='auto' needs "
                "'pipelined' / 'async'"
            )
        if workers > 1:
            raise ValueError(
                f"strategy 'serial' is single-worker; drop workers={workers} "
                f"or pick 'pipelined' / 'async'"
            )
        return SerialStrategy()
    if name == "pipelined":
        return PipelinedStrategy(
            workers=workers, batch_size=batch_size,
            min_workers=min_workers, max_workers=max_workers,
        )
    if name == "async":
        return AsyncStrategy(
            workers=workers, batch_size=batch_size,
            min_workers=min_workers, max_workers=max_workers,
        )
    raise ValueError(
        f"unknown execution strategy {name!r}; "
        f"pick one of {', '.join(STRATEGY_NAMES)}"
    )


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_WORKERS",
    "STRATEGY_NAMES",
    "AsyncStrategy",
    "EngineStats",
    "ExecutionStrategy",
    "Frontier",
    "PipelinedStrategy",
    "QueryEngine",
    "SerialStrategy",
    "make_strategy",
]
