"""RQ-DB-SKY: skyline discovery through two-ended range interfaces (§4).

RQ-DB-SKY traverses the same conceptual tree as SQ-DB-SKY in depth-first
preorder, but exploits two-ended ranges in two ways:

* the ``m`` branches under a pivot tuple ``t`` can be made **mutually
  exclusive** -- branch ``i`` carries ``A_j >= t[A_j]`` for every earlier
  branch attribute ``j < i`` in addition to ``A_i < t[A_i]``;
* before issuing a node's one-ended query ``q``, the algorithm checks
  whether any previously *seen* tuple matches ``q``.  If so it issues the
  exclusive counterpart ``R(q)`` instead; an empty ``R(q)`` proves the whole
  subtree redundant and prunes it (**early termination**).

When ``R(q)`` returns a tuple dominated by an already-known tuple, children
are generated from the dominating tuple (Algorithm 2, line 11), keeping the
branching pivot on the skyline.

Worst-case cost is ``O(m * min(|S|^(m+1), n))`` -- unlike SQ-DB-SKY it can
never do asymptotically worse than crawling.

The same traversal, parameterised by *which* attributes support two-ended
ranges, doubles as the range phase of MQ-DB-SKY: exclusion predicates are
only attached to two-ended attributes (``two_ended``), so with
``two_ended=()`` the procedure degenerates to SQ-DB-SKY's overlapping tree
(modulo the seen-tuple check, which is then disabled because ``R(q)`` is not
expressible).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.query import Query
from ..hiddendb.table import Row
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .dominance import dominates
from .registry import DiscoveryConfig, register_algorithm

ALGORITHM_NAME = "RQ-DB-SKY"


def _children(
    session: DiscoverySession,
    sq_query: Query,
    rq_query: Query,
    pivot: Row,
    branch_attributes: tuple[int, ...],
    two_ended: frozenset[int],
) -> list[tuple[Query, Query]]:
    """Generate the child nodes of a tree node under ``pivot``.

    Each child carries two forms: the one-ended ``sq`` form (used for the
    seen-tuple membership test) and the exclusive ``rq`` form (issued when a
    seen tuple already matches the ``sq`` form).
    """
    domain_sizes = session.schema.domain_sizes
    children: list[tuple[Query, Query]] = []
    for position, attribute in enumerate(branch_attributes):
        child_sq = sq_query.and_upper(attribute, pivot[attribute] - 1)
        if child_sq is None:
            continue  # branch predicate A_i < 0 is syntactically empty
        child_rq = rq_query.and_upper(attribute, pivot[attribute] - 1)
        for earlier in branch_attributes[:position]:
            if child_rq is None:
                break
            if earlier in two_ended and pivot[earlier] > 0:
                child_rq = child_rq.and_lower(
                    earlier, pivot[earlier], domain_sizes[earlier]
                )
        if child_rq is None:
            # The exclusive region is empty: everything under this branch was
            # already covered by earlier siblings, so the subtree is redundant.
            continue
        children.append((child_sq, child_rq))
    return children


def rq_db_sky(
    session: DiscoverySession,
    branch_attributes: Sequence[int] | None = None,
    two_ended: Sequence[int] | None = None,
    early_termination: bool = True,
    root: Query | None = None,
) -> None:
    """Run RQ-DB-SKY (Algorithm 2 of the paper) inside ``session``.

    Parameters
    ----------
    session:
        Discovery session wrapping the top-k interface.
    branch_attributes:
        Ranking-attribute indices the tree branches on (default: all).
    two_ended:
        Subset of ``branch_attributes`` supporting two-ended ranges; only
        these receive exclusion (``>=``) predicates.  Defaults to all branch
        attributes (the pure RQ-DB case).
    early_termination:
        The seen-tuple check of Algorithm 2 (line 3).  Disabling it is the
        ablation of DESIGN.md -- the traversal then issues every one-ended
        query like SQ-DB-SKY would.
    root:
        Query at the tree root; defaults to ``SELECT *``.
    """
    schema = session.schema
    if branch_attributes is None:
        branch_attributes = tuple(range(schema.m))
    branch_attributes = tuple(branch_attributes)
    if two_ended is None:
        two_ended_set = frozenset(branch_attributes)
    else:
        two_ended_set = frozenset(two_ended)
        if not two_ended_set <= set(branch_attributes):
            raise ValueError("two_ended must be a subset of branch_attributes")
    base = root if root is not None else Query.select_all()
    # Depth-first preorder via an explicit stack; children are pushed in
    # reverse so branch 1 is explored first, matching the paper's traversal.
    #
    # Unlike SQ-DB-SKY's overlapping tree, this traversal is inherently
    # sequential: which form a node issues (q or its exclusive counterpart
    # R(q)) and which tuple it branches on depend on *all* tuples retrieved
    # so far, so no two node queries are independent.  The frontier
    # therefore degenerates to synchronous :meth:`Frontier.fetch` calls --
    # the engine's memo, stats and budget still apply (which is what makes
    # the skyband extension's repeated subspace trees dedupe), but a
    # pipelined strategy gains no concurrency here by design.
    frontier = session.frontier()
    stack: list[tuple[Query, Query]] = [(base, base)]
    while stack:
        sq_query, rq_query = stack.pop()
        seen_match = early_termination and any(
            sq_query.matches_row(row) for row in session.retrieved_rows
        )
        if not seen_match:
            # No retrieved tuple matches q: issue the one-ended query itself.
            # Its region is downward-closed, so the top tuple is on the
            # skyline and is a safe branching pivot.
            result = frontier.fetch(sq_query)
            if result.is_empty or not result.overflow:
                continue
            pivot = result.top
        else:
            # q provably returns nothing new at the top; issue R(q) instead.
            result = frontier.fetch(rq_query)
            if result.is_empty:
                continue  # early termination: the whole subtree is redundant
            if not result.overflow:
                # R(q) underflowed: every tuple in the uncovered part of q's
                # region has been retrieved; subtree exhausted.
                continue
            top = result.top
            pivot = top
            # The top of R(q) may be dominated (its region is not
            # downward-closed); branch on a dominating known tuple instead.
            # The dominator must itself match q: when the tree is rooted at a
            # subspace (skyband recursion), a dominating tuple from outside
            # the subspace must not prune subspace-skyline tuples.
            for row in session.retrieved_rows:
                if (
                    row.rid != top.rid
                    and sq_query.matches_row(row)
                    and dominates(row.values, top.values)
                ):
                    pivot = row
                    break
        for child in reversed(
            _children(
                session, sq_query, rq_query, pivot, branch_attributes,
                two_ended_set,
            )
        ):
            stack.append(child)


@register_algorithm(
    "rq",
    display_name=ALGORITHM_NAME,
    kinds=(InterfaceKind.SQ, InterfaceKind.RQ),
    capabilities=("anytime", "complete"),
    summary="Mutually exclusive range tree with early termination (§4)",
    # Preferred for any schema of range predicates with at least one
    # two-ended attribute (legacy discover() parity).
    dispatch=lambda schema: not schema.indices_of_kind(InterfaceKind.PQ)
    and bool(schema.indices_of_kind(InterfaceKind.RQ)),
    priority=40,
)
def _run_rq(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """RQ-DB-SKY under the facade.

    Two-ended exclusion predicates go to the RQ attributes only, and the
    tree branches two-ended attributes first (§6.3) -- on a pure-RQ schema
    both default to the schema order, matching the legacy entry points.
    Options: ``branch_attributes``, ``two_ended``, ``early_termination``.
    """
    schema = session.schema
    sq_attrs = schema.indices_of_kind(InterfaceKind.SQ)
    rq_attrs = schema.indices_of_kind(InterfaceKind.RQ)
    branch = config.option("branch_attributes")
    if branch is None:
        branch = tuple(rq_attrs) + tuple(sq_attrs)
    two_ended = config.option("two_ended")
    if two_ended is None:
        two_ended = rq_attrs
    rq_db_sky(
        session,
        branch_attributes=branch,
        two_ended=two_ended,
        early_termination=config.option("early_termination", True),
    )


def discover_rq(
    interface: SearchEndpoint,
    branch_attributes: Sequence[int] | None = None,
    two_ended: Sequence[int] | None = None,
    early_termination: bool = True,
    base_query: Query | None = None,
) -> DiscoveryResult:
    """Discover the skyline of ``interface`` with RQ-DB-SKY.

    .. deprecated:: 2.0
        Use ``Discoverer().run(interface, "rq")`` instead.
    """
    warnings.warn(
        "discover_rq() is deprecated; use repro.Discoverer().run(interface, "
        '"rq") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return run_with_budget_guard(
        interface,
        ALGORITHM_NAME,
        lambda session: rq_db_sky(
            session, branch_attributes, two_ended, early_termination
        ),
        base_query,
    )
