"""AIMD in-flight window control for the drain strategies.

The paper's cost model counts *queries*; wall-clock against a real
rate-limited hidden database is governed by how hard the client dares to
push.  A fixed ``workers``-wide window is simultaneously too timid
against a fast mirror and a 429 storm against a throttled one.  This
module provides the classic congestion-control answer — additive
increase, multiplicative decrease (AIMD) — as a small controller the
windowed strategies consult at dispatch time:

* until the first congestion event the window is in *slow start*,
  growing by ``increase`` per clean completion (doubling per window's
  worth of completions, like TCP) so a crawl against an unthrottled
  server reaches the ceiling quickly;
* after the first back-off every *clean* completion grows the window by
  ``increase / window`` (so a full window of clean completions grows it
  by ~1, AIMD's increase-per-RTT);
* a pressure signal (HTTP 429/503 or a transport timeout, surfaced by
  :meth:`repro.service.client.QueryClientCore.take_throttle_signals`)
  multiplies the window by ``decrease`` — at most once per congestion
  epoch: a burst of N simultaneous 429s out of one window collapses the
  window once, not N times.  The default back-off (x0.75) is gentler
  than TCP Reno's halving (cf. CUBIC's 0.7): crawl windows are tens
  wide, not thousands, so halving overshoots and leaves sustainable
  capacity idle for the whole additive climb back;
* after a back-off the window remembers the width the congestion hit at
  (the *knee*) and climbs back only to just below it, holding there for
  ``hold_completions`` clean completions before probing past it again.
  TCP can afford to probe every RTT because an ACK'd stream has no
  head-of-line blocking; this engine's strict dispatch-order merge means
  every overshoot parks the merge queue behind one throttled request's
  retry sleep, so probing must be rare;
* an honest ``Retry-After`` from the server holds dispatch off entirely
  until the deadline passes.

The controller only ever changes *when* queries are dispatched, never
*which* queries are issued or how their answers merge — the drain core's
classification chain and dispatch-order merge guarantee identical
skyline and billed cost at any window width, so adaptivity is purely a
wall-clock optimisation.

Determinism note: the controller consults a monotonic clock for the
``Retry-After`` hold-off only; unit tests inject a fake ``clock``.
"""

from __future__ import annotations

import time
from typing import Callable

#: Window bounds used by ``workers="auto"`` when the caller does not
#: supply ``min_workers`` / ``max_workers``.
DEFAULT_MIN_WORKERS = 1
DEFAULT_MAX_WORKERS = 32

#: Event kinds reported through ``on_event`` (and counted by the
#: ``engine_window_events_total{kind}`` metric in :mod:`repro.obs`):
#: ``increase`` — the integer window width grew; ``decrease`` — a
#: multiplicative back-off; ``floor`` — a back-off clamped at
#: ``min_size``; ``ceiling`` — the window reached ``max_size``.
WINDOW_EVENTS = ("increase", "decrease", "floor", "ceiling")


def resolve_workers(
    workers: "int | str",
    min_workers: "int | None" = None,
    max_workers: "int | None" = None,
) -> "tuple[bool, int, int, int]":
    """Normalise a ``workers`` spec into ``(adaptive, width, lo, hi)``.

    ``workers`` is either a positive int (fixed window; ``width`` is that
    int and ``lo == hi == width``) or the literal ``"auto"`` (adaptive;
    ``width`` is the ceiling ``hi``, the pool is sized for the widest
    window the controller may ever open).  ``min_workers``/``max_workers``
    are only meaningful with ``"auto"``.
    """
    if workers == "auto":
        lo = DEFAULT_MIN_WORKERS if min_workers is None else int(min_workers)
        hi = DEFAULT_MAX_WORKERS if max_workers is None else int(max_workers)
        if lo < 1:
            raise ValueError(f"min_workers must be >= 1, got {lo}")
        if hi < lo:
            raise ValueError(
                f"max_workers must be >= min_workers, got {hi} < {lo}"
            )
        return True, hi, lo, hi
    if isinstance(workers, str):
        raise ValueError(
            f"workers must be a positive int or 'auto', got {workers!r}"
        )
    if min_workers is not None or max_workers is not None:
        raise ValueError("min_workers/max_workers require workers='auto'")
    width = int(workers)
    if width < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return False, width, width, width


class AdaptiveWindow:
    """An AIMD-controlled in-flight window in ``[min_size, max_size]``.

    Parameters
    ----------
    min_size / max_size:
        Inclusive bounds of the window width (in workers).
    initial:
        Starting width; defaults to ``min_size`` (slow-start from the
        bottom, like TCP).
    increase / decrease:
        Additive increment per full clean window (per *completion* while
        in slow start) and multiplicative back-off factor (defaults +1,
        x0.75 — see the module docstring on the gentle back-off).
    clock:
        Monotonic clock consulted for ``Retry-After`` hold-offs only
        (injectable for deterministic tests).
    on_event:
        Optional ``(kind, size)`` callback fired on every transition;
        kinds are listed in :data:`WINDOW_EVENTS`.
    signal_source:
        Optional zero-argument callable returning ``(count,
        max_retry_after)`` — the transport's accumulated throttle
        signals since the last call (see
        ``QueryClientCore.take_throttle_signals``).  Drained by
        :meth:`poll`.
    hold_completions:
        Clean completions to hold just below the congestion knee after a
        back-off before probing past it again (see the module docstring
        on why probing is expensive here).
    """

    def __init__(
        self,
        *,
        min_size: int = DEFAULT_MIN_WORKERS,
        max_size: int = DEFAULT_MAX_WORKERS,
        initial: "int | None" = None,
        increase: float = 1.0,
        decrease: float = 0.75,
        clock: Callable[[], float] = time.monotonic,
        on_event: "Callable[[str, int], None] | None" = None,
        signal_source: "Callable[[], tuple[int, float]] | None" = None,
        hold_completions: int = 256,
    ) -> None:
        min_size = int(min_size)
        max_size = int(max_size)
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        if max_size < min_size:
            raise ValueError(
                f"max_size must be >= min_size, got {max_size} < {min_size}"
            )
        if not increase > 0.0:
            raise ValueError(f"increase must be > 0, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        self._min = min_size
        self._max = max_size
        self._increase = float(increase)
        self._decrease = float(decrease)
        self._clock = clock
        self._on_event = on_event
        self._signal_source = signal_source
        start = min_size if initial is None else int(initial)
        self._window = float(min(max(start, min_size), max_size))
        self._resume_at = 0.0
        #: A success since the last decrease: only then may the next
        #: pressure signal shrink the window (one back-off per epoch).
        self._clean = True
        #: Exponential growth until the first congestion event (TCP slow
        #: start); additive increase afterwards.
        self._slow_start = True
        #: Width the last congestion hit at, and how many clean
        #: completions remain before growth may probe past it again.
        self._knee: "float | None" = None
        self._hold_completions = max(0, int(hold_completions))
        self._hold = 0
        self._at_ceiling = self._window >= self._max
        self._increases = 0
        self._decreases = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current integer window width (always within the bounds)."""
        return int(self._window)

    @property
    def min_size(self) -> int:
        return self._min

    @property
    def max_size(self) -> int:
        return self._max

    @property
    def increases(self) -> int:
        """Integer width growths so far."""
        return self._increases

    @property
    def decreases(self) -> int:
        """Multiplicative back-offs so far (including floor-clamped ones)."""
        return self._decreases

    def holdoff_remaining(self, now: "float | None" = None) -> float:
        """Seconds until a server-mandated ``Retry-After`` deadline passes."""
        if now is None:
            now = self._clock()
        return max(0.0, self._resume_at - now)

    def dispatch_allowed(self, now: "float | None" = None) -> bool:
        """Whether new dispatches are permitted right now."""
        return self.holdoff_remaining(now) == 0.0

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------
    def record_success(self, key: "str | None" = None) -> None:
        """A dispatched query completed cleanly (additive increase)."""
        self._clean = True
        before = self.size
        gain = (
            self._increase
            if self._slow_start
            else self._increase / max(self._window, 1.0)
        )
        limit = float(self._max)
        if self._hold > 0 and self._knee is not None:
            # Held below the knee: grow up to it but never past (and
            # never shrink — a back-off may have landed above the cap).
            self._hold -= 1
            limit = min(limit, max(self._window, self._knee - 1.0))
        self._window = min(limit, self._window + gain)
        if self.size > before:
            self._increases += 1
            self._emit("increase")
        if self._window >= self._max and not self._at_ceiling:
            self._at_ceiling = True
            self._emit("ceiling")

    def record_pressure(self, retry_after: "float | None" = None) -> bool:
        """A throttle signal arrived (multiplicative decrease).

        ``retry_after`` (seconds, from the server's honest header) arms
        the dispatch hold-off.  Returns whether the window actually
        shrank — repeated pressure within one congestion epoch (no
        success in between) refreshes the hold-off but does not shrink
        the window again.
        """
        if retry_after is not None and retry_after > 0.0:
            deadline = self._clock() + float(retry_after)
            if deadline > self._resume_at:
                self._resume_at = deadline
        if not self._clean:
            return False
        self._clean = False
        self._slow_start = False
        self._at_ceiling = False
        self._knee = self._window
        self._hold = self._hold_completions
        floored = self._window * self._decrease < float(self._min)
        self._window = max(float(self._min), self._window * self._decrease)
        self._decreases += 1
        self._emit("floor" if floored else "decrease")
        return True

    def poll(self) -> None:
        """Drain the transport's accumulated throttle signals, if wired."""
        if self._signal_source is None:
            return
        count, retry_after = self._signal_source()
        if count:
            self.record_pressure(retry_after if retry_after > 0.0 else None)

    # ------------------------------------------------------------------
    def _emit(self, kind: str) -> None:
        if self._on_event is not None:
            self._on_event(kind, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdaptiveWindow(size={self.size}, bounds=[{self._min}, "
            f"{self._max}], decreases={self._decreases})"
        )


__all__ = [
    "AdaptiveWindow",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_MIN_WORKERS",
    "WINDOW_EVENTS",
    "resolve_workers",
]
