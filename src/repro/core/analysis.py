"""Closed-form query-cost analysis from Section 3.2 and Section 5 of the paper.

Implements, for SQ-DB-SKY:

* the average-case recurrence, Eq. (4):
  ``E(C_s) = 1 + (m / s) * sum_{i=0}^{s-1} E(C_i)`` with ``E(C_0) = 1``;
* the closed form, Eq. (5):
  ``E(C_s) = m ((m+s-1)! - (m-1)! s!) / ((m-1) (m-1)! s!)``.

A note on fidelity: Eq. (5) is *not* the exact solution of Eq. (4) -- for
``m = 2`` the recurrence yields ``2s + 1`` while the paper states ``2s``.
Exact expansion shows the recurrence solves to ``closed_form + 1``
(verified symbolically by :func:`expected_cost_recurrence` vs
:func:`expected_cost_closed_form` in the test suite); the paper evidently
dropped the additive constant.  Both are provided.

Also implements the bounding chain of Eqs. (6)-(10)
(``E(C_s) <= C(s+m, m) <= (e + e s / m)^m``), the worst-case orders for SQ
and RQ, and the exact PQ-2D cost formula, Eq. (11).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence


def expected_cost_recurrence(m: int, s: int) -> Fraction:
    """Exact average-case SQ-DB-SKY cost from the recurrence, Eq. (4).

    ``m`` is the number of attributes, ``s`` the skyline size.  Exact
    rational arithmetic so the closed form can be checked symbolically.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if s < 0:
        raise ValueError(f"s must be >= 0, got {s}")
    costs = [Fraction(1)]
    running_sum = Fraction(1)
    for size in range(1, s + 1):
        cost = 1 + Fraction(m, size) * running_sum
        costs.append(cost)
        running_sum += cost
    return costs[s]


def expected_cost_closed_form(m: int, s: int) -> Fraction:
    """Average-case SQ-DB-SKY cost, the paper's closed form Eq. (5).

    Equals :func:`expected_cost_recurrence` minus 1 for every ``m >= 2``
    (see module docstring).  For ``m = 1`` the paper's formula divides by
    zero, so this function falls back to the exact recurrence minus 1 to
    keep the off-by-one convention uniform.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if s < 0:
        raise ValueError(f"s must be >= 0, got {s}")
    if s == 0:
        return Fraction(0)
    if m == 1:
        return expected_cost_recurrence(1, s) - 1
    numerator = math.factorial(m + s - 1) - math.factorial(m - 1) * math.factorial(s)
    denominator = (m - 1) * math.factorial(m - 1) * math.factorial(s)
    return Fraction(m) * Fraction(numerator, denominator)


def binomial_cost_bound(m: int, s: int) -> int:
    """The ``F_s = C(s + m, m)`` bound of Eq. (9) on the average cost."""
    if m < 1 or s < 0:
        raise ValueError("require m >= 1 and s >= 0")
    return math.comb(s + m, m)


def average_case_bound(m: int, s: int) -> float:
    """The paper's headline bound ``(e + e s / m)^m`` of Eq. (10)."""
    if m < 1 or s < 0:
        raise ValueError("require m >= 1 and s >= 0")
    return (math.e + math.e * s / m) ** m


def sq_worst_case_bound(m: int, s: int) -> int:
    """Worst-case SQ-DB-SKY cost order, ``m * s^(m+1)`` (§3.2)."""
    if m < 1 or s < 0:
        raise ValueError("require m >= 1 and s >= 0")
    return m * s ** (m + 1)


def rq_worst_case_bound(m: int, s: int, n: int) -> int:
    """Worst-case RQ-DB-SKY cost order, ``m * min(s^(m+1), n)`` (§4.2)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return m * min(s ** (m + 1), n)


def sq_lower_bound_order(m: int, s: int) -> int:
    """The ``C(s, m)`` lower bound on SQ skyline discovery (Theorem 1)."""
    if m < 1 or s < 0:
        raise ValueError("require m >= 1 and s >= 0")
    return math.comb(s, m)


def pq_2d_cost(
    skyline: Sequence[tuple[int, int]], dom_x: int, dom_y: int
) -> int:
    """Exact PQ-2D-SKY cost over a fully known 2-D skyline, Eq. (11).

    ``skyline`` lists the skyline points as ``(x, y)`` preference pairs;
    ``dom_x`` / ``dom_y`` are the two domain sizes.  The formula extends the
    skyline with the two domain corners ``(0, max(Dom(A2)))`` and
    ``(max(Dom(A1)), 0)`` and charges each adjacent gap the smaller of its
    width and height.  The initial ``SELECT *`` is not included.
    """
    if dom_x < 1 or dom_y < 1:
        raise ValueError("domains must be non-empty")
    points = sorted(skyline)
    for (x, y), (nx, ny) in zip(points, points[1:]):
        if not (x < nx and y > ny):
            raise ValueError(
                f"{(x, y)} and {(nx, ny)} are not both skyline points"
            )
    extended = [(0, dom_y - 1), *points, (dom_x - 1, 0)]
    cost = 0
    for (x, y), (nx, ny) in zip(extended, extended[1:]):
        cost += min(nx - x, y - ny)
    return cost


def pq_db_cost_bound(domain_sizes: Sequence[int]) -> int:
    """Order-of-magnitude PQ-DB-SKY bound (§5.3): the two largest domains
    contribute additively, every other domain multiplicatively."""
    if len(domain_sizes) < 2:
        raise ValueError("need at least 2 attributes")
    ordered = sorted(domain_sizes, reverse=True)
    additive = ordered[0] + ordered[1]
    multiplicative = math.prod(ordered[2:]) if len(ordered) > 2 else 1
    return additive * multiplicative
