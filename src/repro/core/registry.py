"""Algorithm registry and run configuration for the discovery facade.

Every discovery algorithm in :mod:`repro.core` self-registers here through
the :func:`register_algorithm` decorator, declaring its name, the interface
taxonomy it supports (which :class:`~repro.hiddendb.attributes.InterfaceKind`
mix it can query through) and its capabilities (``anytime``, ``skyband``,
``complete``, ...).  The :class:`~repro.core.facade.Discoverer` facade is a
thin consumer of this registry: it resolves a name (or auto-dispatches on
the schema taxonomy), builds a session from a :class:`DiscoveryConfig` and
runs the registered entry point.

The registry is the extension seam for new algorithms and backends: a new
module only has to decorate its runner --

    @register_algorithm(
        "my-algo",
        display_name="MY-DB-SKY",
        kinds=(InterfaceKind.RQ,),
        capabilities=("anytime",),
    )
    def _run(session: DiscoverySession, config: DiscoveryConfig) -> None:
        ...

-- and it becomes available to ``Discoverer.run``, ``Discoverer.run_all``,
the CLI ``--algorithm`` flag and the ``repro algorithms`` listing without
touching any dispatch code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace as _dc_replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from ..hiddendb.attributes import InterfaceKind, Schema
from .engine import DEFAULT_BATCH_SIZE, STRATEGY_NAMES, ExecutionStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..hiddendb.endpoint import SearchEndpoint
    from ..hiddendb.interface import QueryResult
    from ..hiddendb.query import Query
    from ..store import CrawlStore
    from .base import DiscoverySession, TraceEntry
    from .skyband import SkybandResult


class AlgorithmNotFoundError(KeyError):
    """Raised when a registry lookup names no registered algorithm."""

    def __init__(self, name: str, available: Iterable[str]) -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"no algorithm registered under {name!r}; "
            f"available: {', '.join(self.available) or '(none)'}"
        )


class DuplicateAlgorithmError(ValueError):
    """Raised when two algorithms try to register under the same name."""


@dataclass(frozen=True)
class DiscoveryConfig:
    """Frozen run configuration shared by every facade entry point.

    Parameters
    ----------
    budget:
        Per-run query allowance.  Enforced at the session level (on top of
        any budget the interface itself carries), so one facade can impose
        the same quota on runs against different interfaces.  Exhaustion
        yields a partial ``complete=False`` result -- the anytime behaviour
        of §7.1 -- rather than an exception.
    band:
        K-skyband depth used by :meth:`Discoverer.skyband` (``1`` = plain
        skyline).
    base_query:
        Predicates conjoined to every issued query: the paper's "skyline
        subject to filtering conditions" extension (§2.1).
    on_query:
        Progress hook invoked after every issued query with the
        :class:`~repro.hiddendb.interface.QueryResult`.
    on_tuple:
        Progress hook invoked whenever a *new* distinct tuple is retrieved,
        with the :class:`~repro.core.base.TraceEntry` (first-retrieval cost
        plus row).  Feeding these entries into a list reproduces the anytime
        discovery curve live, while the run is still going.
    record_log:
        Attach the full query/answer log to the returned result
        (``result.query_log``), for :func:`repro.core.stats.summarize_log`.
    strategy:
        Execution-strategy name: ``"serial"``, ``"pipelined"`` or
        ``"async"`` (see :data:`~repro.core.engine.STRATEGY_NAMES`).
        ``None`` (the default) keeps the historical implicit switch --
        ``workers > 1`` means pipelined, otherwise serial.  An
        :class:`~repro.core.engine.ExecutionStrategy` *instance* is also
        accepted and used as-is (it carries its own worker/batch shape;
        ``workers`` / ``batch_size`` below are ignored then) -- the seam
        custom drains such as the coordinator's sharded strategy plug
        into.  All strategies run the same shared drain core, so the
        skyline and billed cost are identical; only wall time differs.
    workers:
        Execution-engine concurrency: the dispatch-window width.  With
        the (default) implicit strategy, ``1`` drains frontiers with the
        bit-identical :class:`~repro.core.engine.SerialStrategy` and
        ``> 1`` switches to the
        :class:`~repro.core.engine.PipelinedStrategy`, which keeps up to
        this many dispatch tasks in flight while merging answers in
        deterministic order (same skyline, same billable cost).  Under
        ``strategy="async"`` a worker is just an in-flight slot on the
        event loop, not an OS thread, so wide windows are cheap.  The
        literal ``"auto"`` makes the window *adaptive*: an AIMD
        controller (:mod:`repro.core.adaptive`) grows it on clean
        completions and shrinks it on 429/503/timeout pressure within
        ``[min_workers, max_workers]``, honoring the server's
        ``Retry-After``.  Adaptivity changes wall-clock only -- the
        skyline and billed cost are identical at any window width.
    min_workers / max_workers:
        Bounds of the adaptive window; only meaningful with
        ``workers="auto"`` (defaults 1 and 32).
    batch_size:
        Queries packed per round trip when the endpoint supports
        ``batch_query()`` (the networked service does); only meaningful
        with ``workers > 1``.
    dedup:
        Run-scoped query memoization: an identical query is never billed
        twice within one run (hits show up as ``result.stats.deduped``).
        ``None`` (the default) keeps each entry point's own default --
        *off* for plain discovery runs (historical query counts), *on* for
        the skyband runners (their overlapping subspace trees repeat many
        queries).
    store:
        Optional :class:`~repro.store.CrawlStore` making the run durable:
        every billed answer is persisted in the store's query ledger
        (shared across runs and processes; ledgered answers are free, like
        dedup hits), the session checkpoints its progress every
        ``checkpoint_every`` answers, and the finished result is filed in
        the store's crawl catalog.
    resume:
        Pick up the most recent unfinished crawl session of this
        endpoint + algorithm from ``store`` instead of starting fresh: the
        run replays the already-paid-for query prefix from the ledger and
        carries the crashed incarnation's billed count forward into
        ``result.total_cost``.  Requires ``store``.
    session_id:
        Pin the crawl session identity instead of letting the store pick:
        an existing session of this id is resumed (checkpoint, billed
        count and replay nonce carried forward), a missing one is created
        under exactly this id.  The multi-tenant seam -- the coordinator
        assigns each job its own session id so concurrent tenants running
        the same algorithm against the same endpoint never collide.
        Requires ``store``.
    checkpoint_every:
        Recorded answers between session checkpoints (progress snapshots
        in the store; the exact billed counter is updated transactionally
        with every ledger write regardless).
    trace:
        Attach the observability plane (:mod:`repro.obs`) to the run.
        A path or writable file-like receives one JSONL span per query
        lifecycle event (classification, transport, billing, merge --
        see :class:`repro.obs.TraceWriter` for the schema) and metrics
        are collected into a fresh per-run registry; passing a
        prepared :class:`repro.obs.RunObserver` uses it as-is (its
        registry/writer are then caller-owned).  ``None`` (the default)
        leaves every instrumentation hook a no-op, and a traced run
        reproduces the untraced skyline and billed cost bit-identically
        -- the hooks only emit events, they never branch the algorithm.
    options:
        Algorithm-specific knobs forwarded to the registered runner
        (e.g. ``early_termination`` for RQ-DB-SKY, ``plane_attributes`` /
        ``plane_limit`` for PQ-DB-SKY).  Treat as read-only.
    mode:
        ``"full"`` (default) crawls from scratch.  ``"delta"`` runs the
        :mod:`repro.freshness` repair crawl instead: it revalidates the
        ledger of a *previous* crawl against the endpoint's current data
        version (probing the old skyline first, then re-expanding only
        where answers changed) and reproduces the from-scratch skyline
        for a fraction of the billed cost.  Requires ``store`` (the
        ledger is what gets repaired) and is incompatible with
        ``resume`` (a delta run is always a fresh session: reusing an
        old replay nonce could serve answers billed against the old
        data version).
    """

    budget: int | None = None
    band: int = 1
    base_query: "Query | None" = None
    on_query: "Callable[[QueryResult], None] | None" = None
    on_tuple: "Callable[[TraceEntry], None] | None" = None
    record_log: bool = False
    strategy: "str | ExecutionStrategy | None" = None
    workers: "int | str" = 1
    batch_size: int = DEFAULT_BATCH_SIZE
    dedup: bool | None = None
    store: "CrawlStore | None" = None
    resume: bool = False
    session_id: str | None = None
    checkpoint_every: int = 32
    trace: Any = None
    options: Mapping[str, Any] = field(default_factory=dict)
    mode: str = "full"
    min_workers: int | None = None
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.band < 1:
            raise ValueError(f"band must be >= 1, got {self.band}")
        auto = self.workers == "auto"
        if isinstance(self.workers, str):
            if not auto:
                raise ValueError(
                    f"workers must be a positive int or 'auto', "
                    f"got {self.workers!r}"
                )
        elif self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not auto and (
            self.min_workers is not None or self.max_workers is not None
        ):
            raise ValueError(
                "min_workers/max_workers require workers='auto'"
            )
        if self.min_workers is not None and self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.max_workers is not None:
            floor = self.min_workers if self.min_workers is not None else 1
            if self.max_workers < floor:
                raise ValueError(
                    f"max_workers must be >= min_workers, "
                    f"got {self.max_workers} < {floor}"
                )
        if (
            self.strategy is not None
            and not isinstance(self.strategy, ExecutionStrategy)
            and self.strategy not in STRATEGY_NAMES
        ):
            raise ValueError(
                f"unknown execution strategy {self.strategy!r}; "
                f"pick one of {', '.join(STRATEGY_NAMES)} or pass an "
                f"ExecutionStrategy instance"
            )
        if self.strategy == "serial" and auto:
            raise ValueError(
                "strategy 'serial' is single-worker; workers='auto' needs "
                "'pipelined' / 'async'"
            )
        if self.strategy == "serial" and not auto and self.workers > 1:
            raise ValueError(
                f"strategy 'serial' is single-worker; drop "
                f"workers={self.workers} or pick 'pipelined' / 'async'"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.store is None:
            raise ValueError("resume=True requires a store")
        if self.session_id is not None and self.store is None:
            raise ValueError("session_id requires a store")
        if self.mode not in ("full", "delta"):
            raise ValueError(
                f"unknown mode {self.mode!r}; pick 'full' or 'delta'"
            )
        if self.mode == "delta":
            if self.store is None:
                raise ValueError(
                    "mode='delta' requires a store (the ledger of a "
                    "previous crawl is what gets repaired)"
                )
            if self.resume:
                raise ValueError(
                    "mode='delta' is incompatible with resume=True: a "
                    "delta run always begins a fresh session so its "
                    "replay nonce cannot surface answers billed against "
                    "the old data version"
                )
        if self.trace is not None and not (
            isinstance(self.trace, (str, os.PathLike))
            or hasattr(self.trace, "write")  # open file-like
            or hasattr(self.trace, "emit")  # repro.obs.TraceWriter
            or hasattr(self.trace, "trace_id")  # repro.obs.RunObserver
        ):
            raise ValueError(
                f"trace must be a path, writable file-like, TraceWriter "
                f"or RunObserver, got {type(self.trace).__name__}"
            )

    def replace(self, **changes: Any) -> "DiscoveryConfig":
        """A copy of this config with ``changes`` applied."""
        return _dc_replace(self, **changes)

    def with_options(self, **options: Any) -> "DiscoveryConfig":
        """A copy with ``options`` merged into the algorithm options."""
        merged = dict(self.options)
        merged.update(options)
        return _dc_replace(self, options=merged)

    def option(self, key: str, default: Any = None) -> Any:
        """Look up one algorithm-specific option."""
        return self.options.get(key, default)


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry metadata attached to results (no callables, JSON-friendly)."""

    name: str
    display_name: str
    taxonomy: tuple[str, ...]
    capabilities: tuple[str, ...]

    def __repr__(self) -> str:
        return (
            f"AlgorithmInfo({self.name}: {self.display_name}, "
            f"taxonomy={'+'.join(self.taxonomy)}, "
            f"capabilities={','.join(self.capabilities) or '-'})"
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered discovery algorithm.

    ``run`` is the uniform entry point every algorithm adapts to:
    ``run(session, config)`` issues queries through the session and returns
    nothing; the facade packages the session into a result.  ``skyband`` is
    an optional second entry point (attached via :func:`attach_skyband`)
    implementing the K-skyband extension of §7.2.
    """

    name: str
    display_name: str
    run: "Callable[[DiscoverySession, DiscoveryConfig], None]"
    kinds: frozenset[InterfaceKind]
    capabilities: frozenset[str] = frozenset()
    summary: str = ""
    #: Extra structural requirement beyond the kind check (e.g. ``m == 2``).
    requires: Callable[[Schema], bool] | None = None
    #: Auto-dispatch preference: among applicable specs the resolver picks
    #: the highest-priority one whose ``dispatch`` predicate accepts the
    #: schema.  ``None`` means the spec is only ever selected by name.
    dispatch: Callable[[Schema], bool] | None = None
    priority: int = 0
    #: Schema-dependent display name (PQ-DB-SKY reports PQ-2D-SKY on m=2).
    display_for: Callable[[Schema], str] | None = None
    skyband: "Callable[[SearchEndpoint, int, DiscoveryConfig], SkybandResult] | None" = None
    skyband_requires: Callable[[Schema], bool] | None = None

    def supports(self, schema: Schema) -> bool:
        """Whether this algorithm can run against ``schema``'s taxonomy."""
        if not all(
            attribute.kind in self.kinds
            for attribute in schema.ranking_attributes
        ):
            return False
        return self.requires is None or self.requires(schema)

    def supports_skyband(self, schema: Schema) -> bool:
        """Whether the attached skyband extension can run against ``schema``."""
        if self.skyband is None:
            return False
        if self.skyband_requires is not None:
            return self.skyband_requires(schema)
        return self.supports(schema)

    def prefers(self, schema: Schema) -> bool:
        """Whether auto-dispatch should consider this spec for ``schema``."""
        return self.dispatch is not None and self.dispatch(schema)

    def display(self, schema: Schema | None = None) -> str:
        """Reported algorithm name, possibly specialised to ``schema``."""
        if schema is not None and self.display_for is not None:
            return self.display_for(schema)
        return self.display_name

    @property
    def taxonomy(self) -> tuple[str, ...]:
        """Supported ranking-attribute kinds, stable order (SQ, RQ, PQ)."""
        order = (InterfaceKind.SQ, InterfaceKind.RQ, InterfaceKind.PQ)
        return tuple(kind.name for kind in order if kind in self.kinds)

    def info(self) -> AlgorithmInfo:
        """The callable-free metadata view attached to results."""
        return AlgorithmInfo(
            name=self.name,
            display_name=self.display_name,
            taxonomy=self.taxonomy,
            capabilities=tuple(sorted(self.capabilities)),
        )


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    *,
    display_name: str,
    kinds: Iterable[InterfaceKind],
    capabilities: Iterable[str] = (),
    summary: str = "",
    requires: Callable[[Schema], bool] | None = None,
    dispatch: Callable[[Schema], bool] | None = None,
    priority: int = 0,
    display_for: Callable[[Schema], str] | None = None,
) -> Callable[[Callable], Callable]:
    """Class the decorated ``run(session, config)`` function as algorithm
    ``name``.  Names are case-insensitive and must be unique."""
    key = name.lower()

    def decorator(run: Callable) -> Callable:
        if key in _REGISTRY:
            raise DuplicateAlgorithmError(
                f"algorithm {name!r} is already registered "
                f"(by {_REGISTRY[key].run.__module__})"
            )
        _REGISTRY[key] = AlgorithmSpec(
            name=key,
            display_name=display_name,
            run=run,
            kinds=frozenset(kinds),
            capabilities=frozenset(capabilities),
            summary=summary or (run.__doc__ or "").strip().split("\n")[0],
            requires=requires,
            dispatch=dispatch,
            priority=priority,
            display_for=display_for,
        )
        return run

    return decorator


def attach_skyband(
    name: str,
    *,
    requires: Callable[[Schema], bool] | None = None,
) -> Callable[[Callable], Callable]:
    """Attach a K-skyband runner ``(interface, band, config) -> SkybandResult``
    to the already-registered algorithm ``name``."""
    key = name.lower()

    def decorator(runner: Callable) -> Callable:
        spec = _REGISTRY.get(key)
        if spec is None:
            raise AlgorithmNotFoundError(name, _REGISTRY)
        if spec.skyband is not None:
            raise DuplicateAlgorithmError(
                f"algorithm {name!r} already has a skyband runner"
            )
        _REGISTRY[key] = _dc_replace(
            spec,
            skyband=runner,
            skyband_requires=requires,
            capabilities=spec.capabilities | {"skyband"},
        )
        return runner

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove ``name`` from the registry (test / plugin teardown helper)."""
    _REGISTRY.pop(name.lower(), None)


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise AlgorithmNotFoundError(name, sorted(_REGISTRY)) from None


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_algorithms() -> tuple[AlgorithmSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def applicable_algorithms(schema: Schema) -> tuple[AlgorithmSpec, ...]:
    """Registered specs able to run against ``schema``, sorted by name."""
    return tuple(
        spec for spec in all_algorithms() if spec.supports(schema)
    )


def resolve_algorithm(schema: Schema) -> AlgorithmSpec:
    """Auto-dispatch on the schema's interface taxonomy.

    Among the specs whose ``dispatch`` predicate accepts the schema, the
    highest-priority one wins.  The built-in registrations reproduce the
    dispatch of the legacy :func:`repro.core.mq.legacy_discover`: pure one-ended
    schemas run SQ-DB-SKY, range schemas run RQ-DB-SKY, pure point schemas
    run PQ-DB-SKY and everything else runs MQ-DB-SKY.
    """
    candidates = sorted(
        (spec for spec in _REGISTRY.values() if spec.prefers(schema)),
        key=lambda spec: (-spec.priority, spec.name),
    )
    for spec in candidates:
        if spec.supports(schema):
            return spec
    raise AlgorithmNotFoundError(
        f"<no algorithm dispatches schema with kinds "
        f"{[a.kind.name for a in schema.ranking_attributes]}>",
        sorted(_REGISTRY),
    )


__all__ = [
    "AlgorithmInfo",
    "AlgorithmNotFoundError",
    "AlgorithmSpec",
    "DiscoveryConfig",
    "DuplicateAlgorithmError",
    "algorithm_names",
    "all_algorithms",
    "applicable_algorithms",
    "attach_skyband",
    "get_algorithm",
    "register_algorithm",
    "resolve_algorithm",
    "unregister_algorithm",
]
