"""Shared machinery for the skyline-discovery algorithms.

Every algorithm in :mod:`repro.core` is written as a function operating on a
:class:`DiscoverySession`, which wraps the top-k interface and keeps the
bookkeeping the paper's evaluation needs:

* the query cost (number of issued queries since the session began);
* the first-retrieval cost of every distinct tuple, which yields the
  *anytime* discovery curve of Figures 20-24;
* the full query/answer log, consumed by the PQ plane-pruning rules.

Results are reported as a :class:`DiscoveryResult`.  Skylines are compared by
**value vectors** throughout the library: under the paper's general
positioning assumption value vectors are unique, and when a dataset does
contain duplicated vectors a top-k interface fundamentally cannot distinguish
the copies, so value-set equality is the right correctness criterion.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.errors import QueryBudgetExceeded
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from ..hiddendb.table import Row
from .dominance import incremental_skyline_update, skyline_of_rows
from .engine import (
    EngineStats,
    ExecutionStrategy,
    Frontier,
    QueryEngine,
    make_strategy,
)

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..freshness import DeltaReport
    from ..store import CrawlStore, SessionRecord
    from .registry import AlgorithmInfo, DiscoveryConfig
    from .skyband import SkybandResult


@dataclass(frozen=True)
class TraceEntry:
    """One point of the anytime discovery curve."""

    cost: int  #: queries issued when the tuple was first retrieved
    row: Row


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of one skyline-discovery run.

    ``skyline`` is the skyline of all retrieved tuples; when ``complete`` is
    true this equals the skyline of the hidden database.  ``trace`` records,
    for each skyline tuple, the query cost at which it was first retrieved --
    the anytime curve of Section 7.1.
    """

    algorithm: str
    skyline: tuple[Row, ...]
    trace: tuple[TraceEntry, ...]
    total_cost: int
    retrieved: tuple[Row, ...]
    complete: bool
    #: Run configuration (facade runs only; ``None`` for legacy entry points).
    config: "DiscoveryConfig | None" = None
    #: Registry metadata of the algorithm that produced this result.
    info: "AlgorithmInfo | None" = None
    #: Full query/answer log (populated when ``config.record_log`` is set).
    query_log: tuple[QueryResult, ...] = field(default=(), repr=False)
    #: Execution-engine counters of the run (dispatch strategy, billable
    #: queries, memo hits, batching, peak concurrency).
    stats: EngineStats | None = None
    #: Crawl-store session this run was billed under (durable runs only;
    #: ``resumed`` tells whether it continued a crashed incarnation).
    store_session: "SessionRecord | None" = field(default=None, repr=False)
    #: Delta-crawl repair accounting (``mode="delta"`` runs only): probe,
    #: revalidation and skyline-change counters of the freshness plane.
    freshness: "DeltaReport | None" = field(default=None, repr=False)

    @property
    def skyline_values(self) -> frozenset[tuple[int, ...]]:
        """The skyline as a set of value vectors (the comparison currency)."""
        return frozenset(row.values for row in self.skyline)

    @property
    def skyline_size(self) -> int:
        """Number of distinct skyline value vectors."""
        return len(self.skyline_values)

    def discovered_within(self, budget: int) -> tuple[Row, ...]:
        """Skyline tuples already retrieved after ``budget`` queries."""
        return tuple(entry.row for entry in self.trace if entry.cost <= budget)

    def discovery_curve(self) -> list[tuple[int, int]]:
        """Monotone ``(query cost, #skyline tuples discovered)`` points."""
        curve: list[tuple[int, int]] = []
        for count, entry in enumerate(self.trace, start=1):
            if curve and curve[-1][0] == entry.cost:
                curve[-1] = (entry.cost, count)
            else:
                curve.append((entry.cost, count))
        return curve

    def cost_of_discovery(self, index: int) -> int:
        """Query cost when the ``index``-th skyline tuple (1-based) appeared."""
        if not 1 <= index <= len(self.trace):
            raise IndexError(
                f"discovery index {index} out of range 1..{len(self.trace)}"
            )
        return self.trace[index - 1].cost

    def __repr__(self) -> str:
        return (
            f"DiscoveryResult({self.algorithm}: |S|={self.skyline_size}, "
            f"cost={self.total_cost}, complete={self.complete})"
        )


class DiscoverySession:
    """Query issuing and retrieval bookkeeping for one discovery run.

    Parameters
    ----------
    interface:
        The hidden database's search endpoint -- any
        :class:`~repro.hiddendb.endpoint.SearchEndpoint`, in-process
        (:class:`~repro.hiddendb.interface.TopKInterface`) or remote
        (:class:`~repro.service.client.RemoteTopKInterface`).
    base_query:
        Optional predicates conjoined to *every* issued query.  This
        implements the paper's "skyline subject to filtering conditions"
        extension (Section 2.1) and the domination-subspace recursion of the
        skyband algorithms.
    budget:
        Optional session-level query allowance, enforced on top of any
        budget of the interface itself: issuing the ``budget + 1``-th query
        raises :class:`QueryBudgetExceeded` without executing it.
    on_query:
        Hook invoked with every :class:`QueryResult` right after it is
        recorded.
    on_tuple:
        Hook invoked with a :class:`TraceEntry` whenever a distinct tuple is
        retrieved for the first time (the live anytime curve).
    strategy:
        :class:`~repro.core.engine.ExecutionStrategy` draining this
        session's frontiers (default: :class:`SerialStrategy`, which is
        bit-identical to the pre-engine implementations).
    dedup:
        Enable run-scoped query memoization: an identical query (after
        merging with the base query) is answered from the memo and never
        billed twice.  Off by default so default runs keep the historical
        query counts; the skyband runners turn it on (their overlapping
        subspace trees re-issue many identical queries).
    """

    def __init__(
        self,
        interface: SearchEndpoint,
        base_query: Query | None = None,
        *,
        budget: int | None = None,
        on_query: Callable[[QueryResult], None] | None = None,
        on_tuple: Callable[[TraceEntry], None] | None = None,
        strategy: ExecutionStrategy | None = None,
        dedup: bool = False,
    ) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._interface = interface
        self._base = base_query if base_query is not None else Query.select_all()
        self._start = interface.queries_issued
        self._budget = budget
        self._on_query = on_query
        self._on_tuple = on_tuple
        self._incomplete = False
        self._first_seen: dict[int, TraceEntry] = {}
        self._log: list[QueryResult] = []
        self._engine = QueryEngine(interface, strategy=strategy, dedup=dedup)
        # Budget accounting is reservation-based so it stays exact under
        # concurrent dispatch: every transport claims a unit *before* it
        # reaches the endpoint (from whichever thread runs it).
        self._budget_used = 0
        self._budget_lock = threading.Lock()
        # Durable-crawl state (bound by ``attach_store``; all None/0 for
        # plain in-memory runs).
        self._store: "CrawlStore | None" = None
        self._store_session: "SessionRecord | None" = None
        self._checkpoint_every = 0
        self._records_since_checkpoint = 0
        #: Queries billed by earlier (crashed) incarnations of this crawl
        #: session, carried into :attr:`cost` so a resumed run reports the
        #: cumulative billed total.
        self._prior_cost = 0
        #: Incrementally maintained skyline-so-far value vectors (durable
        #: runs only): checkpoints snapshot it in O(|skyline|) instead of
        #: recomputing the skyline of everything retrieved.
        self._sky_values: np.ndarray | None = None
        # Observability plane (bound by ``attach_observer``; ``None`` keeps
        # every instrumentation hook a single is-not-None check).
        self._observer = None
        self._owns_observer = False

    # ------------------------------------------------------------------
    # interface passthrough
    # ------------------------------------------------------------------
    @property
    def schema(self):
        """Schema of the underlying search interface."""
        return self._interface.schema

    @property
    def k(self) -> int:
        """Top-k limit of the underlying interface."""
        return self._interface.k

    @property
    def base_query(self) -> Query:
        """Predicates conjoined to every query of this session."""
        return self._base

    @property
    def cost(self) -> int:
        """Billed queries of this crawl so far.

        Counts queries issued through this session, plus -- for a resumed
        durable crawl -- the queries already billed by the crashed
        incarnations it continues (so ``result.total_cost`` reports what
        the whole crawl actually paid).
        """
        return self._interface.queries_issued - self._start + self._prior_cost

    @property
    def log(self) -> tuple[QueryResult, ...]:
        """All query results observed by this session, in issue order."""
        return tuple(self._log)

    @property
    def budget(self) -> int | None:
        """Session-level query allowance (``None`` = unlimited)."""
        return self._budget

    @property
    def engine(self) -> QueryEngine:
        """The execution engine (memo, counters, strategy) of this session."""
        return self._engine

    @property
    def engine_stats(self) -> EngineStats:
        """Current execution counters (frozen snapshot)."""
        return self._engine.snapshot()

    def frontier(self, lifo: bool = False) -> Frontier:
        """A fresh :class:`~repro.core.engine.Frontier` over this session."""
        return Frontier(self, lifo=lifo)

    def prepare(self, query: Query) -> Query:
        """Conjoin ``query`` with the session base (the issued form)."""
        merged = self._base.merge(query)
        if merged is None:
            raise ValueError(
                f"query {query!r} contradicts session base {self._base!r}"
            )
        return merged

    def reserve_budget(self) -> None:
        """Claim one unit of the session allowance ahead of a transport.

        Thread-safe (pipelined strategies reserve from worker threads) and
        exact: issuing never exceeds the budget, and a budget sufficient
        for a serial run is sufficient for a pipelined one (the strategies
        issue the same query set).  Memoized answers never reserve --
        dedup hits are free.
        """
        if self._budget is None:
            return
        with self._budget_lock:
            if self._budget_used >= self._budget:
                raise QueryBudgetExceeded(self._budget)
            self._budget_used += 1

    def release_budget(self, count: int = 1) -> None:
        """Return reservations whose transport did not bill (failures)."""
        if self._budget is None or count <= 0:
            return
        with self._budget_lock:
            self._budget_used -= count

    def issue(self, query: Query) -> QueryResult:
        """Issue ``query`` (conjoined with the base query) and record it.

        Routed through the engine: with dedup enabled a repeated identical
        query is answered from the run-scoped memo without being billed
        (and without a budget reservation -- memo hits are free).
        """
        result = self._engine.fetch(self.prepare(query), self)
        self.record(result)
        return result

    def record(self, result: QueryResult) -> None:
        """Fold one answer into the session bookkeeping (driver thread).

        Split out of :meth:`issue` so concurrent strategies can transport
        answers on worker threads and still record them here, in
        deterministic merge order.
        """
        cost = self.cost
        for row in result.rows:
            if row.rid not in self._first_seen:
                entry = TraceEntry(cost, row)
                self._first_seen[row.rid] = entry
                if self._store is not None:
                    self._track_skyline(row)
                if self._on_tuple is not None:
                    self._on_tuple(entry)
        self._log.append(result)
        if self._on_query is not None:
            self._on_query(result)
        if self._store is not None:
            self._records_since_checkpoint += 1
            if self._records_since_checkpoint >= self._checkpoint_every:
                self.save_checkpoint()

    @classmethod
    def from_config(
        cls,
        interface: SearchEndpoint,
        config: "DiscoveryConfig | None" = None,
        *,
        default_dedup: bool = False,
        algorithm: str | None = None,
    ) -> "DiscoverySession":
        """A session honouring a :class:`DiscoveryConfig` (``None`` = defaults).

        ``default_dedup`` is the memoization default applied when the
        config leaves ``dedup`` unset (skyband runners pass ``True``).
        ``algorithm`` labels the crawl session when ``config.store`` is
        set (resume matches on endpoint + algorithm).
        """
        if config is None:
            return cls(interface, dedup=default_dedup)
        strategy = make_strategy(
            config.strategy,
            workers=config.workers,
            batch_size=config.batch_size,
            min_workers=config.min_workers,
            max_workers=config.max_workers,
        )
        dedup = config.dedup if config.dedup is not None else default_dedup
        session = cls(
            interface,
            config.base_query,
            budget=config.budget,
            on_query=config.on_query,
            on_tuple=config.on_tuple,
            strategy=strategy,
            dedup=dedup,
        )
        if config.store is not None:
            session.attach_store(
                config.store,
                algorithm=algorithm or "",
                resume=config.resume,
                session_id=config.session_id,
                checkpoint_every=config.checkpoint_every,
            )
        if config.trace is not None:
            from ..obs import RunObserver

            if isinstance(config.trace, RunObserver):
                session.attach_observer(config.trace)
            else:
                session.attach_observer(
                    RunObserver(trace=config.trace), owned=True
                )
        return session

    # ------------------------------------------------------------------
    # observability plumbing (repro.obs)
    # ------------------------------------------------------------------
    def attach_observer(self, observer, *, owned: bool = False) -> None:
        """Bind a :class:`repro.obs.RunObserver` to this run.

        The observer is handed to the execution engine (drain-core
        classification, billing and merge spans) and -- duck-typed, like
        the replay nonce -- to the interface when it exposes
        ``attach_observer`` (the remote clients and the coordinator's
        endpoint set do), covering transport events and the over-the-wire
        ``X-Trace-Id`` header.  ``owned=True`` makes :meth:`close_observer`
        close the observer's trace writer (sessions own observers they
        created from ``DiscoveryConfig(trace=path)``).

        The hooks only ever *emit* events; no algorithmic control flow
        reads the observer, so a traced run is bit-identical in skyline
        and billed cost to an untraced one.
        """
        self._observer = observer
        self._owns_observer = owned
        self._engine.observer = observer
        attach = getattr(self._interface, "attach_observer", None)
        if attach is not None:
            attach(observer)
        if self._store is not None:
            self._store.attach_observer(observer)

    @property
    def observer(self):
        """The bound :class:`repro.obs.RunObserver`, if any."""
        return self._observer

    def close_observer(self) -> None:
        """Detach the observer and flush/close its trace sink (idempotent)."""
        observer = self._observer
        if observer is None:
            return
        self._observer = None
        self._engine.observer = None
        attach = getattr(self._interface, "attach_observer", None)
        if attach is not None:
            attach(None)
        if self._store is not None:
            self._store.attach_observer(None)
        if self._owns_observer:
            observer.close()
        else:
            observer.flush()

    # ------------------------------------------------------------------
    # durable-crawl plumbing (crawl store)
    # ------------------------------------------------------------------
    def attach_store(
        self,
        store: "CrawlStore",
        *,
        algorithm: str = "",
        resume: bool = False,
        session_id: str | None = None,
        checkpoint_every: int = 32,
        ledger_factory: "Callable[[str, SessionRecord], object] | None" = None,
    ) -> None:
        """Make this run durable against ``store``.

        Registers the endpoint (refusing, via
        :class:`~repro.store.StoreMismatchError`, a ledger built against a
        different dataset/``k``), begins -- or with ``resume=True`` picks
        back up -- a crawl session, and mounts the endpoint's query ledger
        on the execution engine so already-paid-for answers replay free
        and every billed answer is persisted.  ``session_id`` pins the
        session identity instead (fetch-or-create; the coordinator's
        per-job sessions).  Remote endpoints that support it additionally
        get the session's deterministic replay nonce, so queries billed
        by a crashed incarnation but never persisted (lost in flight) are
        replayed by the server instead of billed twice.

        ``ledger_factory`` swaps the mounted ledger view for a custom one
        (called with the endpoint fingerprint and the session record; must
        honour the ``put``-then-``get`` round-trip the engine's in-flight
        dedup relies on).  The delta-crawl mounts its epoch-straddling
        :class:`repro.freshness.DeltaLedger` through this seam.
        """
        name = getattr(self._interface, "service_name", "") or getattr(
            self._interface, "name", ""
        )
        # Endpoints that advertise a data version (live databases) stamp it
        # into the registration, so the mounted ledger pins to the *current*
        # epoch: answers billed against an older state are never replayed.
        version = getattr(self._interface, "data_version", None)
        fingerprint = store.register_endpoint(
            self.schema,
            self.k,
            name=name,
            ranking=getattr(self._interface, "ranking_label", ""),
            data_version=int(version) if version is not None else None,
        )
        record = store.begin_session(
            fingerprint, algorithm, resume=resume, session_id=session_id
        )
        self._store = store
        self._store_session = record
        self._checkpoint_every = max(int(checkpoint_every), 1)
        self._prior_cost = record.billed if record.resumed else 0
        if ledger_factory is None:
            ledger = store.ledger(fingerprint, record.session_id)
        else:
            ledger = ledger_factory(fingerprint, record)
        self._engine.bind_ledger(ledger)
        set_nonce = getattr(self._interface, "set_replay_nonce", None)
        if set_nonce is not None:
            set_nonce(record.nonce)

    @property
    def store_session(self) -> "SessionRecord | None":
        """The crawl-store session backing this run, if durable."""
        return self._store_session

    def _track_skyline(self, row: Row) -> None:
        """Fold one newly retrieved row into the skyline-so-far tracker."""
        updated = incremental_skyline_update(
            self._sky_values, np.asarray(row.values, dtype=np.int64)
        )
        if updated is not None:
            self._sky_values = updated

    def _skyline_snapshot(self) -> list[list[int]]:
        """Distinct skyline-so-far value vectors, sorted (checkpoint view)."""
        if self._sky_values is None:
            return []
        distinct = np.unique(self._sky_values, axis=0)
        return [[int(v) for v in row] for row in distinct]

    def save_checkpoint(self) -> None:
        """Snapshot the crawl's progress into the store (no-op otherwise)."""
        if self._store is None or self._store_session is None:
            return
        self._records_since_checkpoint = 0
        skyline = self._skyline_snapshot()
        self._store.save_checkpoint(
            self._store_session.session_id,
            {
                "billed": self.cost,
                "retrieved": len(self._first_seen),
                "answers": len(self._log),
                "skyline_size": len(skyline),
                "skyline": skyline,
            },
        )

    def finish_store(
        self, result: "DiscoveryResult | SkybandResult"
    ) -> None:
        """File ``result`` in the store's crawl catalog (no-op otherwise).

        Only *complete* results finish the crawl session.  A partial run
        (budget exhaustion, the anytime mode) checkpoints its final state
        but stays ``running``: rerunning with ``resume=True`` -- e.g.
        after the per-key budget refreshes -- replays the paid-for prefix
        and finishes the discovery without re-billing a single query.
        """
        if self._store is None or self._store_session is None:
            return
        # The session's deterministic replay nonce must not leak into
        # later non-durable runs on the same client (their repeats would
        # be server-replayed unbilled while still counted as issued).
        set_nonce = getattr(self._interface, "set_replay_nonce", None)
        if set_nonce is not None:
            set_nonce(None)
        if not result.complete:
            self.save_checkpoint()
            return
        rows = getattr(result, "skyline", None)
        if rows is None:
            rows = getattr(result, "skyband", ())
        payload: dict = {
            "algorithm": result.algorithm,
            "total_cost": int(result.total_cost),
            "complete": bool(result.complete),
            "skyline_size": len(rows),
            "skyline": [[int(v) for v in row.values] for row in rows],
            "stats": result.stats.as_dict() if result.stats is not None else None,
        }
        band = getattr(result, "band", None)
        if band is not None:
            payload["band"] = int(band)
        self.save_checkpoint()
        self._store.finish_session(self._store_session.session_id, payload)

    def mark_incomplete(self) -> None:
        """Flag the run as provably partial (e.g. an unsplittable crawl
        region); the packaged result will report ``complete=False``."""
        self._incomplete = True

    # ------------------------------------------------------------------
    # retrieval bookkeeping
    # ------------------------------------------------------------------
    @property
    def retrieved_rows(self) -> list[Row]:
        """All distinct tuples retrieved so far, in first-retrieval order."""
        return [entry.row for entry in self._first_seen.values()]

    def has_retrieved(self, rid: int) -> bool:
        """Whether the tuple with row id ``rid`` has been retrieved."""
        return rid in self._first_seen

    def confirmed_skyline(self) -> list[Row]:
        """Skyline of the tuples retrieved so far."""
        return skyline_of_rows(self.retrieved_rows)

    def result(self, algorithm: str, complete: bool = True) -> DiscoveryResult:
        """Package the session state into a :class:`DiscoveryResult`."""
        skyline = skyline_of_rows(self.retrieved_rows)
        skyline_rids = {row.rid for row in skyline}
        trace = sorted(
            (
                entry
                for entry in self._first_seen.values()
                if entry.row.rid in skyline_rids
            ),
            key=lambda entry: (entry.cost, entry.row.rid),
        )
        return DiscoveryResult(
            algorithm=algorithm,
            skyline=tuple(
                sorted(skyline, key=lambda row: (row.values, row.rid))
            ),
            trace=tuple(trace),
            total_cost=self.cost,
            retrieved=tuple(self.retrieved_rows),
            complete=complete and not self._incomplete,
            stats=self._engine.snapshot(),
        )


def run_with_budget_guard(
    interface: SearchEndpoint,
    algorithm_name: str,
    body: Callable[[DiscoverySession], None],
    base_query: Query | None = None,
) -> DiscoveryResult:
    """Run ``body`` in a fresh session, converting budget exhaustion into a
    partial (``complete=False``) result -- the anytime behaviour of §7.1."""
    session = DiscoverySession(interface, base_query)
    complete = True
    try:
        body(session)
    except QueryBudgetExceeded:
        complete = False
    return session.result(algorithm_name, complete)


def rows_values(rows: Iterable[Row]) -> frozenset[tuple[int, ...]]:
    """Value-vector set of a row collection (test / comparison helper)."""
    return frozenset(row.values for row in rows)
