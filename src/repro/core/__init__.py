"""Skyline discovery algorithms over top-k hidden web databases.

The primary contribution of the paper: one discovery algorithm per interface
family (SQ / RQ / PQ), their mixed-interface composition MQ-DB-SKY, the
crawling BASELINE, K-skyband extensions, and the closed-form cost analysis.

Every algorithm self-registers with :mod:`repro.core.registry`; the
:class:`Discoverer` facade is the stable entry point over that registry.

Quick start::

    from repro.core import Discoverer, DiscoveryConfig

    disc = Discoverer(DiscoveryConfig(budget=1000))
    result = disc.run(interface)          # dispatches on the schema taxonomy
    result.skyline, result.total_cost, result.trace

or, for one-shot runs, the module-level convenience::

    from repro.core import discover
    result = discover(interface)
"""

from . import analysis
from .base import (
    DiscoveryResult,
    DiscoverySession,
    TraceEntry,
    rows_values,
    run_with_budget_guard,
)
from .baseline import baseline_skyline, crawl_all
from .dominance import (
    dominates,
    dominates_row,
    dominator_counts,
    skyband_indices,
    skyband_of_rows,
    skyline_indices,
    skyline_of_rows,
)
from .adaptive import AdaptiveWindow
from .engine import (
    STRATEGY_NAMES,
    AsyncStrategy,
    EngineStats,
    ExecutionStrategy,
    Frontier,
    PipelinedStrategy,
    QueryEngine,
    SerialStrategy,
    make_strategy,
)
from .registry import (
    AlgorithmInfo,
    AlgorithmNotFoundError,
    AlgorithmSpec,
    DiscoveryConfig,
    DuplicateAlgorithmError,
    algorithm_names,
    all_algorithms,
    applicable_algorithms,
    attach_skyband,
    get_algorithm,
    register_algorithm,
    resolve_algorithm,
)
from .mq import discover_mq, mq_db_sky
from .pq import choose_plane_attributes, discover_pq, pq_db_sky
from .pq2d import discover_pq2d, pq_2d_sky
from .pqsub import PlaneState, explore_plane
from .rq import discover_rq, rq_db_sky
from .skyband import (
    SkybandResult,
    pq_db_skyband,
    rq_db_skyband,
    sq_db_skyband,
)
from .sq import discover_sq, sq_db_sky
from .facade import Discoverer, default_discoverer, discover
from .stats import QueryLogSummary, summarize_log, summarize_session

__all__ = [
    "STRATEGY_NAMES",
    "AdaptiveWindow",
    "AlgorithmInfo",
    "AlgorithmNotFoundError",
    "AlgorithmSpec",
    "AsyncStrategy",
    "Discoverer",
    "DiscoveryConfig",
    "DiscoveryResult",
    "DiscoverySession",
    "DuplicateAlgorithmError",
    "EngineStats",
    "ExecutionStrategy",
    "Frontier",
    "PipelinedStrategy",
    "PlaneState",
    "QueryEngine",
    "SerialStrategy",
    "QueryLogSummary",
    "SkybandResult",
    "TraceEntry",
    "algorithm_names",
    "all_algorithms",
    "analysis",
    "applicable_algorithms",
    "attach_skyband",
    "baseline_skyline",
    "choose_plane_attributes",
    "crawl_all",
    "default_discoverer",
    "discover",
    "discover_mq",
    "discover_pq",
    "discover_pq2d",
    "discover_rq",
    "discover_sq",
    "dominates",
    "dominates_row",
    "dominator_counts",
    "explore_plane",
    "get_algorithm",
    "make_strategy",
    "mq_db_sky",
    "pq_2d_sky",
    "pq_db_sky",
    "pq_db_skyband",
    "register_algorithm",
    "resolve_algorithm",
    "rows_values",
    "rq_db_sky",
    "rq_db_skyband",
    "run_with_budget_guard",
    "skyband_indices",
    "skyband_of_rows",
    "skyline_indices",
    "skyline_of_rows",
    "sq_db_sky",
    "sq_db_skyband",
    "summarize_log",
    "summarize_session",
]
