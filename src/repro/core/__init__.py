"""Skyline discovery algorithms over top-k hidden web databases.

The primary contribution of the paper: one discovery algorithm per interface
family (SQ / RQ / PQ), their mixed-interface composition MQ-DB-SKY, the
crawling BASELINE, K-skyband extensions, and the closed-form cost analysis.

Quick start::

    from repro.core import discover
    result = discover(interface)          # dispatches on the schema taxonomy
    result.skyline, result.total_cost, result.trace
"""

from . import analysis
from .base import (
    DiscoveryResult,
    DiscoverySession,
    TraceEntry,
    rows_values,
    run_with_budget_guard,
)
from .baseline import baseline_skyline, crawl_all
from .dominance import (
    dominates,
    dominates_row,
    dominator_counts,
    skyband_indices,
    skyband_of_rows,
    skyline_indices,
    skyline_of_rows,
)
from .mq import discover, discover_mq, mq_db_sky
from .pq import choose_plane_attributes, discover_pq, pq_db_sky
from .pq2d import discover_pq2d, pq_2d_sky
from .pqsub import PlaneState, explore_plane
from .rq import discover_rq, rq_db_sky
from .skyband import (
    SkybandResult,
    pq_db_skyband,
    rq_db_skyband,
    sq_db_skyband,
)
from .sq import discover_sq, sq_db_sky
from .stats import QueryLogSummary, summarize_session

__all__ = [
    "DiscoveryResult",
    "DiscoverySession",
    "PlaneState",
    "SkybandResult",
    "TraceEntry",
    "analysis",
    "baseline_skyline",
    "choose_plane_attributes",
    "crawl_all",
    "discover",
    "discover_mq",
    "discover_pq",
    "discover_pq2d",
    "discover_rq",
    "discover_sq",
    "dominates",
    "dominates_row",
    "dominator_counts",
    "explore_plane",
    "mq_db_sky",
    "pq_2d_sky",
    "pq_db_sky",
    "pq_db_skyband",
    "rows_values",
    "rq_db_sky",
    "rq_db_skyband",
    "run_with_budget_guard",
    "skyband_indices",
    "skyband_of_rows",
    "skyline_indices",
    "skyline_of_rows",
    "sq_db_sky",
    "sq_db_skyband",
    "QueryLogSummary",
    "summarize_session",
]
