"""BASELINE: crawl the whole database, then extract the skyline locally.

The paper compares every discovery algorithm against the obvious alternative:
crawl all ``n`` tuples through the top-k interface with a state-of-the-art
crawler (Sheng et al., VLDB 2012 [22]), then compute the skyline over the
local copy.  Crawling needs two-ended ranges: whenever a query overflows,
its region is split into two disjoint subregions (``A <= v`` / ``A >= v+1``)
around the median returned value of the widest range attribute.  Point
attributes split by value enumeration instead.  The query cost is
``Theta(m * n / k)``-ish in practice -- orders of magnitude above skyline
discovery, which is exactly the gap Figures 13, 22 and 24 report.

BASELINE has **no anytime property** for the skyline: a tuple can only be
confirmed on the skyline once the entire crawl finishes.  The
:class:`~repro.core.base.DiscoveryResult` trace still records first-retrieval
costs so the figures can plot both curves on the same axes.
"""

from __future__ import annotations

import numpy as np

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.query import Query
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .registry import DiscoveryConfig, register_algorithm

ALGORITHM_NAME = "BASELINE"


def crawl_all(session: DiscoverySession, root: Query | None = None) -> bool:
    """Crawl every tuple matching ``root`` (default: the whole database).

    Returns ``True`` when the crawl is provably complete; ``False`` when some
    region could not be subdivided further (more than ``k`` tuples share one
    exact value combination, which the top-k interface cannot enumerate).

    The region subdivisions are expanded through a LIFO
    :class:`~repro.core.engine.Frontier`: each split depends only on its
    own region's answer, so sibling regions crawl concurrently under a
    pipelined strategy while the serial strategy reproduces the historical
    depth-first stack order exactly.
    """
    schema = session.schema
    sizes = schema.domain_sizes
    kinds = [attribute.kind for attribute in schema.ranking_attributes]
    state = {"complete": True}
    frontier = session.frontier(lifo=True)

    def expand(query: Query, result) -> None:
        if not result.overflow:
            return
        split = _split_region(query, result, kinds, sizes)
        if split is None:
            state["complete"] = False
            return
        for piece in split:
            frontier.add(piece, lambda res, q=piece: expand(q, res))

    root_query = root if root is not None else Query.select_all()
    frontier.add(root_query, lambda res: expand(root_query, res))
    frontier.drain()
    return state["complete"]


def _split_region(
    query: Query,
    result,
    kinds: list[InterfaceKind],
    sizes: tuple[int, ...],
) -> list[Query] | None:
    """Split an overflowing region into disjoint, strictly smaller pieces.

    Two-ended attributes split binarily at the median returned value; one-
    ended and point attributes can only be subdivided by value enumeration
    (``A = v`` is supported by every interface kind).  Returns ``None`` when
    every attribute interval is already a single value.
    """
    intervals = {
        index: query.interval(index, sizes[index]) for index in range(len(sizes))
    }
    two_ended = [
        index
        for index, kind in enumerate(kinds)
        if kind is InterfaceKind.RQ and intervals[index].width > 1
    ]
    if two_ended:
        # Widest two-ended attribute, split at the median observed value so
        # each side excludes at least part of the returned answer.
        chosen = max(two_ended, key=lambda index: intervals[index].width)
        interval = intervals[chosen]
        observed = [row.values[chosen] for row in result.rows]
        pivot = int(np.median(observed))
        pivot = min(max(pivot, interval.lo), interval.hi - 1)
        left = query.and_upper(chosen, pivot)
        right = query.and_lower(chosen, pivot + 1, sizes[chosen])
        assert left is not None and right is not None
        return [left, right]
    enumerable = [
        index
        for index, interval in intervals.items()
        if interval.width > 1
    ]
    if not enumerable:
        return None
    # Cheapest enumeration: the attribute with the fewest remaining values.
    chosen = min(enumerable, key=lambda index: intervals[index].width)
    interval = intervals[chosen]
    pieces = []
    for value in range(interval.lo, interval.hi + 1):
        piece = query.and_point(chosen, value)
        assert piece is not None
        pieces.append(piece)
    return pieces


@register_algorithm(
    "baseline",
    display_name=ALGORITHM_NAME,
    kinds=(InterfaceKind.SQ, InterfaceKind.RQ, InterfaceKind.PQ),
    capabilities=("complete",),
    summary="Crawl everything, then compute the skyline locally (Sheng'12)",
    # Never auto-dispatched: it exists as the comparison yardstick.
)
def _run_baseline(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """BASELINE under the facade; flags unsplittable regions as incomplete."""
    _run_baseline_body(session)


def baseline_skyline(
    interface: SearchEndpoint, base_query: Query | None = None
) -> DiscoveryResult:
    """Crawl the whole database and extract the skyline locally.

    ``complete`` is false when the budget ran out *or* some region could not
    be subdivided further (> k tuples sharing one value combination).
    """
    return run_with_budget_guard(
        interface,
        ALGORITHM_NAME,
        _run_baseline_body,
        base_query,
    )


def _run_baseline_body(session: DiscoverySession) -> None:
    if not crawl_all(session):
        session.mark_incomplete()
