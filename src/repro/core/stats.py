"""Query-log analytics for discovery runs.

A real scraping campaign cares not only about the total query count but
about *how* the budget was spent: how many queries came back empty, how
deep the conjunctions went, how much of the answer stream was redundant.
:func:`summarize_session` folds a session's query log into a
:class:`QueryLogSummary`; the experiment front-ends and examples use it to
explain cost differences between algorithms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..hiddendb.interface import QueryResult
from .base import DiscoverySession


@dataclass(frozen=True)
class QueryLogSummary:
    """Aggregate statistics over one discovery session's query log."""

    total_queries: int
    empty_answers: int  #: queries returning no tuple
    overflowing_answers: int  #: queries returning exactly k tuples
    underflowing_answers: int  #: non-empty answers below k (fully resolved)
    rows_returned: int  #: total tuples across all answers (with repeats)
    distinct_rows: int  #: distinct tuples retrieved
    redundant_rows: int  #: answer slots occupied by already-seen tuples
    max_predicates: int  #: deepest conjunction issued
    predicate_histogram: dict[int, int]  #: #predicates -> #queries

    @property
    def empty_fraction(self) -> float:
        """Fraction of the budget spent on empty answers."""
        if self.total_queries == 0:
            return 0.0
        return self.empty_answers / self.total_queries

    @property
    def redundancy(self) -> float:
        """Fraction of returned tuples that were already known.

        High redundancy is the signature of SQ-DB-SKY's overlapping
        branches; RQ-DB-SKY's mutually exclusive queries drive it down.
        """
        if self.rows_returned == 0:
            return 0.0
        return self.redundant_rows / self.rows_returned

    def as_rows(self) -> list[dict]:
        """Tabular form for the experiment reporters."""
        return [
            {"metric": "total queries", "value": self.total_queries},
            {"metric": "empty answers", "value": self.empty_answers},
            {"metric": "overflowing answers", "value": self.overflowing_answers},
            {"metric": "underflowing answers", "value": self.underflowing_answers},
            {"metric": "distinct tuples", "value": self.distinct_rows},
            {"metric": "redundant answer slots", "value": self.redundant_rows},
            {"metric": "redundancy", "value": round(self.redundancy, 3)},
            {"metric": "max predicates", "value": self.max_predicates},
        ]


def summarize_session(session: DiscoverySession) -> QueryLogSummary:
    """Fold ``session``'s query log into a :class:`QueryLogSummary`."""
    return summarize_log(session.log)


def summarize_log(log: Sequence[QueryResult]) -> QueryLogSummary:
    """Fold a query/answer log into a :class:`QueryLogSummary`.

    Accepts any result sequence -- a session's ``log``, or the
    ``query_log`` a facade run attaches when ``record_log`` is set.
    """
    empty = overflow = underflow = 0
    rows_returned = 0
    seen: set[int] = set()
    redundant = 0
    predicate_histogram: Counter[int] = Counter()
    max_predicates = 0
    for result in log:
        depth = result.query.num_predicates
        predicate_histogram[depth] += 1
        max_predicates = max(max_predicates, depth)
        if result.is_empty:
            empty += 1
        elif result.overflow:
            overflow += 1
        else:
            underflow += 1
        for row in result.rows:
            rows_returned += 1
            if row.rid in seen:
                redundant += 1
            else:
                seen.add(row.rid)
    return QueryLogSummary(
        total_queries=len(log),
        empty_answers=empty,
        overflowing_answers=overflow,
        underflowing_answers=underflow,
        rows_returned=rows_returned,
        distinct_rows=len(seen),
        redundant_rows=redundant,
        max_predicates=max_predicates,
        predicate_histogram=dict(predicate_histogram),
    )
