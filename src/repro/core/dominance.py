"""Dominance tests and offline skyline / K-skyband computation.

These are the classical *full-access* operators (Borzsony et al., ICDE 2001)
used in two roles:

* as the ground-truth oracle that verifies the hidden-database discovery
  algorithms (the oracle sees the raw matrix; the algorithms never do);
* as the local post-processing step of the BASELINE crawler, which first
  crawls every tuple and then extracts the skyline locally.

All values are in preference space: smaller is better on every attribute.
A tuple ``t`` dominates ``u`` iff ``t <= u`` component-wise and ``t < u`` on
at least one component; tuples with identical value vectors do not dominate
each other (the paper's general-positioning convention).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..hiddendb.table import Row


def dominates(left: Sequence[int], right: Sequence[int]) -> bool:
    """Whether value vector ``left`` dominates ``right``."""
    strictly_better = False
    for left_value, right_value in zip(left, right):
        if left_value > right_value:
            return False
        if left_value < right_value:
            strictly_better = True
    return strictly_better


def dominates_row(left: Row, right: Row) -> bool:
    """Whether row ``left`` dominates row ``right``."""
    return dominates(left.values, right.values)


def dominated_by_any(values: Sequence[int], rows: Iterable[Row]) -> bool:
    """Whether any row in ``rows`` dominates the value vector ``values``."""
    return any(dominates(row.values, values) for row in rows)


def _dominated_by_block(chunk: np.ndarray, kept: np.ndarray) -> np.ndarray:
    """Mask of ``chunk`` rows dominated by at least one row of ``kept``.

    Broadcast in sub-blocks of ``kept`` to bound peak memory at roughly
    ``block * len(chunk) * m`` elements.
    """
    mask = np.zeros(chunk.shape[0], dtype=bool)
    block = max(1, 8_000_000 // max(chunk.shape[0] * chunk.shape[1], 1))
    for start in range(0, kept.shape[0], block):
        piece = kept[start : start + block]
        weakly = np.all(piece[:, None, :] <= chunk[None, :, :], axis=2)
        strictly = np.any(piece[:, None, :] < chunk[None, :, :], axis=2)
        mask |= np.any(weakly & strictly, axis=0)
    return mask


def skyline_indices(matrix: np.ndarray) -> np.ndarray:
    """Row positions of the skyline of ``matrix``, sorted ascending.

    Sort-filter-skyline over the *distinct* value vectors: vectors are
    visited in ascending coordinate-sum order (no vector can be dominated by
    a later one) in chunks, each chunk first filtered against the kept
    skyline in one vectorised pass and only the survivors compared pairwise.
    Duplicated vectors do not dominate each other, so every row carrying a
    skyline vector is on the skyline.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    n = matrix.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    unique, inverse = np.unique(matrix, axis=0, return_inverse=True)
    order = np.argsort(unique.sum(axis=1), kind="stable")
    sorted_values = unique[order]
    kept_rows: list[np.ndarray] = []
    kept_values = np.empty((0, matrix.shape[1]), dtype=matrix.dtype)
    chunk_size = 4096
    for start in range(0, sorted_values.shape[0], chunk_size):
        chunk = sorted_values[start : start + chunk_size]
        # Two-pass filter: most tuples die against the strongest (lowest
        # coordinate-sum) skyline points, so test those first and run the
        # full comparison only for the survivors.
        strongest = kept_values[:192]
        alive = ~_dominated_by_block(chunk, strongest)
        if kept_values.shape[0] > strongest.shape[0] and bool(alive.any()):
            survivors = chunk[alive]
            alive_positions = np.flatnonzero(alive)
            still = ~_dominated_by_block(survivors, kept_values[192:])
            alive = np.zeros(chunk.shape[0], dtype=bool)
            alive[alive_positions[still]] = True
        fresh: list[np.ndarray] = []
        fresh_values = np.empty((0, matrix.shape[1]), dtype=matrix.dtype)
        for candidate in chunk[alive]:
            if fresh_values.shape[0]:
                weakly = np.all(fresh_values <= candidate, axis=1)
                strictly = np.any(fresh_values < candidate, axis=1)
                if bool(np.any(weakly & strictly)):
                    continue
            fresh.append(candidate)
            fresh_values = np.vstack([fresh_values, candidate[None, :]])
        if fresh:
            kept_rows.extend(fresh)
            kept_values = np.vstack([kept_values] + [f[None, :] for f in fresh])
    if not kept_rows:
        return np.empty(0, dtype=np.int64)
    # Map skyline vectors back to every original row carrying one of them.
    skyline_set = {tuple(int(v) for v in row) for row in kept_rows}
    unique_is_skyline = np.fromiter(
        (tuple(int(v) for v in row) in skyline_set for row in unique),
        dtype=bool,
        count=unique.shape[0],
    )
    return np.flatnonzero(unique_is_skyline[inverse])


def incremental_skyline_update(
    skyline_values: np.ndarray | None, values: np.ndarray
) -> np.ndarray | None:
    """Fold one value vector into an incrementally maintained skyline.

    ``skyline_values`` is the current skyline's (s, m) distinct-vector
    matrix (``None`` when empty); returns the updated matrix, or ``None``
    when nothing changed (``values`` is dominated by -- or ties -- a kept
    vector).  Sound because domination is transitive: a vector dominated
    now can never re-enter, and identical vectors do not dominate each
    other, so one copy represents every tie.  O(s * m) per call.
    """
    if skyline_values is None:
        return values[None, :]
    # A kept vector weakly dominating ``values`` means ``values`` is
    # either strictly dominated or an exact tie; both are already covered.
    if bool(np.any(np.all(skyline_values <= values, axis=1))):
        return None
    keep = ~(
        np.all(values <= skyline_values, axis=1)
        & np.any(values < skyline_values, axis=1)
    )
    return np.vstack([skyline_values[keep], values[None, :]])


def skyline_of_rows(rows: Sequence[Row]) -> list[Row]:
    """Skyline of an explicit row collection, preserving input order."""
    if not rows:
        return []
    matrix = np.array([row.values for row in rows], dtype=np.int64)
    keep = set(skyline_indices(matrix).tolist())
    return [row for position, row in enumerate(rows) if position in keep]


def dominator_counts(matrix: np.ndarray, cap: int | None = None) -> np.ndarray:
    """Number of tuples dominating each row (counts clip at ``cap``).

    Visits tuples in ascending coordinate-sum order: only earlier tuples can
    dominate a later one, so each row is compared against a growing prefix.
    Quadratic in the worst case -- intended for ground-truth verification and
    moderate ``n``, not for the inner loop of an algorithm.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    sorted_values = matrix[order]
    for position in range(1, n):
        candidate = sorted_values[position]
        prefix = sorted_values[:position]
        weakly_better = np.all(prefix <= candidate, axis=1)
        strictly_better = np.any(prefix < candidate, axis=1)
        count = int(np.count_nonzero(weakly_better & strictly_better))
        if cap is not None:
            count = min(count, cap)
        counts[order[position]] = count
    return counts


def skyband_indices(matrix: np.ndarray, k_band: int) -> np.ndarray:
    """Row positions of the top-``k_band`` skyband, sorted ascending.

    A tuple belongs to the K-skyband iff it is dominated by fewer than ``K``
    other tuples; the skyline is the special case ``K = 1``.
    """
    if k_band < 1:
        raise ValueError(f"k_band must be >= 1, got {k_band}")
    counts = dominator_counts(matrix, cap=k_band)
    return np.flatnonzero(counts < k_band)


def skyband_of_rows(rows: Sequence[Row], k_band: int) -> list[Row]:
    """Top-``k_band`` skyband of an explicit row collection."""
    if not rows:
        return []
    matrix = np.array([row.values for row in rows], dtype=np.int64)
    keep = set(skyband_indices(matrix, k_band).tolist())
    return [row for position, row in enumerate(rows) if position in keep]
