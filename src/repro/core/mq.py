"""MQ-DB-SKY: skyline discovery over mixed SQ / RQ / PQ interfaces (§6).

The algorithm composes the range and point machinery:

1. **Range phase.**  Run the range-tree traversal (RQ-DB-SKY restricted to
   the range-predicate attributes, with exclusion predicates only on the
   two-ended ones) while leaving the point attributes unconstrained.  Every
   tuple it confirms is a true skyline tuple, but tuples that are
   *range-dominated* by a discovered tuple -- yet beat it on a point
   attribute -- are missed.
2. **Pruned point phase.**  Any missed skyline tuple ``t`` satisfies
   ``t[A_j] >= min_{s in S} s[A_j]`` on every two-ended range attribute
   (predicate ``P``, Eq. 17) and beats some discovered tuple on some point
   attribute ``B_i``.  The algorithm therefore issues
   ``P AND B_i = v`` for every point attribute and every value
   ``v < max_{s in S} s[B_i]``; underflowing answers certify their region,
   while overflowing ones are refined point attribute by point attribute and
   finally resolved by a range-tree rooted at the fully point-specified
   query.

When the schema has no point attributes this degenerates to SQ/RQ-DB-SKY,
and with no range attributes to PQ-DB-SKY -- MQ-DB-SKY is the universal
entry point (:func:`repro.core.discover`).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.query import Query
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .pq import pq_db_sky
from .registry import DiscoveryConfig, register_algorithm
from .rq import rq_db_sky

ALGORITHM_NAME = "MQ-DB-SKY"


def _interface_partition(
    schema,
) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    """Ranking-attribute indices split into (one-ended, two-ended, point)."""
    sq = schema.indices_of_kind(InterfaceKind.SQ)
    rq = schema.indices_of_kind(InterfaceKind.RQ)
    pq = schema.indices_of_kind(InterfaceKind.PQ)
    return sq, rq, pq


def _range_branch_order(
    sq_attrs: Sequence[int], rq_attrs: Sequence[int]
) -> tuple[int, ...]:
    """Branch two-ended attributes before one-ended ones.

    Exclusion (``>=``) predicates are attached to a branch for every
    *earlier* two-ended branch attribute, so fronting the two-ended
    attributes maximises the mutual exclusivity the tree can express --
    the "simple revision of RQ-DB-SKY which leverages the availability of
    '>' predicates on only the attributes that support two-ended ranges"
    (§6.3).
    """
    return tuple(rq_attrs) + tuple(sq_attrs)


def mq_db_sky(session: DiscoverySession) -> None:
    """Run MQ-DB-SKY (Algorithm 6 of the paper) inside ``session``."""
    schema = session.schema
    sq_attrs, rq_attrs, pq_attrs = _interface_partition(schema)
    range_attrs = _range_branch_order(sq_attrs, rq_attrs)
    if not range_attrs:
        pq_db_sky(session)
        return
    if not pq_attrs:
        rq_db_sky(session, branch_attributes=range_attrs, two_ended=rq_attrs)
        return

    # Phase 1: range discovery, point attributes left unconstrained.
    rq_db_sky(session, branch_attributes=range_attrs, two_ended=rq_attrs)
    discovered = session.confirmed_skyline()
    if not discovered:
        return

    # Phase 2: chase range-dominated skyline tuples through the point
    # attributes, under the pruning predicate P of Eq. (17).  The
    # enumeration is unconditional -- every ``P AND B_i = v`` query below
    # the per-attribute ceiling is issued regardless of the others'
    # answers -- so the whole sweep goes through one frontier and a
    # pipelined strategy overlaps the point probes; only the *resolution*
    # of an overflowing probe (which ends in a state-dependent range tree)
    # runs synchronously inside its expansion callback.
    domain_sizes = schema.domain_sizes
    pruning = Query.select_all()
    for attribute in rq_attrs:
        floor = min(row.values[attribute] for row in discovered)
        if floor > 0:
            refined = pruning.and_lower(attribute, floor, domain_sizes[attribute])
            assert refined is not None  # floor is within the domain
            pruning = refined
    frontier = session.frontier()
    for point_attribute in pq_attrs:
        ceiling = max(row.values[point_attribute] for row in discovered)
        free = tuple(p for p in pq_attrs if p != point_attribute)
        for value in range(ceiling):
            query = pruning.and_point(point_attribute, value)
            assert query is not None  # pruning never touches point attributes

            def on_probe(result, query=query, free=free) -> None:
                if result.overflow:
                    _resolve_overflow(
                        session, query, free, range_attrs, rq_attrs
                    )

            frontier.add(query, on_probe)
    frontier.drain()


def _resolve_overflow(
    session: DiscoverySession,
    query: Query,
    free_point_attrs: Sequence[int],
    range_attrs: Sequence[int],
    rq_attrs: Sequence[int],
) -> None:
    """Exhaust an overflowing phase-2 region.

    Point attributes are fixed one at a time (the paper's recursive plane
    partitioning, with early termination on underflow); once every point
    attribute is pinned, any tuple still hidden must be on the *range*
    skyline of the region -- all point values being equal, a range dominator
    is a full dominator -- so a range-tree rooted at the query finds it.
    """
    if free_point_attrs:
        next_attribute = free_point_attrs[0]
        remaining = free_point_attrs[1:]
        domain = session.schema.ranking_attributes[next_attribute].domain_size
        # Value enumeration is unconditional at every level, so each level
        # gets its own (nested) frontier; deeper recursion stays inside the
        # expansion callbacks, preserving the serial refinement order.
        frontier = session.frontier()
        for value in range(domain):
            refined = query.and_point(next_attribute, value)
            if refined is None:
                continue

            def on_refined(result, refined=refined) -> None:
                if result.overflow:
                    _resolve_overflow(
                        session, refined, remaining, range_attrs, rq_attrs
                    )

            frontier.add(refined, on_refined)
        frontier.drain()
        return
    if range_attrs:
        rq_db_sky(
            session,
            branch_attributes=range_attrs,
            two_ended=rq_attrs,
            root=query,
        )
    # With neither free point attributes nor range attributes the query is
    # fully specified; an overflow means > k duplicated value vectors, which
    # a top-k interface fundamentally cannot enumerate further (the paper's
    # general-positioning assumption rules this out).


@register_algorithm(
    "mq",
    display_name=ALGORITHM_NAME,
    kinds=(InterfaceKind.SQ, InterfaceKind.RQ, InterfaceKind.PQ),
    capabilities=("anytime", "complete"),
    summary="Range phase plus pruned point chase for mixed interfaces (§6)",
    dispatch=lambda schema: True,  # the universal fallback
    priority=0,
)
def _run_mq(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """MQ-DB-SKY under the facade."""
    mq_db_sky(session)


def discover_mq(interface: SearchEndpoint) -> DiscoveryResult:
    """Discover the skyline of a mixed-interface database with MQ-DB-SKY.

    .. deprecated:: 2.0
        Use ``Discoverer().run(interface, "mq")`` instead.
    """
    warnings.warn(
        "discover_mq() is deprecated; use repro.Discoverer().run(interface, "
        '"mq") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return run_with_budget_guard(interface, ALGORITHM_NAME, mq_db_sky)


def legacy_discover(interface: SearchEndpoint) -> DiscoveryResult:
    """The pre-registry universal entry point: hand-rolled dispatch on the
    schema's interface taxonomy.

    Kept verbatim as the parity reference for the registry's auto-dispatch
    (``tests/core/test_registry.py``); new code should call
    :func:`repro.discover` or :meth:`repro.Discoverer.run`, which resolve
    the same targets through the registry.
    """
    schema = interface.schema
    sq_attrs, rq_attrs, pq_attrs = _interface_partition(schema)
    if not pq_attrs and not rq_attrs:
        return run_with_budget_guard(
            interface, "SQ-DB-SKY", lambda session: _sq_body(session)
        )
    if not pq_attrs:
        branch = _range_branch_order(sq_attrs, rq_attrs)
        return run_with_budget_guard(
            interface,
            "RQ-DB-SKY",
            lambda session: rq_db_sky(
                session, branch_attributes=branch, two_ended=rq_attrs
            ),
        )
    if not sq_attrs and not rq_attrs:
        return run_with_budget_guard(
            interface,
            "PQ-DB-SKY" if schema.m != 2 else "PQ-2D-SKY",
            pq_db_sky,
        )
    return run_with_budget_guard(interface, ALGORITHM_NAME, mq_db_sky)


def _sq_body(session: DiscoverySession) -> None:
    from .sq import sq_db_sky

    sq_db_sky(session)
