"""PQ-2D-SKY: instance-optimal skyline discovery for 2-D point interfaces (§5.1).

With only equality predicates available, the algorithm works through *1-D
line queries* (``x = v`` or ``y = v``).  Because all tuples sharing an
``x``-value form a chain in the dominance order, a domination-consistent
ranking must return the best of them first -- the "guaranteed single skyline
return" property that makes 2-D discovery instance-optimal.

State is a worklist of disjoint rectangles of still-unknown space.  For a
rectangle with width ``w`` and height ``h`` the algorithm queries along the
narrow side (``x = x_lo`` when ``w < h``, else ``y = y_lo``); each answer
either finds a new skyline tuple (shrinking the rectangle in both
dimensions) or proves a full line empty (shrinking by one).  The total cost
matches Eq. (11) of the paper:

    C = sum_i min(t_{i+1}[x] - t_i[x], t_i[y] - t_{i+1}[y])

over adjacent skyline tuples extended by the two domain corners (plus the
initial ``SELECT *``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.query import Query
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .registry import DiscoveryConfig, register_algorithm

ALGORITHM_NAME = "PQ-2D-SKY"


@dataclass
class _Rect:
    """An inclusive rectangle of unexplored space (preference coordinates)."""

    x_lo: int
    x_hi: int
    y_lo: int
    y_hi: int

    @property
    def alive(self) -> bool:
        return self.x_lo <= self.x_hi and self.y_lo <= self.y_hi

    @property
    def width(self) -> int:
        return self.x_hi - self.x_lo

    @property
    def height(self) -> int:
        return self.y_hi - self.y_lo


def pq_2d_sky(session: DiscoverySession) -> None:
    """Run PQ-2D-SKY (Algorithm 3 of the paper) inside ``session``.

    Requires a schema with exactly two ranking attributes.  Line queries are
    issued on the full database; the session records every retrieved tuple,
    and the final skyline is extracted by the session's dominance filter.
    """
    schema = session.schema
    if schema.m != 2:
        raise ValueError(
            f"PQ-2D-SKY requires exactly 2 ranking attributes, got {schema.m}"
        )
    x_max = schema.ranking_attributes[0].max_value
    y_max = schema.ranking_attributes[1].max_value

    first = session.issue(Query.select_all())
    if first.is_empty:
        return
    if not first.overflow:
        return  # the whole database fit in one answer
    x1, y1 = first.top.values
    # The remaining candidate space splits into two disconnected rectangles:
    # strictly better on x (worse on y), and strictly better on y (worse on
    # x).  Everything else is either provably empty (it would dominate the
    # returned top tuple) or dominated by it.  Each rectangle's exploration
    # is a self-contained chain of line queries (a step inspects only its
    # own rectangle plus its own answer), so the two chains are routed as
    # independent callback chains through one LIFO frontier: the serial
    # strategy finishes the second rectangle first -- the historical stack
    # order -- while a pipelined strategy keeps one line query of *each*
    # rectangle in flight.
    rectangles = [
        _Rect(0, x1 - 1, y1 + 1, y_max),
        _Rect(x1 + 1, x_max, 0, y1 - 1),
    ]
    frontier = session.frontier(lifo=True)
    for rect in rectangles:
        if rect.alive:
            _advance(frontier, rect)
    frontier.drain()


def _advance(frontier, rect: _Rect) -> None:
    """Queue the next line query of ``rect``'s chain (if it is still alive)."""
    if not rect.alive:
        return
    if rect.width < rect.height:
        query = Query.from_point({0: rect.x_lo})
        fold = _fold_column
    else:
        query = Query.from_point({1: rect.y_lo})
        fold = _fold_row

    def continue_chain(result, fold=fold) -> None:
        fold(rect, result)
        _advance(frontier, rect)

    frontier.add(query, continue_chain)


def _fold_column(rect: _Rect, result) -> None:
    """Shrink ``rect`` from the answer to its ``x = rect.x_lo`` query."""
    if result.is_empty:
        rect.x_lo += 1
        return
    y_found = result.top.values[1]
    if y_found > rect.y_hi:
        # The best tuple of this column lies above the rectangle, i.e. it is
        # dominated by a previously found skyline tuple: the column holds no
        # skyline candidate.
        rect.x_lo += 1
        return
    # result.top is a new skyline tuple: nothing in the already-explored
    # space can dominate it (see §5.1).  Cells left of it in the column are
    # proven empty, cells right/above are dominated.
    rect.x_lo += 1
    rect.y_hi = y_found - 1


def _fold_row(rect: _Rect, result) -> None:
    """Shrink ``rect`` from the answer to its ``y = rect.y_lo`` query."""
    if result.is_empty:
        rect.y_lo += 1
        return
    x_found = result.top.values[0]
    if x_found > rect.x_hi:
        rect.y_lo += 1
        return
    rect.y_lo += 1
    rect.x_hi = x_found - 1


@register_algorithm(
    "pq2d",
    display_name=ALGORITHM_NAME,
    # Point predicates are expressible through every interface kind, so any
    # 2-attribute ranking schema qualifies (matching legacy discover_pq2d).
    kinds=(InterfaceKind.PQ, InterfaceKind.SQ, InterfaceKind.RQ),
    capabilities=("anytime", "complete", "instance-optimal"),
    summary="Instance-optimal 1-D line queries for 2-attribute schemas (§5.1)",
    requires=lambda schema: schema.m == 2,
    # Never auto-dispatched: the "pq" spec already delegates 2-D schemas to
    # this algorithm internally (legacy discover() parity); select it by
    # name to force the rectangle-worklist implementation.
)
def _run_pq2d(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """PQ-2D-SKY under the facade."""
    pq_2d_sky(session)


def discover_pq2d(interface: SearchEndpoint) -> DiscoveryResult:
    """Discover the skyline of a 2-D point-predicate database.

    .. deprecated:: 2.0
        Use ``Discoverer().run(interface, "pq2d")`` instead.
    """
    warnings.warn(
        "discover_pq2d() is deprecated; use repro.Discoverer().run("
        'interface, "pq2d") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    for attribute in interface.schema.ranking_attributes:
        if attribute.kind not in (InterfaceKind.PQ, InterfaceKind.SQ,
                                  InterfaceKind.RQ):
            raise ValueError(f"unsupported attribute kind {attribute.kind}")
    return run_with_budget_guard(interface, ALGORITHM_NAME, pq_2d_sky)
