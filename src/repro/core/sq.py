"""SQ-DB-SKY: skyline discovery through one-ended range interfaces (§3).

The algorithm is an iterative divide-and-conquer over a *query tree*: the
root is ``SELECT *``; whenever a query ``q`` overflows after returning top
tuple ``t``, it spawns ``m`` children, the ``i``-th appending the predicate
``A_i < t[A_i]``.  Every skyline tuple matching ``q`` must beat ``t`` on some
attribute, hence matches at least one child -- which gives completeness
(Theorem 2).  Because each query region is downward-closed, any returned
tuple not dominated by another tuple in the same answer is guaranteed to be a
skyline tuple, so discovery is *anytime*.

Query cost is worst-case ``O(m * |S|^(m+1))`` but only ``(e + e|S|/m)^m``
expected under the random-ranking model (§3.2); see
:mod:`repro.core.analysis` for the closed forms.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.query import Query
from .base import DiscoveryResult, DiscoverySession, run_with_budget_guard
from .registry import DiscoveryConfig, register_algorithm

ALGORITHM_NAME = "SQ-DB-SKY"


def sq_db_sky(
    session: DiscoverySession,
    branch_attributes: Sequence[int] | None = None,
    root: Query | None = None,
) -> None:
    """Run SQ-DB-SKY (Algorithm 1 of the paper) inside ``session``.

    Parameters
    ----------
    session:
        Discovery session wrapping the top-k interface.
    branch_attributes:
        Ranking-attribute indices the tree branches on; defaults to all
        ranking attributes.  MQ-DB-SKY restricts this to the range-predicate
        attributes.
    root:
        Query at the tree root (defaults to ``SELECT *``).  Used by the
        skyband extension to explore a subspace.

    Notes
    -----
    Children whose appended predicate is syntactically empty (``A_i < 0``,
    i.e. "better than the best domain value") are skipped without being
    issued -- a real search form cannot even express them.

    The tree is expanded through a :class:`~repro.core.engine.Frontier`: a
    node's children depend only on that node's own answer (its pivot), so
    every queued query is independent of its siblings and a pipelined
    strategy may hold a whole wave of them in flight.  The FIFO frontier
    order reproduces the breadth-first traversal of Algorithm 1 exactly.
    """
    schema = session.schema
    if branch_attributes is None:
        branch_attributes = range(schema.m)
    branch_attributes = tuple(branch_attributes)
    frontier = session.frontier()

    def expand(query: Query, result) -> None:
        if result.is_empty or not result.overflow:
            # Valid or underflowing answer: leaf node.  All matching tuples
            # were returned (Section 2.1), nothing below to explore.
            return
        pivot = result.top
        for attribute in branch_attributes:
            child = query.and_upper(attribute, pivot[attribute] - 1)
            if child is not None:
                frontier.add(
                    child, lambda res, q=child: expand(q, res)
                )

    root_query = root if root is not None else Query.select_all()
    frontier.add(root_query, lambda res: expand(root_query, res))
    frontier.drain()


@register_algorithm(
    "sq",
    display_name=ALGORITHM_NAME,
    kinds=(InterfaceKind.SQ, InterfaceKind.RQ),
    capabilities=("anytime", "complete"),
    summary="Overlapping query tree over one-ended range predicates (§3)",
    # Preferred only for pure one-ended schemas; RQ-DB-SKY takes over as
    # soon as a two-ended attribute is available (legacy discover() parity).
    dispatch=lambda schema: not schema.indices_of_kind(InterfaceKind.RQ)
    and not schema.indices_of_kind(InterfaceKind.PQ),
    priority=30,
)
def _run_sq(session: DiscoverySession, config: DiscoveryConfig) -> None:
    """SQ-DB-SKY under the facade; honours the ``branch_attributes`` option."""
    sq_db_sky(session, config.option("branch_attributes"))


def discover_sq(
    interface: SearchEndpoint,
    branch_attributes: Sequence[int] | None = None,
    base_query: Query | None = None,
) -> DiscoveryResult:
    """Discover the skyline of ``interface`` with SQ-DB-SKY.

    .. deprecated:: 2.0
        Use ``Discoverer().run(interface, "sq")`` instead.
    """
    warnings.warn(
        "discover_sq() is deprecated; use repro.Discoverer().run(interface, "
        '"sq") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return run_with_budget_guard(
        interface,
        ALGORITHM_NAME,
        lambda session: sq_db_sky(session, branch_attributes),
        base_query,
    )
