"""PQ-2DSUB-SKY: skyline discovery inside a pruned 2-D subspace (§5.3.1).

Higher-dimensional PQ discovery decomposes the space into 2-D *planes*: one
plane per value combination of the non-plane attributes.  Before a plane is
explored, knowledge accumulated elsewhere prunes it:

* **witness rule** -- if a query containing the plane returned tuple ``t``
  whose non-plane values are all >= the plane's, then every plane cell that
  would dominate ``t`` is provably empty (it would have outranked ``t``);
* **domination rule** -- every retrieved tuple whose non-plane values are
  all <= the plane's kills the cells it dominates;
* **certification rule** -- an *underflowing* query containing the plane
  proves every matching cell without a returned tuple empty.

The remaining alive region is a staircase band.  Exploration repeatedly
builds the paper's "block-diagonal" rectangles between adjacent lower-bound
corners, picks one agreeing with the overall region on which dimension is
narrower, and issues a 1-D line query along that dimension.  Every line
query fully resolves its line, so the loop terminates in at most
``width + height`` queries per plane.

The cell state is a dominator-*count* grid, so the same machinery serves
K-skyband discovery (a cell stays alive until ``band`` dominators are known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from ..hiddendb.table import Row
from .base import DiscoverySession


class PlaneState:
    """Alive/dead bookkeeping for one 2-D plane of a PQ database.

    Cells are indexed ``[x, y]`` in preference coordinates.  A cell is dead
    once it is *closed* (proven empty, or its tuple retrieved) or once at
    least ``band`` retrieved tuples are known to dominate it.
    """

    def __init__(self, dom_x: int, dom_y: int, band: int = 1) -> None:
        if band < 1:
            raise ValueError(f"band must be >= 1, got {band}")
        self._dominators = np.zeros((dom_x, dom_y), dtype=np.int32)
        self._closed = np.zeros((dom_x, dom_y), dtype=bool)
        self._band = band
        self._counted_rids: set[int] = set()

    @property
    def shape(self) -> tuple[int, int]:
        """The ``(dom_x, dom_y)`` grid dimensions."""
        return self._closed.shape

    @property
    def band(self) -> int:
        """The skyband depth this plane is being explored for."""
        return self._band

    def alive_mask(self) -> np.ndarray:
        """Boolean grid of cells that may still hold undiscovered tuples."""
        return ~self._closed & (self._dominators < self._band)

    def any_alive(self) -> bool:
        """Whether any cell still needs exploration."""
        return bool(self.alive_mask().any())

    def dominator_count(self, x: int, y: int) -> int:
        """Known dominators of cell ``(x, y)``."""
        return int(self._dominators[x, y])

    # ------------------------------------------------------------------
    # pruning rules
    # ------------------------------------------------------------------
    def close_witness_rect(self, x: int, y: int) -> None:
        """Witness rule: close every cell at ``(<= x, <= y)``.

        Valid when a query containing this plane returned a tuple whose
        non-plane values are all >= the plane's and whose plane projection is
        ``(x, y)``: a tuple in any such cell would dominate the witness and
        would therefore have been returned ahead of it.
        """
        self._closed[: x + 1, : y + 1] = True

    def add_dominator(
        self, x: int, y: int, in_plane: bool, rid: int | None = None
    ) -> None:
        """Domination rule: count a dominator for all cells at ``(>= x, >= y)``.

        ``in_plane`` marks a dominating tuple living in this very plane: its
        own cell is not dominated by itself (it is closed as retrieved
        instead).  ``rid`` deduplicates contributions -- a tuple can reach
        the plane through pre-seeding and through both of its line queries,
        but must count as a single dominator.
        """
        if rid is not None:
            if rid in self._counted_rids:
                if in_plane:
                    self._closed[x, y] = True
                return
            self._counted_rids.add(rid)
        self._dominators[x:, y:] += 1
        if in_plane:
            self._dominators[x, y] -= 1
            self._closed[x, y] = True

    def close_cell(self, x: int, y: int) -> None:
        """Close a single cell (tuple retrieved there, or proven empty)."""
        self._closed[x, y] = True

    def close_column(self, x: int, y_lo: int = 0, y_hi: int | None = None) -> None:
        """Close cells ``(x, y_lo .. y_hi)`` (line fully resolved)."""
        if y_hi is None:
            y_hi = self._closed.shape[1] - 1
        self._closed[x, y_lo : y_hi + 1] = True

    def close_row(self, y: int, x_lo: int = 0, x_hi: int | None = None) -> None:
        """Close cells ``(x_lo .. x_hi, y)`` (line fully resolved)."""
        if x_hi is None:
            x_hi = self._closed.shape[0] - 1
        self._closed[x_lo : x_hi + 1, y] = True


@dataclass(frozen=True)
class _BlockRect:
    """One block-diagonal rectangle: columns/rows it spans plus alive sizes."""

    columns: np.ndarray
    rows: np.ndarray
    width: int
    height: int


def _block_rectangles(alive: np.ndarray) -> list[_BlockRect]:
    """The block-diagonal rectangles of the alive staircase region.

    Alive columns are grouped into maximal runs of equal lowest-alive-row;
    run ``j`` pairs with the alive rows between its floor and the previous
    run's floor, reproducing the construction of Figure 12(b).
    """
    alive_columns = np.flatnonzero(alive.any(axis=1))
    alive_rows = np.flatnonzero(alive.any(axis=0))
    floors = [int(np.flatnonzero(alive[column])[0]) for column in alive_columns]
    rectangles: list[_BlockRect] = []
    start = 0
    previous_floor: int | None = None
    for position in range(1, len(alive_columns) + 1):
        is_break = (
            position == len(alive_columns) or floors[position] != floors[start]
        )
        if not is_break:
            continue
        columns = alive_columns[start:position]
        floor = floors[start]
        if previous_floor is None:
            ceiling = int(alive_rows[-1])
        else:
            ceiling = previous_floor - 1
        rows = alive_rows[(alive_rows >= floor) & (alive_rows <= ceiling)]
        if rows.size == 0:
            rows = alive_rows[alive_rows >= floor][:1]
        rectangles.append(
            _BlockRect(
                columns=columns,
                rows=rows,
                width=int(columns.size),
                height=int(rows.size),
            )
        )
        previous_floor = floor
        start = position
    return rectangles


def choose_line(state: PlaneState) -> tuple[str, int] | None:
    """Decide the next 1-D line query for ``state``.

    Returns ``("x", value)`` for a column query, ``("y", value)`` for a row
    query, or ``None`` when nothing is alive.  Follows §5.3.1: build the
    block-diagonal rectangles, keep one agreeing with the overall compressed
    region on which dimension is narrower, and query the best (lowest)
    alive line of that rectangle along the narrow dimension.
    """
    alive = state.alive_mask()
    if not alive.any():
        return None
    total_width = int(alive.any(axis=1).sum())
    total_height = int(alive.any(axis=0).sum())
    rectangles = _block_rectangles(alive)
    prefer_column = total_width < total_height
    chosen = next(
        (
            rect
            for rect in rectangles
            if (rect.width < rect.height) == prefer_column
        ),
        rectangles[0],
    )
    if chosen.width < chosen.height:
        return ("x", int(chosen.columns[0]))
    return ("y", int(chosen.rows[0]))


def explore_plane(
    session: DiscoverySession,
    state: PlaneState,
    plane_query: Query,
    x_attr: int,
    y_attr: int,
    on_found: Callable[[Row], None] | None = None,
) -> None:
    """Drain all alive cells of one plane via 1-D line queries.

    ``plane_query`` fixes the non-plane attributes; line queries append one
    equality predicate on ``x_attr`` or ``y_attr``.  ``on_found`` is called
    for every retrieved in-plane tuple (used by callers that propagate
    pruning across planes).
    """
    while True:
        line = choose_line(state)
        if line is None:
            return
        axis, value = line
        if axis == "x":
            query = plane_query.and_point(x_attr, value)
        else:
            query = plane_query.and_point(y_attr, value)
        assert query is not None  # plane_query never constrains plane attrs
        result = session.issue(query)
        _apply_line_result(
            state, result, axis, value, x_attr, y_attr, session.k, on_found
        )
        if result.overflow and state.band > session.k:
            # A top-k answer pins down only the k best cells of the line;
            # deeper skyband exploration (band > k) resolves the remaining
            # alive cells one by one with fully-specified point queries
            # ("the 0D base queries" of §7.2).
            _drain_line_pointwise(
                session, state, plane_query, axis, value, x_attr, y_attr,
                on_found,
            )


def _drain_line_pointwise(
    session: DiscoverySession,
    state: PlaneState,
    plane_query: Query,
    axis: str,
    value: int,
    x_attr: int,
    y_attr: int,
    on_found: Callable[[Row], None] | None,
) -> None:
    """Resolve every remaining alive cell of a line with 0-D point queries."""
    while True:
        alive = state.alive_mask()
        line = alive[value, :] if axis == "x" else alive[:, value]
        open_cells = np.flatnonzero(line)
        if open_cells.size == 0:
            return
        free_value = int(open_cells[0])
        query = plane_query.and_point(
            x_attr, value if axis == "x" else free_value
        )
        assert query is not None
        query = query.and_point(
            y_attr, free_value if axis == "x" else value
        )
        assert query is not None
        result = session.issue(query)
        for row in result.rows:
            state.add_dominator(
                row.values[x_attr], row.values[y_attr], in_plane=True,
                rid=row.rid,
            )
            if on_found is not None:
                on_found(row)
        if axis == "x":
            state.close_cell(value, free_value)
        else:
            state.close_cell(free_value, value)


def _apply_line_result(
    state: PlaneState,
    result: QueryResult,
    axis: str,
    value: int,
    x_attr: int,
    y_attr: int,
    k: int,
    on_found: Callable[[Row], None] | None,
) -> None:
    """Fold one line-query answer into the plane state.

    All tuples matching a line query form a dominance chain, so the top-k
    answer is exactly the ``k`` best cells of the line; every earlier cell
    without a returned tuple is empty, and (for the skyline case) every later
    cell is dominated.  Either way the queried line dies completely when the
    query underflows, and dies for ``band <= k`` otherwise.
    """
    free_attr = y_attr if axis == "x" else x_attr
    returned = sorted(result.rows, key=lambda row: row.values[free_attr])
    positions = [row.values[free_attr] for row in returned]
    occupied = set(positions)
    frontier = positions[-1] if positions else None

    def close_line_cell(free_value: int) -> None:
        if axis == "x":
            state.close_cell(value, free_value)
        else:
            state.close_cell(free_value, value)

    # Cells before the worst returned tuple that hold no tuple are empty.
    upper = frontier if frontier is not None else -1
    for free_value in range(0, upper + 1):
        if free_value not in occupied:
            close_line_cell(free_value)
    for row in returned:
        x, y = row.values[x_attr], row.values[y_attr]
        state.add_dominator(x, y, in_plane=True, rid=row.rid)
        if on_found is not None:
            on_found(row)
    if not result.overflow:
        # Underflow certifies the rest of the line empty.
        if axis == "x":
            state.close_column(value)
        else:
            state.close_row(value)
