"""K-skyband discovery extensions (§7.2).

A tuple is in the top-K skyband iff fewer than ``K`` other tuples dominate
it; the skyline is the ``K = 1`` special case.  The paper extends each
discovery algorithm differently:

* **RQ** -- a tuple on band level ``h`` (but not ``h - 1``) is a skyline
  tuple of the *domination subspace* of some tuple on band level ``h - 1``.
  The subspace ``{u : u dominated by t}`` is expressible through two-ended
  ranges as ``m`` disjoint conjunctive roots, so the extension re-runs the
  range tree once per band tuple.
* **PQ** -- the plane machinery already tracks per-cell dominator *counts*;
  a cell stays alive until ``K`` dominators are known, with fully-specified
  point queries resolving lines deeper than the interface's ``k``.
* **SQ** -- provably hard: one-ended queries alone can never surface a
  dominated tuple, so the best-effort extension branches on answer tuples
  that are dominated by ``K - 1`` others *within the same answer* (needs a
  generous interface ``k``) and otherwise reports the discovery as partial.

All variants report a :class:`SkybandResult`; membership is decided by
counting dominators among the retrieved tuples, which is sound because every
dominator of a band tuple lies in a lower band and is therefore retrieved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..hiddendb.attributes import InterfaceKind
from ..hiddendb.errors import QueryBudgetExceeded
from ..hiddendb.endpoint import SearchEndpoint
from ..hiddendb.interface import QueryResult
from ..hiddendb.query import Query
from ..hiddendb.table import Row
from .base import DiscoverySession
from .dominance import skyband_of_rows
from .pq import pq_db_sky
from .registry import DiscoveryConfig, attach_skyband
from .rq import rq_db_sky
from . import sq as _sq  # noqa: F401  (registers "sq" before attachment)

if TYPE_CHECKING:  # pragma: no cover - types only
    from .engine import EngineStats
    from .registry import AlgorithmInfo


@dataclass(frozen=True)
class SkybandResult:
    """Outcome of a K-skyband discovery run."""

    algorithm: str
    band: int
    skyband: tuple[Row, ...]
    total_cost: int
    retrieved: tuple[Row, ...]
    complete: bool
    #: Run configuration (facade runs only; ``None`` for legacy entry points).
    config: "DiscoveryConfig | None" = None
    #: Registry metadata of the algorithm that produced this result.
    info: "AlgorithmInfo | None" = None
    #: Full query/answer log (populated when ``config.record_log`` is set).
    query_log: tuple[QueryResult, ...] = field(default=(), repr=False)
    #: Execution-engine counters of the run; ``stats.duplicate_queries``
    #: reports how many cross-subspace repeats the shared memoizer absorbed.
    stats: "EngineStats | None" = None

    @property
    def skyband_values(self) -> frozenset[tuple[int, ...]]:
        """The skyband as a set of value vectors."""
        return frozenset(row.values for row in self.skyband)

    def __repr__(self) -> str:
        return (
            f"SkybandResult({self.algorithm}, K={self.band}: "
            f"|band|={len(self.skyband)}, cost={self.total_cost}, "
            f"complete={self.complete})"
        )


def _session(
    interface: SearchEndpoint,
    config: DiscoveryConfig | None,
    algorithm: str = "",
) -> DiscoverySession:
    """A skyband session: run-scoped memoization defaults to *on*.

    The extensions below re-root their discovery trees once per band tuple
    (RQ) or per plane (PQ), and overlapping subspaces re-derive many
    syntactically identical queries; the shared memoizer answers the
    repeats for free, so each distinct query is billed exactly once per
    run.  ``DiscoveryConfig(dedup=False)`` restores the historical
    re-billing behaviour.  ``algorithm`` labels the crawl session when the
    config mounts a :class:`~repro.store.CrawlStore`.
    """
    return DiscoverySession.from_config(
        interface, config, default_dedup=True, algorithm=algorithm
    )


def _finish(
    session: DiscoverySession,
    algorithm: str,
    band: int,
    complete: bool,
    config: DiscoveryConfig | None = None,
) -> SkybandResult:
    retrieved = session.retrieved_rows
    result = SkybandResult(
        algorithm=algorithm,
        band=band,
        skyband=tuple(
            sorted(
                skyband_of_rows(retrieved, band),
                key=lambda row: (row.values, row.rid),
            )
        ),
        total_cost=session.cost,
        retrieved=tuple(retrieved),
        complete=complete,
        query_log=session.log if config is not None and config.record_log else (),
        stats=session.engine_stats,
    )
    session.finish_store(result)
    # Traced runs: flush/close the observer's sink and detach it from the
    # shared interface (the skyband verbs own their session, so the facade
    # cannot do this for them).
    session.close_observer()
    return result


# ----------------------------------------------------------------------
# RQ extension
# ----------------------------------------------------------------------
def _domination_subspace_roots(row: Row, domain_sizes: tuple[int, ...]) -> list[Query]:
    """Disjoint conjunctive roots covering exactly the tuples dominated by
    ``row`` (its domination subspace minus its own value combination).

    Root ``j`` pins ``A_i = row[A_i]`` for ``i < j``, requires
    ``A_j > row[A_j]`` and ``A_i >= row[A_i]`` for ``i > j``.
    """
    m = len(domain_sizes)
    roots: list[Query] = []
    for pivot_attr in range(m):
        query: Query | None = Query.select_all()
        for earlier in range(pivot_attr):
            query = query.and_point(earlier, row.values[earlier])
            assert query is not None
        query = query.and_lower(
            pivot_attr, row.values[pivot_attr] + 1, domain_sizes[pivot_attr]
        )
        if query is None:
            continue  # row already holds the worst value on this attribute
        for later in range(pivot_attr + 1, m):
            if row.values[later] > 0:
                query = query.and_lower(
                    later, row.values[later], domain_sizes[later]
                )
                assert query is not None
        roots.append(query)
    return roots


@attach_skyband(
    "rq",
    # Domination-subspace roots need point and lower-bound predicates on
    # every ranking attribute, i.e. two-ended ranges throughout.
    requires=lambda schema: all(
        a.kind is InterfaceKind.RQ for a in schema.ranking_attributes
    ),
)
def rq_db_skyband(
    interface: SearchEndpoint, band: int, config: DiscoveryConfig | None = None
) -> SkybandResult:
    """Discover the top-``band`` skyband through a two-ended range interface.

    One range-tree run discovers the skyline; every confirmed band tuple of
    level ``< band`` then spawns range-tree runs over its domination
    subspace, surfacing the next level.  Total runs: ``|top-(K-1) band| + 1``
    (§7.2).
    """
    if band < 1:
        raise ValueError(f"band must be >= 1, got {band}")
    session = _session(interface, config, "rq:skyband")
    domain_sizes = interface.schema.domain_sizes
    complete = True
    try:
        rq_db_sky(session)
        expanded: set[int] = set()
        while True:
            candidates = _expansion_candidates(session, band, expanded)
            if not candidates:
                break
            for row in candidates:
                expanded.add(row.rid)
                for root in _domination_subspace_roots(row, domain_sizes):
                    rq_db_sky(session, root=root)
    except QueryBudgetExceeded:
        complete = False
    return _finish(session, "RQ-DB-SKYBAND", band, complete, config)


def _expansion_candidates(
    session: DiscoverySession, band: int, expanded: set[int]
) -> list[Row]:
    """Retrieved tuples on the top-(band-1) skyband not yet expanded."""
    if band == 1:
        return []
    retrieved = session.retrieved_rows
    frontier = skyband_of_rows(retrieved, band - 1)
    return [row for row in frontier if row.rid not in expanded]


# ----------------------------------------------------------------------
# PQ extension
# ----------------------------------------------------------------------
@attach_skyband("pq")
def pq_db_skyband(
    interface: SearchEndpoint, band: int, config: DiscoveryConfig | None = None
) -> SkybandResult:
    """Discover the top-``band`` skyband through a point-predicate interface.

    Reuses the PQ plane machinery with dominator-count pruning: a plane cell
    survives until ``band`` dominators are known.  When the interface's ``k``
    is smaller than ``band``, overflowing line queries are drained with
    fully-specified point queries.
    """
    if band < 1:
        raise ValueError(f"band must be >= 1, got {band}")
    session = _session(interface, config, "pq:skyband")
    complete = True
    try:
        pq_db_sky(session, band=band)
    except QueryBudgetExceeded:
        complete = False
    return _finish(session, "PQ-DB-SKYBAND", band, complete, config)


# ----------------------------------------------------------------------
# SQ extension (best effort)
# ----------------------------------------------------------------------
@attach_skyband("sq")
def sq_db_skyband(
    interface: SearchEndpoint, band: int, config: DiscoveryConfig | None = None
) -> SkybandResult:
    """Best-effort top-``band`` skyband through a one-ended range interface.

    Branches on an answer tuple dominated by ``band - 1`` others *within the
    answer* (so everything it dominates is provably outside the band).  When
    an overflowing answer contains no such tuple the subtree cannot be
    explored safely; the result is then flagged ``complete=False`` -- the
    paper shows complete SQ skyband discovery degenerates to a full crawl in
    the worst case.
    """
    if band < 1:
        raise ValueError(f"band must be >= 1, got {band}")
    session = _session(interface, config, "sq:skyband")
    state = {"complete": True}
    m = interface.schema.m
    # Like SQ-DB-SKY, the branching pivot depends only on the node's own
    # answer, so the tree expands through a parallel-friendly frontier.
    frontier = session.frontier()

    def expand(query: Query, result) -> None:
        if result.is_empty or not result.overflow:
            return
        pivot = _band_pivot(result.rows, band)
        if pivot is None:
            state["complete"] = False
            return
        for attribute in range(m):
            child = query.and_upper(attribute, pivot[attribute] - 1)
            if child is not None:
                frontier.add(child, lambda res, q=child: expand(q, res))

    try:
        root = Query.select_all()
        frontier.add(root, lambda res: expand(root, res))
        frontier.drain()
    except QueryBudgetExceeded:
        state["complete"] = False
    return _finish(session, "SQ-DB-SKYBAND", band, state["complete"], config)


def _band_pivot(rows: tuple[Row, ...], band: int) -> Row | None:
    """First answer tuple dominated by >= band - 1 other answer tuples."""
    if band == 1:
        return rows[0]
    values = np.array([row.values for row in rows], dtype=np.int64)
    for position, row in enumerate(rows):
        weakly = np.all(values <= values[position], axis=1)
        strictly = np.any(values < values[position], axis=1)
        if int(np.count_nonzero(weakly & strictly)) >= band - 1:
            return row
    return None


__all__ = [
    "SkybandResult",
    "pq_db_skyband",
    "rq_db_skyband",
    "sq_db_skyband",
]
