"""SQLite-backed tuple store: a persistent, restart-surviving `Table`.

:class:`SQLTable` holds the same data as an in-memory
:class:`~repro.hiddendb.table.Table` -- ranking values in preference space
plus per-name filtering columns -- in a single SQLite file in WAL mode, so
``repro serve --table-db data.sqlite`` can host millions of tuples, start
instantly (no datagen, no load), and survive restarts.

The serving trick is a *persisted rank index*: at build time the table's
total rank order under a concrete ranking function -- the same
(score, value vector, row id) order the in-memory fast path precomputes --
is materialised as an integer ``rank`` column, covered by an index over
``(rank, v0..vm-1, f0..)``.  A top-k query then compiles to::

    SELECT rid, v0.. FROM tuples WHERE <ranges> ORDER BY rank LIMIT k

which SQLite answers by walking the covering index in rank order and
stopping after ``k`` matches: O(rank of the k-th answer) work per query
instead of a full scan, and bit-identical answers to the in-memory engines
because the persisted order *is* the in-memory order.

Schema (mirroring the WAL/covering-index layout of the Paper-Scanner
index documented in SNIPPETS.md):

* ``meta(key TEXT PRIMARY KEY, value TEXT)`` -- format version, dataset
  name, ranking label, and the schema as JSON (same field names as the
  service wire format);
* ``tuples(rid INTEGER PRIMARY KEY, rank INTEGER, v<i> INTEGER ...,
  f<j> INTEGER ...)`` -- ranking columns positional (``v0..vm-1``),
  filtering columns in schema order (``f0..``), so attribute names never
  need SQL-identifier sanitising;
* ``idx_rank(rank, v0.., f0..)`` -- the covering rank index (``rid`` is
  the rowid, included implicitly).

Pragmas: ``journal_mode=WAL`` (concurrent readers), ``synchronous=NORMAL``
(``OFF`` during the build transaction), ``busy_timeout=30000``.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Sequence

import numpy as np

from .attributes import Attribute, InterfaceKind, Schema
from .errors import HiddenDBError, UnknownAttributeError
from .query import Query
from .ranking import LinearRanker, Ranker
from .table import Row, Table

#: Bumped when the on-disk layout changes; mismatches refuse to open.
FORMAT_VERSION = 1

#: Rows per INSERT executemany batch at build time (bounds peak memory).
_BUILD_BATCH = 100_000


class SQLTableError(HiddenDBError):
    """The SQLite table file is missing, malformed, or incompatible."""


def _schema_to_json(schema: Schema) -> str:
    attributes = []
    for attribute in schema.attributes:
        entry: dict = {
            "name": attribute.name,
            "domain_size": attribute.domain_size,
            "kind": attribute.kind.value,
        }
        if attribute.labels is not None:
            try:
                json.dumps(attribute.labels)
            except (TypeError, ValueError):
                pass  # display-only; drop labels that do not round-trip
            else:
                entry["labels"] = list(attribute.labels)
        attributes.append(entry)
    return json.dumps({"attributes": attributes})


def _schema_from_json(payload: str) -> Schema:
    attributes = []
    for entry in json.loads(payload)["attributes"]:
        labels = entry.get("labels")
        attributes.append(
            Attribute(
                name=entry["name"],
                domain_size=int(entry["domain_size"]),
                kind=InterfaceKind(entry["kind"]),
                labels=None if labels is None else tuple(labels),
            )
        )
    return Schema(attributes)


def _column_names(schema: Schema) -> tuple[list[str], dict[str, str]]:
    """Positional SQL column names: ranking ``v0..``, filtering ``f0..``."""
    ranking = [f"v{i}" for i in range(schema.m)]
    filters = {
        attribute.name: f"f{j}"
        for j, attribute in enumerate(schema.filtering_attributes)
    }
    return ranking, filters


def build_sqltable(
    path: str | Path,
    table: Table,
    ranker: Ranker | None = None,
    *,
    name: str = "",
) -> Path:
    """Materialise ``table`` (ranked by ``ranker``) as a SQLite file.

    The ranker must have a precomputable total order (linear or
    lexicographic; the default is the paper's unit-weight SUM) -- its
    rank permutation becomes the persisted serving index.  ``name`` is
    the dataset identity label later served as the endpoint name.

    An existing file at ``path`` is replaced atomically from the reader's
    point of view (DROP + rebuild in one transaction).
    """
    ranker = ranker if ranker is not None else LinearRanker()
    bound = ranker.bind(table)
    order = bound.total_order()
    if order is None:
        raise ValueError(
            f"{ranker.describe()} has no precomputable total order; only "
            "query-independent rankers can be persisted as a rank index"
        )
    rank_of = np.empty(table.n, dtype=np.int64)
    rank_of[order] = np.arange(table.n, dtype=np.int64)

    schema = table.schema
    ranking_cols, filter_cols = _column_names(schema)
    missing = [
        attr.name for attr in schema.filtering_attributes
        if attr.name not in table.filter_names
    ]
    if missing:
        raise ValueError(
            f"cannot persist table: filtering attributes {missing} declared "
            "by the schema carry no column data"
        )
    rid_column = getattr(table, "rids", None)
    if rid_column is None:
        rid_column = np.arange(table.n, dtype=np.int64)
    columns = [np.asarray(rid_column, dtype=np.int64), rank_of]
    columns.extend(table.matrix[:, i] for i in range(table.m))
    columns.extend(
        table.filter_column(attr.name) for attr in schema.filtering_attributes
    )
    stacked = (
        np.column_stack(columns)
        if table.n
        else np.empty((0, len(columns)), dtype=np.int64)
    )

    path = Path(path)
    connection = sqlite3.connect(path)
    try:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA busy_timeout=30000")
        connection.execute("PRAGMA synchronous=OFF")  # build only
        column_ddl = ", ".join(
            [f"{col} INTEGER NOT NULL" for col in
             ["rank"] + ranking_cols + list(filter_cols.values())]
        )
        with connection:  # one transaction: build is all-or-nothing
            connection.execute("DROP TABLE IF EXISTS tuples")
            connection.execute("DROP TABLE IF EXISTS meta")
            connection.execute(
                f"CREATE TABLE tuples (rid INTEGER PRIMARY KEY, {column_ddl})"
            )
            insert = (
                f"INSERT INTO tuples VALUES ({', '.join('?' * stacked.shape[1])})"
            )
            for start in range(0, table.n, _BUILD_BATCH):
                connection.executemany(
                    insert, stacked[start:start + _BUILD_BATCH].tolist()
                )
            index_cols = ["rank"] + ranking_cols + list(filter_cols.values())
            connection.execute(
                f"CREATE INDEX idx_rank ON tuples ({', '.join(index_cols)})"
            )
            connection.execute(
                "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            connection.executemany(
                "INSERT INTO meta VALUES (?, ?)",
                [
                    ("version", str(FORMAT_VERSION)),
                    ("name", name),
                    ("ranking", ranker.describe()),
                    ("n", str(table.n)),
                    ("schema", _schema_to_json(schema)),
                    ("data_version",
                     str(int(getattr(table, "data_version", 0)))),
                    ("next_rid",
                     str(int(rid_column.max()) + 1 if table.n else 0)),
                ],
            )
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute("PRAGMA optimize")
    finally:
        connection.close()
    return path


class SQLTable:
    """A read-only `Table` served straight out of a SQLite file.

    Duck-types the :class:`~repro.hiddendb.table.Table` surface the
    serving layer uses (``schema``/``n``/``m``/``rows``/``match_indices``
    ...), adds the SQL-native :meth:`top_rows` fast path, and can
    materialise a full in-memory :class:`Table` (:meth:`as_memory`) for
    the ground-truth oracles and for rankers other than the persisted one.

    Connections are per-thread (SQLite requirement); WAL mode lets the
    threaded HTTP server read concurrently.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise SQLTableError(f"no SQLite table at {self._path}")
        self._local = threading.local()
        try:
            meta = dict(self._connection().execute("SELECT key, value FROM meta"))
        except sqlite3.DatabaseError as exc:
            raise SQLTableError(
                f"{self._path} is not a repro SQLite table: {exc}"
            ) from None
        version = int(meta.get("version", -1))
        if version != FORMAT_VERSION:
            raise SQLTableError(
                f"{self._path}: format version {version}, expected "
                f"{FORMAT_VERSION}; rebuild with build_sqltable()"
            )
        self._schema = _schema_from_json(meta["schema"])
        self._n = int(meta["n"])
        self._name = meta.get("name", "")
        self._ranking = meta["ranking"]
        # Pre-freshness files carry neither key: they read as version 0
        # with a dense rid space, exactly the behaviour they were built
        # under.
        self._data_version = int(meta.get("data_version", 0))
        self._next_rid = int(meta.get("next_rid", self._n))
        self._mutate_lock = threading.Lock()
        self._ranking_cols, self._filter_cols = _column_names(self._schema)
        self._select_cols = ", ".join(["rid"] + self._ranking_cols)
        # Precompiled per-column clause fragments and bound caps: the
        # serving path assembles WHERE clauses on every query, so the
        # string formatting is hoisted out of the hot loop.
        self._ge_clauses = tuple(f"{c} >= ?" for c in self._ranking_cols)
        self._le_clauses = tuple(f"{c} <= ?" for c in self._ranking_cols)
        self._eq_clauses = {
            name: f"{column} = ?"
            for name, column in self._filter_cols.items()
        }
        self._maxes = tuple(
            attribute.max_value
            for attribute in self._schema.ranking_attributes
        )
        self._top_prefix = (
            f"SELECT {self._select_cols} FROM tuples INDEXED BY idx_rank"
        )
        self._memory: Table | None = None
        self._memory_lock = threading.Lock()

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(self._path)
            connection.execute("PRAGMA busy_timeout=30000")
            connection.execute("PRAGMA query_only=ON")
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Close this thread's connection (other threads' close on GC)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def __enter__(self) -> "SQLTable":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Table surface
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        """Location of the backing SQLite file."""
        return self._path

    @property
    def schema(self) -> Schema:
        """The table's schema."""
        return self._schema

    @property
    def name(self) -> str:
        """Dataset identity label persisted at build time."""
        return self._name

    @property
    def ranking_label(self) -> str:
        """Label of the ranking function the rank index was built under."""
        return self._ranking

    @property
    def n(self) -> int:
        """Number of tuples."""
        return self._n

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter persisted in ``meta``."""
        return self._data_version

    @property
    def m(self) -> int:
        """Number of ranking attributes."""
        return self._schema.m

    def __len__(self) -> int:
        return self._n

    @property
    def filter_names(self) -> tuple[str, ...]:
        """Names of the filtering columns (always all declared ones)."""
        return tuple(self._filter_cols)

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(n, m)`` ranking matrix (loads once, then cached)."""
        return self.as_memory().matrix

    def filter_column(self, name: str) -> np.ndarray:
        """Read-only values of filtering column ``name`` (all rows)."""
        return self.as_memory().filter_column(name)

    def as_memory(self) -> Table:
        """Materialise the full table in memory (cached).

        Used by the ground-truth oracles and when a non-persisted ranker
        is bound over this table; the serving path never needs it.
        """
        with self._memory_lock:
            if self._memory is None:
                columns = (
                    ["rid"] + self._ranking_cols
                    + list(self._filter_cols.values())
                )
                rows = self._connection().execute(
                    f"SELECT {', '.join(columns)} FROM tuples ORDER BY rid"
                ).fetchall()
                data = (
                    np.asarray(rows, dtype=np.int64)
                    if rows
                    else np.empty((0, len(columns)), dtype=np.int64)
                )
                filters = {
                    name: data[:, 1 + self.m + j]
                    for j, name in enumerate(self._filter_cols)
                }
                self._memory = Table(
                    self._schema,
                    data[:, 1:1 + self.m],
                    filters,
                    rids=data[:, 0],
                    data_version=self._data_version,
                )
            return self._memory

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def _compile(self, query: Query) -> tuple[str, list[int]]:
        """WHERE clause + parameters for ``query`` (may be empty)."""
        clauses: list[str] = []
        params: list[int] = []
        ranges = query.ranges
        if ranges:
            maxes = self._maxes
            for index, interval in ranges.items():
                if interval.lo > 0:
                    clauses.append(self._ge_clauses[index])
                    params.append(int(interval.lo))
                if interval.hi < maxes[index]:
                    clauses.append(self._le_clauses[index])
                    params.append(int(interval.hi))
        filters = query.filters
        if filters:
            for name, value in filters.items():
                clause = self._eq_clauses.get(name)
                if clause is None:
                    raise UnknownAttributeError(f"no filter column {name!r}")
                clauses.append(clause)
                params.append(int(value))
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", params

    def top_rows(self, query: Query, k: int) -> tuple[Row, ...]:
        """The top-``k`` answer to ``query`` under the persisted ranking.

        One covering-index walk in rank order, short-circuited at ``k``
        matches -- the SQL-native twin of the in-memory rank-scan path.
        """
        where, params = self._compile(query)
        params.append(k)
        rows = self._connection().execute(
            self._top_prefix + where + " ORDER BY rank LIMIT ?", params
        ).fetchall()
        # fetchall() rows are tuples, so row[1:] already is the values
        # tuple -- no per-row conversion on the serving hot path.
        return tuple([Row(row[0], row[1:]) for row in rows])

    def match_indices(self, query: Query) -> np.ndarray:
        """Row identifiers of rows satisfying ``query``."""
        where, params = self._compile(query)
        rows = self._connection().execute(
            f"SELECT rid FROM tuples{where} ORDER BY rid", params
        ).fetchall()
        return np.asarray([row[0] for row in rows], dtype=np.int64)

    def count_matches(self, query: Query) -> int:
        """Number of rows satisfying ``query``."""
        where, params = self._compile(query)
        (count,) = self._connection().execute(
            f"SELECT COUNT(*) FROM tuples{where}", params
        ).fetchone()
        return int(count)

    def row(self, rid: int) -> Row:
        """Materialise the row with identifier ``rid``."""
        got = self._connection().execute(
            f"SELECT {self._select_cols} FROM tuples WHERE rid = ?", (int(rid),)
        ).fetchone()
        if got is None:
            raise IndexError(f"no row {rid} in {self._path.name}")
        return Row(got[0], got[1:])

    def rows(self, rids: Sequence[int]) -> tuple[Row, ...]:
        """Materialise several rows at once (input order preserved)."""
        return tuple(self.row(int(rid)) for rid in rids)

    def filter_value(self, name: str, rid: int) -> int:
        """Filtering-attribute value of row ``rid``."""
        column = self._filter_cols.get(name)
        if column is None:
            raise UnknownAttributeError(f"no filter column {name!r}")
        got = self._connection().execute(
            f"SELECT {column} FROM tuples WHERE rid = ?", (int(rid),)
        ).fetchone()
        if got is None:
            raise IndexError(f"no row {rid} in {self._path.name}")
        return int(got[0])

    # ------------------------------------------------------------------
    # mutations (the freshness plane)
    # ------------------------------------------------------------------
    def apply_mutations(self, ops: Sequence) -> int:
        """Apply an insert / delete / update batch and rebuild the rank.

        Mutation semantics are those of
        :meth:`~repro.hiddendb.table.Table.apply_mutations` (ops apply in
        order, one batch advances ``data_version`` by one, fresh rids are
        never reused -- the high-water mark is persisted in ``meta``).
        The rank column is recomputed under the persisted ranking and the
        whole ``tuples`` table is rewritten in one transaction, so a
        reader -- including this process's own ``query_only`` serving
        connections -- sees either the old state or the new one, never a
        half-ranked mix.
        """
        if not ops:
            return 0
        from .ranking import ranker_from_label

        with self._mutate_lock:
            work = self.as_memory().snapshot_view()
            work._next_rid = max(work._next_rid, self._next_rid)
            applied = work.apply_mutations(list(ops))
            bound = ranker_from_label(self._ranking).bind(work)
            order = bound.total_order()
            assert order is not None, "persisted rankings have total orders"
            rank_of = np.empty(work.n, dtype=np.int64)
            rank_of[order] = np.arange(work.n, dtype=np.int64)
            columns = [work.rids, rank_of]
            columns.extend(work.matrix[:, i] for i in range(work.m))
            columns.extend(
                work.filter_column(attr.name)
                for attr in self._schema.filtering_attributes
            )
            stacked = (
                np.column_stack(columns)
                if work.n
                else np.empty((0, len(columns)), dtype=np.int64)
            )
            new_version = self._data_version + 1
            connection = sqlite3.connect(self._path)
            try:
                connection.execute("PRAGMA busy_timeout=30000")
                connection.execute("BEGIN IMMEDIATE")
                try:
                    connection.execute("DELETE FROM tuples")
                    insert = (
                        "INSERT INTO tuples VALUES "
                        f"({', '.join('?' * stacked.shape[1])})"
                    )
                    for start in range(0, work.n, _BUILD_BATCH):
                        connection.executemany(
                            insert,
                            stacked[start:start + _BUILD_BATCH].tolist(),
                        )
                    connection.executemany(
                        "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                        [
                            ("n", str(work.n)),
                            ("data_version", str(new_version)),
                            ("next_rid", str(work._next_rid)),
                        ],
                    )
                    connection.execute("COMMIT")
                except BaseException:
                    connection.execute("ROLLBACK")
                    raise
            finally:
                connection.close()
            with self._memory_lock:
                self._n = work.n
                self._next_rid = work._next_rid
                self._data_version = new_version
                # work's arrays are exactly what the file now holds; its
                # version was advanced by apply_mutations in lockstep.
                self._memory = work
        return applied

    # ------------------------------------------------------------------
    # ground-truth oracles (delegate to the materialised table)
    # ------------------------------------------------------------------
    def skyline_indices(self) -> np.ndarray:
        """Row identifiers of the true skyline, sorted ascending."""
        return self.as_memory().skyline_indices()

    def skyline_rows(self) -> tuple[Row, ...]:
        """The true skyline tuples."""
        return self.as_memory().skyline_rows()

    def skyband_indices(self, k_band: int) -> np.ndarray:
        """Row identifiers of the true top-``k_band`` skyband, sorted."""
        return self.as_memory().skyband_indices(k_band)

    def __repr__(self) -> str:
        return (
            f"SQLTable(n={self._n}, path={str(self._path)!r}, "
            f"ranking={self._ranking!r})"
        )


__all__ = [
    "FORMAT_VERSION",
    "SQLTable",
    "SQLTableError",
    "build_sqltable",
]
