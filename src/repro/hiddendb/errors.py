"""Exceptions raised by the hidden-database simulator.

The simulator mirrors the failure modes of a real web search form: a client
can submit a query the interface does not support (``UnsupportedQueryError``),
reference an attribute that does not exist (``UnknownAttributeError``), or
exhaust its per-IP / per-API-key query allowance (``QueryBudgetExceeded``).
"""

from __future__ import annotations


class HiddenDBError(Exception):
    """Base class for all errors raised by :mod:`repro.hiddendb`."""


class UnknownAttributeError(HiddenDBError):
    """A query or schema operation referenced an attribute that does not exist."""


class UnsupportedQueryError(HiddenDBError):
    """The search interface rejected a query.

    Raised when a predicate is not expressible through the attribute's
    interface kind -- e.g. a lower bound on an SQ (one-ended range) attribute,
    or a range predicate on a PQ (point-predicate) attribute.
    """


class QueryBudgetExceeded(HiddenDBError):
    """The query rate limit of the hidden database was reached.

    Mirrors the per-IP-address / per-API-key limits that real web databases
    enforce (e.g. 50 free queries per day for the Google QPX API).  Discovery
    algorithms catch this to return a partial, *anytime* result.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"query budget of {limit} queries exhausted")
        self.limit = limit


class InvalidDomainValueError(HiddenDBError):
    """A value lies outside the attribute's domain ``[0, domain_size)``."""
